//! Chrome `trace_event` JSON export (and a matching parser for
//! round-trip tests).
//!
//! The exported document is the "JSON Object Format" understood by
//! `chrome://tracing` and Perfetto:
//!
//! ```json
//! {"traceEvents":[
//!   {"name":"hole:X","cat":"decode","ph":"X","ts":12,"dur":300,
//!    "pid":1,"tid":1,"args":{"tokens":5}},
//!   {"name":"hit","cat":"cache","ph":"i","ts":40,"pid":1,"tid":2,"s":"t"}
//! ]}
//! ```
//!
//! Spans map to phase `"X"` (complete events with `dur`), instants to
//! phase `"i"` with thread scope. Everything is hand-rolled over `std` —
//! the build environment has no serde.

use crate::trace::{ArgValue, EventKind, TraceEvent, Tracer};
use std::fmt::Write as _;

/// Renders `events` as a Chrome `trace_event` JSON document.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":{},\"ph\":\"{}\",\"ts\":{},",
            escape_json(&e.name),
            escape_json(&e.cat),
            match e.kind {
                EventKind::Complete => "X",
                EventKind::Instant => "i",
            },
            e.ts_us,
        );
        if e.kind == EventKind::Complete {
            let _ = write!(out, "\"dur\":{},", e.dur_us);
        }
        let _ = write!(out, "\"pid\":1,\"tid\":{}", e.tid);
        if e.kind == EventKind::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", escape_json(k), render_value(v));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// [`to_chrome_json`] over everything a tracer recorded.
pub fn tracer_to_chrome_json(tracer: &Tracer) -> String {
    to_chrome_json(&tracer.events())
}

fn render_value(v: &ArgValue) -> String {
    match v {
        ArgValue::U64(n) => n.to_string(),
        // Ryu-style shortest form is not available; {:?} keeps f64s
        // round-trippable through Rust's parser.
        ArgValue::F64(f) => format!("{f:?}"),
        ArgValue::Str(s) => escape_json(s),
    }
}

/// JSON string literal with the mandatory escapes.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a document produced by [`to_chrome_json`] back into events
/// (used by round-trip tests and external tooling). Accepts any JSON with
/// the same shape; args parse into [`ArgValue`]s (integers ≥ 0 as `U64`,
/// other numbers as `F64`).
///
/// # Errors
///
/// A human-readable message naming the first malformed construct.
pub fn parse_chrome_json(text: &str) -> Result<Vec<TraceEvent>, String> {
    let value = json::parse(text)?;
    let root = value.as_object().ok_or("document is not a JSON object")?;
    let events = root
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing traceEvents key")?
        .as_array()
        .ok_or("traceEvents is not an array")?;

    events
        .iter()
        .enumerate()
        .map(|(i, ev)| {
            let obj = ev
                .as_object()
                .ok_or_else(|| format!("event {i} is not an object"))?;
            let field = |name: &str| obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
            let str_field = |name: &str| {
                field(name)
                    .and_then(json::Value::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("event {i} missing string {name:?}"))
            };
            let num_field = |name: &str| {
                field(name)
                    .and_then(json::Value::as_u64)
                    .ok_or_else(|| format!("event {i} missing number {name:?}"))
            };
            let kind = match str_field("ph")?.as_str() {
                "X" => EventKind::Complete,
                "i" | "I" => EventKind::Instant,
                other => return Err(format!("event {i} has unsupported phase {other:?}")),
            };
            let args = match field("args") {
                None => Vec::new(),
                Some(v) => v
                    .as_object()
                    .ok_or_else(|| format!("event {i} args is not an object"))?
                    .iter()
                    .map(|(k, v)| {
                        let arg = match v {
                            json::Value::Str(s) => ArgValue::Str(s.clone()),
                            json::Value::Num(n) => {
                                if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 {
                                    ArgValue::U64(*n as u64)
                                } else {
                                    ArgValue::F64(*n)
                                }
                            }
                            other => {
                                return Err(format!("event {i} arg {k:?} is {other:?}"));
                            }
                        };
                        Ok((k.clone(), arg))
                    })
                    .collect::<Result<_, _>>()?,
            };
            Ok(TraceEvent {
                name: str_field("name")?,
                cat: str_field("cat")?,
                kind,
                ts_us: num_field("ts")?,
                dur_us: match kind {
                    EventKind::Complete => num_field("dur")?,
                    EventKind::Instant => 0,
                },
                tid: num_field("tid")?,
                args,
            })
        })
        .collect()
}

/// A minimal recursive-descent JSON parser (objects, arrays, strings,
/// numbers, booleans, null) — enough for `trace_event` documents.
mod json {
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Obj(Vec<(String, Value)>),
        Arr(Vec<Value>),
        Str(String),
        Num(f64),
        Bool(bool),
        Null,
    }

    impl Value {
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(fields) => Some(fields),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                    Some(*n as u64)
                }
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b" \t\r\n".contains(b))
            {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected {:?} at byte {}, found {:?}",
                    b as char,
                    self.pos,
                    self.peek().map(|c| c as char)
                ))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(b'-' | b'0'..=b'9') => self.number(),
                other => Err(format!(
                    "unexpected {:?} at byte {}",
                    other.map(|c| c as char),
                    self.pos
                )),
            }
        }

        fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(value)
            } else {
                Err(format!("bad literal at byte {}", self.pos))
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                fields.push((key, self.value()?));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".to_owned()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                    16,
                                )
                                .map_err(|_| "bad \\u escape")?;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or("surrogate \\u escape unsupported")?,
                                );
                                self.pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (input is a &str, so
                        // boundaries are valid).
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| "invalid UTF-8")?;
                        let c = rest.chars().next().expect("non-empty by peek");
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while self
                .peek()
                .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(&b))
            {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    #[test]
    fn export_shape_is_chrome_compatible() {
        let t = Tracer::manual();
        {
            let mut s = t.span("engine", "dispatch");
            s.arg("batch", 3u64);
        }
        t.instant("cache", "hit");
        let json = tracer_to_chrome_json(&t);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"args\":{\"batch\":3}"));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn round_trip_preserves_events() {
        let t = Tracer::manual();
        {
            let mut s = t.span("decode", "hole:ANSWER");
            s.arg("tokens", 7u64);
            s.arg("engine", "symbolic");
            s.arg("rate", 0.5f64);
        }
        t.instant("cache", "hit \"quoted\"\nname");
        let events = t.events();
        let parsed = parse_chrome_json(&to_chrome_json(&events)).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn round_trip_survives_extreme_values() {
        let t = Tracer::manual();
        t.instant_with("m", "edge", || {
            vec![
                ("zero".to_owned(), ArgValue::U64(0)),
                ("huge".to_owned(), ArgValue::U64(1 << 53)),
                ("neg".to_owned(), ArgValue::F64(-1.25)),
            ]
        });
        let events = t.events();
        let parsed = parse_chrome_json(&to_chrome_json(&events)).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse_chrome_json("").is_err());
        assert!(parse_chrome_json("[]").is_err());
        assert!(parse_chrome_json("{\"traceEvents\":{}}").is_err());
        assert!(parse_chrome_json("{\"traceEvents\":[{\"name\":\"x\"}]}").is_err());
        assert!(parse_chrome_json("{\"traceEvents\":[]} junk").is_err());
    }

    #[test]
    fn empty_trace_parses_to_no_events() {
        assert_eq!(parse_chrome_json(&to_chrome_json(&[])).unwrap(), vec![]);
    }

    #[test]
    fn escape_json_handles_control_chars() {
        assert_eq!(escape_json("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(escape_json("\u{1}"), "\"\\u0001\"");
    }
}
