//! Fast-forward accounting (DESIGN.md §12): tokens forced by a compiled
//! constraint automaton must NOT be billed as model queries — the whole
//! point of fast-forwarding — while decoder calls, billable tokens, and
//! the decoded output itself stay exactly what the scored path produces.

use lmql::{Runtime, Value};
use lmql_lm::{Episode, ScriptedLm};
use lmql_tokenizer::Bpe;
use std::sync::Arc;

const FORCED: &str = " ok done.";

/// A char-level runtime over a scripted model; with `A == " ok done."`
/// every decode step's mask is a singleton character, so the automaton
/// can force the entire hole without consulting the model once.
fn scripted_runtime(automata: bool) -> Runtime {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode::plain("Say:", FORCED)],
    ));
    let mut rt = Runtime::new(lm, bpe);
    rt.options_mut().mask.automata = automata;
    rt
}

const EQ_QUERY: &str = "argmax\n    \"Say:[A]\"\nfrom \"m\"\nwhere A == \" ok done.\"\n";

#[test]
fn forced_tokens_are_not_billed_as_model_queries() {
    let registry = lmql_obs::Registry::new();
    let mut with = scripted_runtime(true);
    with.set_metrics_registry(registry.clone());
    let result = with.run(EQ_QUERY).expect("automata run");
    let usage = with.meter().snapshot();

    // Every one of the 9 forced characters was appended without scoring.
    assert_eq!(
        usage.model_queries, 0,
        "a fully-forced hole must not query the model"
    );
    assert_eq!(usage.decoder_calls, 1, "one decoder call per query");
    assert_eq!(result.best().var_str("A"), Some(FORCED));
    let ff = registry
        .snapshot()
        .counter("automata.fast_forwarded_tokens")
        .unwrap_or(0);
    assert_eq!(
        ff,
        FORCED.chars().count() as u64,
        "every generated token must be counted as fast-forwarded"
    );

    // The scored reference pays one model query per generated token and
    // produces the identical result — value, billing, bit-exact score.
    let without = scripted_runtime(false);
    let reference = without.run(EQ_QUERY).expect("reference run");
    let ref_usage = without.meter().snapshot();
    assert_eq!(
        ref_usage.model_queries,
        FORCED.chars().count() as u64,
        "the scored path queries the model once per generated token"
    );
    assert_eq!(usage.decoder_calls, ref_usage.decoder_calls);
    assert_eq!(
        usage.billable_tokens, ref_usage.billable_tokens,
        "forced tokens still count as billable/generated tokens"
    );
    assert_eq!(result.best().trace, reference.best().trace);
    assert_eq!(
        result.best().log_prob.to_bits(),
        reference.best().log_prob.to_bits(),
        "a forced singleton chain has log-prob exactly 0.0 on both paths"
    );
    // The acceptance criterion in one line: more tokens were generated
    // than LM decoder calls issued.
    assert!(
        FORCED.chars().count() as u64 > usage.model_queries,
        "fewer LM calls than generated tokens"
    );
}

/// Options sharing the prefix " ok " and the suffix "one.": decoding is
/// forced char-by-char up to the divergence point, *sampled* there (two
/// admissible characters), then forced again to the end.
const BRANCH_QUERY: &str = "sample(n=2, temperature=1.3)\n    \"Say:[A]\"\nfrom \"m\"\nwhere A in [\" ok done.\", \" ok gone.\"]\n";

#[test]
fn sampled_runs_are_bit_identical_across_forced_prefixes() {
    // The fast-forward path burns one RNG draw per forced token, so the
    // sampled divergence step sees the same draw with automata on or
    // off — outputs must match bit for bit, including the second run.
    let mut with = scripted_runtime(true);
    with.options_mut().seed = 7;
    let a = with.run(BRANCH_QUERY).expect("automata run");
    let mut without = scripted_runtime(false);
    without.options_mut().seed = 7;
    let b = without.run(BRANCH_QUERY).expect("reference run");

    assert_eq!(a.runs.len(), 2);
    assert_eq!(a.runs.len(), b.runs.len());
    for (x, y) in a.runs.iter().zip(&b.runs) {
        assert_eq!(x.trace, y.trace, "sampled trace diverged");
        assert_eq!(
            x.log_prob.to_bits(),
            y.log_prob.to_bits(),
            "sampled log-prob not bit-exact"
        );
    }
    // Forced steps never touch the model: only the divergence step (one
    // per sampled run at most) may query it.
    assert!(
        with.meter().snapshot().model_queries < without.meter().snapshot().model_queries,
        "forced prefixes must reduce model queries ({} vs {})",
        with.meter().snapshot().model_queries,
        without.meter().snapshot().model_queries
    );
}

const BEAM_QUERY: &str =
    "beam(n=2)\n    \"Say:[A]\"\nfrom \"m\"\nwhere A in [\" ok done.\", \" ok gone.\"]\n";

#[test]
fn beam_search_fast_forwards_forced_beams() {
    let with = scripted_runtime(true);
    let a = with.run(BEAM_QUERY).expect("automata beam run");
    let without = scripted_runtime(false);
    let b = without.run(BEAM_QUERY).expect("reference beam run");

    assert_eq!(a.runs.len(), b.runs.len());
    for (x, y) in a.runs.iter().zip(&b.runs) {
        assert_eq!(x.trace, y.trace, "beam trace diverged");
        assert_eq!(
            x.log_prob.to_bits(),
            y.log_prob.to_bits(),
            "beam log-prob not bit-exact"
        );
    }
    assert!(
        with.meter().snapshot().model_queries < without.meter().snapshot().model_queries,
        "forced beams must skip batch scoring ({} vs {})",
        with.meter().snapshot().model_queries,
        without.meter().snapshot().model_queries
    );
}

#[test]
fn distinct_binds_compile_distinct_automata() {
    // The automaton for `A in patterns` depends on the *values* bound to
    // `patterns`: rebinding must not reuse the stale compilation.
    for (bind, expect) in [(" ok done.", " ok done."), (" ok", " ok")] {
        let mut rt = scripted_runtime(true);
        rt.bind("patterns", Value::List(vec![Value::from(bind)]));
        let result = rt
            .run("argmax\n    \"Say:[A]\"\nfrom \"m\"\nwhere A in patterns\n")
            .expect("bound run");
        assert_eq!(result.best().var_str("A"), Some(expect));
        assert_eq!(rt.meter().snapshot().model_queries, 0);
    }
}
