//! Property-based soundness for the hole-dependency analyzer
//! (DESIGN.md §14), gated behind `--features slow-tests` like the other
//! exhaustive suites.
//!
//! Random straight-line bodies are generated with known dependency
//! structure — random `{recall}` edges and random `where` conjuncts
//! drawn from the eager (completion-safe) subset plus deliberately
//! unsafe shapes — and the analyzer's plan is checked against a
//! reference model: every dependency the construction implies must
//! appear in the plan (`plan_holes` may over-approximate, never
//! under-approximate), groups must be a partition with no internal
//! edges, and a sampled subset of cases is run both ways to confirm
//! byte-identity end to end.

#![cfg(feature = "slow-tests")]

use lmql::{compile_source, plan_holes, Runtime};
use lmql_lm::corpus;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Per-hole `where` conjunct menu. `Safe` shapes are in the analyzer's
/// completion-safe subset; `Unsafe*` shapes must serialize the hole
/// against everything after it.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Conjunct {
    None,
    StopsAt,
    NotIn,
    LenUpper,
    UnsafeLenLower,
    UnsafeEq,
}

impl Conjunct {
    fn is_unsafe(self) -> bool {
        matches!(self, Conjunct::UnsafeLenLower | Conjunct::UnsafeEq)
    }

    fn render(self, i: usize) -> Option<String> {
        match self {
            Conjunct::None => None,
            Conjunct::StopsAt => Some(format!("stops_at(H{i}, \"\\n\")")),
            Conjunct::NotIn => Some(format!("not \"zq\" in H{i}")),
            Conjunct::LenUpper => Some(format!("len(H{i}) < 40")),
            Conjunct::UnsafeLenLower => Some(format!("len(H{i}) > 0")),
            Conjunct::UnsafeEq => Some(format!("H{i} != \"never\"")),
        }
    }
}

#[derive(Debug, Clone)]
struct Case {
    /// `recalls[i]` = earlier hole indices spliced into hole `i`'s
    /// prompt segment via `{Hj}`.
    recalls: Vec<Vec<usize>>,
    conjuncts: Vec<Conjunct>,
}

impl Case {
    fn n(&self) -> usize {
        self.conjuncts.len()
    }

    fn source(&self) -> String {
        let mut body = String::new();
        for (i, rec) in self.recalls.iter().enumerate() {
            body.push_str("    \"");
            for j in rec {
                body.push_str(&format!("r{{H{j}}} "));
            }
            body.push_str(&format!("L{i}:[H{i}]\\n\"\n"));
        }
        let conjuncts: Vec<String> = self
            .conjuncts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.render(i))
            .collect();
        let mut src = format!("argmax\n{body}from \"m\"\n");
        if !conjuncts.is_empty() {
            src.push_str(&format!("where {}\n", conjuncts.join(" and ")));
        }
        src
    }

    /// The dependencies the construction implies. Transitively closed so
    /// the subset check below is order-insensitive.
    fn reference_deps(&self) -> Vec<BTreeSet<usize>> {
        let n = self.n();
        let mut deps: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for (i, rec) in self.recalls.iter().enumerate() {
            // Recalled text is part of every context from hole i onward.
            for j in rec {
                for d in deps.iter_mut().skip(i) {
                    d.insert(*j);
                }
            }
        }
        for (i, c) in self.conjuncts.iter().enumerate() {
            // An unsafe conjunct on hole i serializes everything after.
            if c.is_unsafe() {
                for d in deps.iter_mut().skip(i + 1) {
                    d.insert(i);
                }
            }
        }
        deps
    }
}

fn case_strategy(max_holes: usize) -> impl Strategy<Value = Case> {
    // Unweighted union, so safe shapes are weighted by repetition: most
    // cases should parallelize somewhere, with unsafe shapes salted in.
    let conjunct = prop_oneof![
        Just(Conjunct::None),
        Just(Conjunct::StopsAt),
        Just(Conjunct::StopsAt),
        Just(Conjunct::StopsAt),
        Just(Conjunct::NotIn),
        Just(Conjunct::NotIn),
        Just(Conjunct::LenUpper),
        Just(Conjunct::LenUpper),
        Just(Conjunct::UnsafeLenLower),
        Just(Conjunct::UnsafeEq),
    ];
    (
        2..=max_holes,
        proptest::collection::vec(conjunct, max_holes),
        // recalls[i]: a bitmask over the i earlier holes.
        proptest::collection::vec(0u8..=255u8, max_holes),
    )
        .prop_map(|(n, mut conjuncts, masks)| {
            conjuncts.truncate(n);
            let recalls = masks[..n]
                .iter()
                .enumerate()
                .map(|(i, m)| (0..i).filter(|j| m >> j & 1 == 1).collect())
                .collect();
            Case { recalls, conjuncts }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    /// The analyzer never under-approximates: every reference
    /// dependency appears in the plan, dependencies only point
    /// backwards, and groups partition the holes with no internal edge.
    #[test]
    fn analyzer_never_under_approximates(case in case_strategy(6)) {
        let source = case.source();
        let program = compile_source(&source).expect("generated source compiles");
        let plan = plan_holes(&program).expect("straight-line body plans");

        let n = case.n();
        prop_assert_eq!(plan.names().len(), n);
        for (i, name) in plan.names().iter().enumerate() {
            let want = format!("H{i}");
            prop_assert_eq!(name.as_str(), want.as_str());
        }

        // Transitive closure of the plan's direct edges, so reference
        // deps the analyzer routes through an intermediate hole still
        // count as covered.
        let mut closed: Vec<BTreeSet<usize>> = (0..n)
            .map(|i| plan.deps_of(i).clone())
            .collect();
        for i in 0..n {
            let via: Vec<usize> = closed[i].iter().copied().collect();
            for j in via {
                prop_assert!(j < i, "dependency must point backwards");
                let inherited = closed[j].clone();
                closed[i].extend(inherited);
            }
        }

        for (i, want) in case.reference_deps().iter().enumerate() {
            for j in want {
                prop_assert!(
                    closed[i].contains(j),
                    "hole H{} must depend on H{} (plan deps {:?})\nsource:\n{}",
                    i, j, plan.deps_of(i), source
                );
            }
        }

        // Groups: a partition of [0, n) in order, with no dependency
        // edge between two members of the same group.
        let mut next = 0;
        for &(s, e) in plan.groups() {
            prop_assert_eq!(s, next);
            prop_assert!(e > s);
            next = e;
            for i in s..e {
                for j in plan.deps_of(i) {
                    prop_assert!(
                        *j < s,
                        "group [{s},{e}) contains edge H{j} -> H{i}\nsource:\n{}",
                        source
                    );
                }
            }
        }
        prop_assert_eq!(next, n);
    }

    /// A sampled subset decodes both ways: the plan's groups must not
    /// change a single produced byte or billed token.
    #[test]
    fn sampled_cases_decode_identically(case in case_strategy(4)) {
        let source = case.source();
        let make = || {
            let mut rt = Runtime::new(corpus::standard_ngram(), corpus::standard_bpe());
            rt.options_mut().max_tokens_per_hole = 12;
            rt
        };
        let par_rt = make();
        let par = par_rt.run(&source);
        let seq_rt = {
            let mut rt = make();
            rt.options_mut().parallel_holes = false;
            rt
        };
        let seq = seq_rt.run(&source);
        match (&par, &seq) {
            (Ok(p), Ok(s)) => {
                prop_assert_eq!(p.runs.len(), s.runs.len());
                for (a, b) in p.runs.iter().zip(&s.runs) {
                    prop_assert_eq!(&a.trace, &b.trace, "trace for:\n{}", source);
                    prop_assert_eq!(&a.variables, &b.variables);
                    prop_assert_eq!(a.log_prob.to_bits(), b.log_prob.to_bits());
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (p, s) => prop_assert!(false, "parallel {:?} but sequential {:?} for:\n{}", p, s, source),
        }
        let pu = par_rt.meter().snapshot();
        let su = seq_rt.meter().snapshot();
        prop_assert_eq!(pu.decoder_calls, su.decoder_calls);
        prop_assert_eq!(pu.billable_tokens, su.billable_tokens);
    }
}
