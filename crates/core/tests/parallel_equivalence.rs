//! Differential byte-identity for program-level hole parallelism
//! (DESIGN.md §14).
//!
//! The dependency-scheduled decode path is an *optimisation*, never a
//! semantic: for every query — each example program in `examples/` plus
//! a generated grid of multi-hole bodies, across all four decoder
//! clauses — running with `parallel_holes` on must be byte-identical to
//! running fully sequentially. Identical traces, variable bindings,
//! bit-exact log-probabilities, identical `decoder_calls` and
//! `billable_tokens`, and an identical event stream (reassembling to the
//! same result).
//!
//! The one deliberately un-compared counter is `Usage.model_queries`:
//! parallel groups may engage constraint-automata fast-forwarding
//! differently than sequential decoding (a whole-clause compile sees
//! sibling names as unresolved), so the number of forward passes can
//! legitimately differ while every produced byte stays the same.

use lmql::constraints::{CustomOp, Fin, FinalValue, OpCtx};
use lmql::{compile_source, plan_holes, QueryEvent, Reassembler, Runtime, StreamSink, Value};
use lmql_lm::{corpus, Branch, Digression, Episode, ScriptedLm, ScriptedLmBuilder, SCRIPT_LOGIT};
use lmql_tokenizer::Bpe;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Zeroes the counter that may legitimately differ (see module doc).
fn normalize_usage(events: &mut [QueryEvent]) {
    for e in events {
        if let QueryEvent::Usage { model_queries, .. } = e {
            *model_queries = 0;
        }
    }
}

/// Runs `source` twice — parallel holes on (the default) and off — and
/// asserts byte-identity of results, usage and streams.
fn assert_equivalent(name: &str, make: &dyn Fn() -> Runtime, source: &str) {
    // Direct (non-streamed) execution.
    let par_rt = make();
    let par = par_rt.run(source);
    let seq_rt = {
        let mut rt = make();
        rt.options_mut().parallel_holes = false;
        rt
    };
    let seq = seq_rt.run(source);
    match (&par, &seq) {
        (Ok(p), Ok(s)) => {
            assert_eq!(p.runs.len(), s.runs.len(), "{name}: run count");
            for (a, b) in p.runs.iter().zip(&s.runs) {
                assert_eq!(a.trace, b.trace, "{name}: trace");
                assert_eq!(a.variables, b.variables, "{name}: variable bindings");
                assert_eq!(
                    a.log_prob.to_bits(),
                    b.log_prob.to_bits(),
                    "{name}: log-prob bits ({} vs {})",
                    a.log_prob,
                    b.log_prob
                );
            }
            assert_eq!(p.distribution, s.distribution, "{name}: distribution");
        }
        (Err(a), Err(b)) => {
            assert_eq!(a.to_string(), b.to_string(), "{name}: error messages");
        }
        (p, s) => panic!("{name}: parallel {p:?} but sequential {s:?}"),
    }
    let pu = par_rt.meter().snapshot();
    let su = seq_rt.meter().snapshot();
    assert_eq!(pu.decoder_calls, su.decoder_calls, "{name}: decoder_calls");
    assert_eq!(
        pu.billable_tokens, su.billable_tokens,
        "{name}: billable_tokens"
    );

    // Streamed execution: identical event sequences (usage-normalised)
    // and identical reassembly.
    let (sink, collector) = StreamSink::collector();
    let _ = make().run_streamed(source, sink);
    let mut par_events = collector.take();
    let (sink, collector) = StreamSink::collector();
    let seq_rt = {
        let mut rt = make();
        rt.options_mut().parallel_holes = false;
        rt
    };
    let _ = seq_rt.run_streamed(source, sink);
    let mut seq_events = collector.take();
    normalize_usage(&mut par_events);
    normalize_usage(&mut seq_events);
    assert_eq!(par_events, seq_events, "{name}: event streams");
    let par_rebuilt = Reassembler::from_events(&par_events).expect(name);
    let seq_rebuilt = Reassembler::from_events(&seq_events).expect(name);
    assert_eq!(par_rebuilt, seq_rebuilt, "{name}: reassembled streams");
}

fn ngram_runtime() -> Runtime {
    let mut rt = Runtime::new(corpus::standard_ngram(), corpus::standard_bpe());
    rt.options_mut().max_tokens_per_hole = 24;
    rt
}

fn scripted_runtime(episodes: Vec<Episode>) -> Runtime {
    let bpe = corpus::standard_bpe();
    let lm = Arc::new(ScriptedLm::new(Arc::clone(&bpe), episodes));
    Runtime::new(lm, bpe)
}

fn char_runtime(episodes: Vec<Episode>) -> Runtime {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = Arc::new(ScriptedLm::new(Arc::clone(&bpe), episodes));
    Runtime::new(lm, bpe)
}

// ---------------------------------------------------------------------------
// Every example program in examples/
// ---------------------------------------------------------------------------

#[test]
fn example_quickstart() {
    let make = || {
        scripted_runtime(vec![Episode::plain(
            "Q: What is the capital of France?\nA:",
            " The capital of France is Paris. It sits on the Seine and is lovely in spring.",
        )])
    };
    assert_equivalent(
        "quickstart",
        &make,
        r#"
argmax
    "Q: What is the capital of France?\n"
    "A:[ANSWER]"
from "scripted-demo"
where stops_at(ANSWER, ".") and len(words(ANSWER)) < 20
"#,
    );
}

#[test]
fn example_jokes() {
    // Fig. 1a: two genuinely independent holes (both conjunct shapes are
    // completion-safe), so this is the flagship parallel query — assert
    // the plan actually groups them before checking equivalence.
    let source = r#"
beam(n=3)
    "A list of good dad jokes. A indicates the punchline\n"
    "Q: How does a penguin build its house?\n"
    "A: Igloos it together. END\n"
    "Q: [JOKE]\n"
    "A: [PUNCHLINE]\n"
from "builtin-ngram"
where
    stops_at(JOKE, "?") and stops_at(PUNCHLINE, "END")
    and len(words(JOKE)) < 20 and len(characters(PUNCHLINE)) > 10
"#;
    let program = compile_source(source).expect("jokes compiles");
    let plan = plan_holes(&program).expect("straight-line body plans");
    assert_eq!(
        plan.parallel_suffix("JOKE").map(<[String]>::len),
        Some(2),
        "JOKE and PUNCHLINE form one parallel group"
    );
    assert_equivalent("jokes", &ngram_runtime, source);

    // The same body under argmax exercises the group decode path itself
    // (beam search has its own scheduler).
    let argmax_source = source.replacen("beam(n=3)", "argmax", 1);
    assert_equivalent("jokes-argmax", &ngram_runtime, &argmax_source);
}

#[test]
fn example_packing_list() {
    // Loops take the analyzer out of the picture (control flow bails);
    // the query must still be byte-identical with the knob on.
    assert_equivalent(
        "packing_list",
        &ngram_runtime,
        r#"
argmax
    "A list of things not to forget when travelling:\n"
    things = []
    for i in range(2):
        "-[THING]"
        things.append(THING)
    "The most important of these is [ITEM]."
from "builtin-ngram"
where stops_at(THING, "\n") and len(words(THING)) <= 3 and stops_at(ITEM, ".")
distribute ITEM in things
"#,
    );
}

#[test]
fn example_meta_prompting() {
    // {EXPERT} recalled between the holes: a true dependency, so the
    // planner must serialise ANSWER after EXPERT.
    let source = r#"
argmax
    "Q: What is the circumference of the earth?\n"
    "The best person to answer this question would be[EXPERT]\n\n"
    "For instance,{EXPERT} would answer[ANSWER]"
from "scripted-demo"
where
    len(words(EXPERT)) <= 3 and stops_at(EXPERT, ".") and
    stops_at(ANSWER, ".") and not "\n" in EXPERT
"#;
    let program = compile_source(source).expect("meta_prompting compiles");
    let plan = plan_holes(&program).expect("straight-line body plans");
    assert_eq!(plan.max_group_len(), 1, "recall serialises the holes");

    let make = || {
        let bpe = Arc::new(Bpe::char_level(""));
        let lm = Arc::new(
            ScriptedLmBuilder::new(Arc::clone(&bpe))
                .episode(Episode {
                    trigger: "would be".to_owned(),
                    script: " a geophysicist.".to_owned(),
                    digressions: vec![Digression {
                        at: 16,
                        text: "\nwho has a PhD in Geodesy and is a professor at Colorado State \
                               University and will probably have to refer to the relevant books"
                            .to_owned(),
                        replace_remainder: None,
                    }],
                    branches: vec![],
                })
                .episode(Episode::plain(
                    "would answer",
                    " that the circumference of the earth is about 40,075 km.",
                ))
                .build(),
        );
        Runtime::new(lm, bpe)
    };
    assert_equivalent("meta_prompting", &make, source);
}

#[test]
fn example_chat() {
    let make = || {
        let mut rt = char_runtime(vec![Episode::plain(
            "User: hello\nAssistant:",
            " Hi! How can I help you today?\n",
        )]);
        rt.bind("TRANSCRIPT", Value::Str(String::new()));
        rt.bind("INPUT", Value::Str("hello".into()));
        rt
    };
    assert_equivalent(
        "chat",
        &make,
        r#"
argmax(max_length=200)
    "{TRANSCRIPT}"
    "User: {INPUT}\n"
    "Assistant:[REPLY]"
from "chat-model"
where stops_at(REPLY, "\n") and len(words(REPLY)) < 30 and not "User:" in REPLY
"#,
    );
}

#[test]
fn example_debugger() {
    let make = || {
        scripted_runtime(vec![Episode::plain(
            "Mode:",
            " Search then more text that never appears",
        )])
    };
    assert_equivalent(
        "debugger",
        &make,
        r#"
argmax
    "Mode:[MODE] selected."
from "scripted-demo"
where MODE in [" Search", " Finish"]
"#,
    );
}

/// The grammar example's custom constraint op: `arith(X)` holds while X
/// is (a prefix of) a well-formed arithmetic expression.
struct ArithGrammar;

fn classify(s: &str) -> i8 {
    let mut depth = 0i32;
    let mut expect_operand = true;
    for c in s.chars() {
        match c {
            '0'..='9' => expect_operand = false,
            '(' if expect_operand => depth += 1,
            ')' if !expect_operand && depth > 0 => depth -= 1,
            '+' | '-' | '*' | '/' if !expect_operand => expect_operand = true,
            _ => return -1, // invalid
        }
    }
    if depth == 0 && !expect_operand {
        1 // complete
    } else {
        0 // prefix
    }
}

impl CustomOp for ArithGrammar {
    fn forward(&self, args: &[Value], ctx: &OpCtx<'_>) -> Result<Value, String> {
        let s = args[0].as_str().ok_or("arith() expects a string")?;
        Ok(Value::Bool(match classify(s) {
            1 => true,
            0 => !ctx.var_final,
            _ => false,
        }))
    }

    fn final_hint(&self, args: &[FinalValue], result: &Value, _ctx: &OpCtx<'_>) -> Fin {
        match (args[0].fin, result) {
            (Fin::Inc, Value::Bool(false)) => Fin::Fin,
            (Fin::Fin, _) => Fin::Fin,
            _ => Fin::Var,
        }
    }
}

#[test]
fn example_grammar() {
    let make = || {
        let bpe = Arc::new(Bpe::char_level(""));
        let lm = Arc::new(ScriptedLm::new(
            Arc::clone(&bpe),
            [Episode::plain("Formula: ", "2+(3*4")],
        ));
        let mut rt = Runtime::new(lm, bpe);
        rt.register_constraint_op("arith", Arc::new(ArithGrammar));
        rt
    };
    assert_equivalent(
        "grammar",
        &make,
        r#"
argmax(max_length=24)
    "Formula: [EXPR]"
from "scripted-demo"
where arith(EXPR)
"#,
    );
}

#[test]
fn example_sentiment() {
    let make = || {
        char_runtime(vec![Episode {
            trigger: "Sentiment: ".to_owned(),
            script: "POSITIVE".to_owned(),
            digressions: vec![],
            branches: vec![Branch {
                at: 0,
                text: "NEGATIVE".to_owned(),
                weight: SCRIPT_LOGIT - 0.9,
            }],
        }])
    };
    assert_equivalent(
        "sentiment",
        &make,
        r#"
argmax
    "Review: The staff were friendly and the food arrived quickly.\n"
    "Sentiment: [LABEL]"
from "scripted-demo"
distribute LABEL in ["POSITIVE", "NEGATIVE"]
"#,
    );
}

#[test]
fn example_translation() {
    let make = || {
        char_runtime(vec![Episode {
            trigger: "cheese =>".to_owned(),
            script: " fromage".to_owned(),
            digressions: vec![],
            branches: vec![Branch {
                at: 0,
                text: " jambon".to_owned(),
                weight: SCRIPT_LOGIT - 2.5,
            }],
        }])
    };
    assert_equivalent(
        "translation",
        &make,
        r#"
argmax
    "Translate English to French:\n"
    "sea otter => loutre de mer\n"
    "peppermint => menthe poivree\n"
    "plush giraffe => girafe peluche\n"
    "cheese =>[TRANSLATION]"
from "scripted-demo"
distribute TRANSLATION in [" fromage", " jambon", " poisson"]
"#,
    );
}

#[test]
fn example_arithmetic() {
    // The bench ARITHMETIC query shape: an interactive loop splicing
    // calculator results back into the prompt. External calls are
    // scheduling barriers, so the planner stays out; equivalence must
    // hold regardless.
    let make = || {
        let mut rt = scripted_runtime(vec![Episode::plain(
            "A: Let's think step by step.\n",
            " << 2+3 = 5 >> So the answer is 5.",
        )]);
        rt.register_external("calculator", "run", |args| {
            let s = args[0].as_str().ok_or("run expects a string")?;
            let sum: i64 = s
                .trim()
                .trim_end_matches('=')
                .trim()
                .split('+')
                .map(|p| p.trim().parse::<i64>().unwrap_or(0))
                .sum();
            Ok(Value::Int(sum))
        });
        rt.bind("FEWSHOT", Value::Str(String::new()));
        rt.bind("QUESTION", Value::Str("What is 2+3?".into()));
        rt
    };
    assert_equivalent(
        "arithmetic",
        &make,
        r#"import calculator
argmax
    "{FEWSHOT}"
    "Q: {QUESTION}\n"
    "A: Let's think step by step.\n"
    for i in range(16):
        "[STEP]"
        if STEP.endswith("<<"):
            "[EXPR]"
            result = calculator.run(EXPR)
            " {result} >>"
        elif STEP.endswith("So the answer"):
            " is [RESULT]"
            break
from "gpt-j-6b-sim"
where
    int(RESULT) and stops_at(STEP, "<<") and
    stops_at(EXPR, "=") and stops_at(STEP, "So the answer")
"#,
    );
}

#[test]
fn example_chain_of_thought() {
    // The bench ODD_ONE_OUT query shape against the built-in n-gram
    // model: reasoning hole plus a distribute clause over a computed
    // support.
    let make = || {
        let mut rt = ngram_runtime();
        rt.bind("FEWSHOT", Value::Str(String::new()));
        rt.bind("OPTIONS", Value::Str("cat, dog, car".into()));
        rt
    };
    assert_equivalent(
        "chain_of_thought",
        &make,
        r#"
argmax
    "{FEWSHOT}"
    "Pick the odd word out: {OPTIONS}\n"
    "[REASONING]"
    "\nSo the odd one is [RESULT]."
from "gpt-j-6b-sim"
where
    not "\n" in REASONING and not "Pick" in REASONING and
    stops_at(REASONING, ".") and len(words(REASONING)) < 60
distribute
    RESULT in OPTIONS.split(", ")
"#,
    );
}

#[test]
fn example_react() {
    // The bench REACT query shape: a Thought/Action loop with a
    // wikipedia search spliced back in (external call = barrier).
    let make = || {
        let mut rt = scripted_runtime(vec![Episode::plain(
            "Where is cheese made?\n",
            "Tho: I should search.\nAct: Search 'cheese'\nObs: result\nAct: Finish 'done'\n",
        )]);
        rt.register_external("wikipedia_utils", "search", |args| {
            let _ = args[0].as_str().ok_or("search expects a string")?;
            Ok(Value::Str("result".into()))
        });
        rt.bind("FEWSHOT", Value::Str(String::new()));
        rt.bind("QUESTION", Value::Str("Where is cheese made?".into()));
        rt
    };
    assert_equivalent(
        "react",
        &make,
        r#"import wikipedia_utils
argmax
    "{FEWSHOT}"
    "{QUESTION}\n"
    for i in range(10):
        "[MODE]:"
        if MODE == "Tho":
            "[THOUGHT]"
        elif MODE == "Act":
            " [ACTION] '[SUBJECT]\n"
            if ACTION == "Search":
                result = wikipedia_utils.search(SUBJECT[:-1])
                "Obs: {result}\n"
            else:
                break
from "gpt-j-6b-sim"
where
    MODE in ["Tho", "Act"] and stops_at(THOUGHT, "\n") and
    ACTION in ["Search", "Finish"] and stops_at(SUBJECT, "'")
"#,
    );
}

#[test]
fn example_remote() {
    // The remote example's query (the wire stack itself is covered by
    // the server crate's tests; here the query shape rides the suite).
    let make = || {
        scripted_runtime(vec![Episode::plain(
            "Q: What makes Quantum Forge?\nA:",
            " Quantum Forge makes precision actuators. Also other products nobody asked about.",
        )])
    };
    assert_equivalent(
        "remote",
        &make,
        r#"
argmax
    "Q: What makes Quantum Forge?\n"
    "A:[ANSWER]"
from "remote-model"
where stops_at(ANSWER, ".")
"#,
    );
}

// ---------------------------------------------------------------------------
// Generated grid: multi-hole bodies × all four decoder clauses
// ---------------------------------------------------------------------------

/// Builds a straight-line body of `n` holes with per-hole prompts, a
/// where clause assembled from `conjuncts`, and an optional recall edge
/// making hole `i` depend on hole `i-1`.
fn grid_source(decoder: &str, n: usize, conjuncts: &[String], recall_chain: bool) -> String {
    let mut body = String::new();
    for i in 0..n {
        if recall_chain && i > 0 {
            body.push_str(&format!(
                "    \"prev={{H{prev}}} L{i}:[H{i}]\"\n",
                prev = i - 1
            ));
        } else {
            body.push_str(&format!("    \"L{i}:[H{i}]\"\n"));
        }
    }
    let mut src = format!("{decoder}\n{body}from \"m\"\n");
    if !conjuncts.is_empty() {
        src.push_str(&format!("where {}\n", conjuncts.join(" and ")));
    }
    src
}

#[test]
fn generated_grid_all_decoders() {
    // The paper's three decoder clauses plus `distribute` (covered as
    // an argmax run ending in a distribution, the fourth clause form).
    let decoders = ["argmax", "sample(n=2, temperature=1.2)", "beam(n=2)"];
    // Conjunct menus: all completion-safe (holes parallelise), one
    // unsafe shape on an early hole (serialises the suffix), and a
    // sibling-value reference (dependency through the where clause).
    type Menu = fn(usize) -> Vec<String>;
    let menus: [(&str, Menu); 4] = [
        ("safe", |n| {
            (0..n)
                .map(|i| format!("stops_at(H{i}, \"\\n\") and len(H{i}) < 40"))
                .collect()
        }),
        ("unsafe-first", |n| {
            let mut v: Vec<String> = (0..n).map(|i| format!("stops_at(H{i}, \"\\n\")")).collect();
            v.push("len(H0) > 1".to_owned());
            v
        }),
        ("not-in", |n| {
            (0..n)
                .map(|i| format!("stops_at(H{i}, \"\\n\") and not \"q\" in H{i}"))
                .collect()
        }),
        ("bare", |_| Vec::new()),
    ];
    for decoder in decoders {
        for n in [2usize, 3, 4] {
            for (menu_name, menu) in &menus {
                for recall_chain in [false, true] {
                    let source = grid_source(decoder, n, &menu(n), recall_chain);
                    let name = format!("grid {decoder} n={n} {menu_name} chain={recall_chain}");
                    assert_equivalent(&name, &ngram_runtime, &source);
                }
            }
        }
    }
}

#[test]
fn generated_grid_distribute() {
    // The fourth decoder clause: a trailing distribute hole after a
    // parallel group.
    for n in [2usize, 3] {
        let conjuncts: Vec<String> = (0..n).map(|i| format!("stops_at(H{i}, \"\\n\")")).collect();
        let mut source = grid_source("argmax", n, &conjuncts, false);
        source.push_str("distribute D in [\" yes\", \" no\"]\n");
        // The distribute hole needs to appear in the body.
        let source = source.replacen("from \"m\"", "    \"verdict:[D]\"\nfrom \"m\"", 1);
        assert_equivalent(&format!("grid distribute n={n}"), &ngram_runtime, &source);
    }
}

#[test]
fn grid_plans_match_expectations() {
    // Sanity on the grid itself: the safe menu genuinely parallelises
    // and the recall chain genuinely serialises — so the equivalence
    // runs above exercise both code paths.
    let safe = grid_source(
        "argmax",
        3,
        &(0..3)
            .map(|i| format!("stops_at(H{i}, \"\\n\")"))
            .collect::<Vec<_>>(),
        false,
    );
    let program = compile_source(&safe).expect("grid compiles");
    let plan = plan_holes(&program).expect("straight-line body");
    assert_eq!(plan.max_group_len(), 3);

    let chained = grid_source(
        "argmax",
        3,
        &(0..3)
            .map(|i| format!("stops_at(H{i}, \"\\n\")"))
            .collect::<Vec<_>>(),
        true,
    );
    let program = compile_source(&chained).expect("grid compiles");
    let plan = plan_holes(&program).expect("straight-line body");
    assert_eq!(plan.max_group_len(), 1, "recall chain serialises");
}
