//! Integration tests for scripted beam search (§4) through the public
//! runtime API.

use lmql::{Runtime, Value};
use lmql_lm::{Branch, Episode, ScriptedLm, SCRIPT_LOGIT};
use lmql_tokenizer::Bpe;
use std::sync::Arc;

fn runtime(episodes: Vec<Episode>) -> Runtime {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = Arc::new(ScriptedLm::new(Arc::clone(&bpe), episodes));
    Runtime::new(lm, bpe)
}

#[test]
fn beams_all_satisfy_constraints() {
    let rt = runtime(vec![Episode {
        trigger: "M:".to_owned(),
        script: "abc".to_owned(),
        digressions: vec![],
        branches: vec![Branch {
            at: 0,
            text: "abd".to_owned(),
            weight: SCRIPT_LOGIT - 0.5,
        }],
    }]);
    let result = rt
        .run("beam(n=3)\n    \"M:[X]\"\nfrom \"m\"\nwhere X in [\"abc\", \"abd\", \"zzz\"]\n")
        .unwrap();
    assert!(!result.runs.is_empty());
    assert!(result.runs.len() <= 3);
    for run in &result.runs {
        let v = run.var_str("X").unwrap();
        // Every surviving beam is a member of the allowed set — including
        // the low-probability "zzz" kept alive by beam diversity.
        assert!(
            ["abc", "abd", "zzz"].contains(&v),
            "constraint violated: {v:?}"
        );
    }
    // Best-first ordering with the script continuation winning.
    assert_eq!(result.best().var_str("X"), Some("abc"));
    assert_eq!(result.runs[1].var_str("X"), Some("abd"), "branch is second");
}

#[test]
fn beams_respect_stop_phrases() {
    let rt = runtime(vec![Episode::plain("S:", " one. two. three.")]);
    let result = rt
        .run("beam(n=2)\n    \"S:[X]\"\nfrom \"m\"\nwhere stops_at(X, \".\")\n")
        .unwrap();
    // stops_at is a stopping condition, not a requirement: a beam may
    // also end at EOS before any period. But no beam ever runs past the
    // first period, and the best beam follows the script to it.
    for run in &result.runs {
        let v = run.var_str("X").unwrap();
        assert!(v.matches('.').count() <= 1, "ran past the stop: {v:?}");
        if let Some(pos) = v.find('.') {
            assert_eq!(pos, v.len() - 1, "text after the stop phrase: {v:?}");
        }
    }
    assert_eq!(result.best().var_str("X"), Some(" one."));
}

#[test]
fn beam_branches_run_different_externals() {
    // The two beams take different ACTION values, and each action calls
    // the external with a different argument — per-beam control flow with
    // side effects, the §4 scripted-beam-search scenario.
    let rt_builder = || {
        let mut rt = runtime(vec![Episode {
            trigger: "Act:".to_owned(),
            script: " go 'left'\n".to_owned(),
            digressions: vec![],
            branches: vec![Branch {
                at: 0,
                text: " go 'right'\n".to_owned(),
                weight: SCRIPT_LOGIT - 0.3,
            }],
        }]);
        rt.register_external("nav", "reward", |args| {
            let side = args[0].as_str().ok_or("expected str")?;
            Ok(Value::Str(format!(
                "reward-for-{}",
                side.trim_matches('\'')
            )))
        });
        rt
    };
    let rt = rt_builder();
    let result = rt
        .run(
            r#"
import nav
beam(n=2)
    "Act: go '[SIDE]\n"
    r = nav.reward(SIDE[:-1])
    "outcome: {r}\n"
from "m"
where stops_at(SIDE, "'")
"#,
        )
        .unwrap();
    let traces: Vec<&str> = result.runs.iter().map(|r| r.trace.as_str()).collect();
    assert!(
        traces.iter().any(|t| t.contains("reward-for-left")),
        "{traces:?}"
    );
    assert!(
        traces.iter().any(|t| t.contains("reward-for-right")),
        "{traces:?}"
    );
}

#[test]
fn beam_n1_matches_argmax() {
    let query_beam = "beam(n=1)\n    \"P:[X]\"\nfrom \"m\"\nwhere stops_at(X, \".\")\n";
    let query_argmax = "argmax\n    \"P:[X]\"\nfrom \"m\"\nwhere stops_at(X, \".\")\n";
    let rt = runtime(vec![Episode::plain("P:", " same answer. more")]);
    let beam = rt.run(query_beam).unwrap();
    let argmax = rt.run(query_argmax).unwrap();
    assert_eq!(beam.best().trace, argmax.best().trace);
}
