//! Rope-trace equivalence (DESIGN.md §13): the chunked immutable trace
//! must be observably identical to the `String` trace it replaced — same
//! bytes under every access pattern, and byte-identical query results
//! across all four decoder clauses, both directly and when reassembled
//! from the event stream (whose `prompt_chunk` deltas are produced by
//! rope suffix materialisation).

use lmql::{QueryEvent, Reassembler, Runtime, StreamSink};
use lmql_arena::Rope;
use lmql_lm::corpus;

const QUERIES: [(&str, &str); 4] = [
    (
        "argmax",
        "argmax\n    \"A list of things not to forget when travelling:\\n-[THING]\"\nfrom \"m\"\nwhere stops_at(THING, \"\\n\")\n",
    ),
    (
        "sample",
        "sample(n=2, temperature=1.2)\n    \"A list of things not to forget when travelling:\\n-[THING]\"\nfrom \"m\"\nwhere stops_at(THING, \"\\n\")\n",
    ),
    (
        "beam",
        "beam(n=2)\n    \"A list of things not to forget when travelling:\\n-[THING]\"\nfrom \"m\"\nwhere stops_at(THING, \"\\n\")\n",
    ),
    (
        "distribute",
        "argmax\n    \"Review: great\\nSentiment:[CLS]\"\nfrom \"m\"\ndistribute CLS in [\" positive\", \" negative\"]\n",
    ),
];

fn runtime() -> Runtime {
    let mut rt = Runtime::new(corpus::standard_ngram(), corpus::standard_bpe());
    rt.options_mut().max_tokens_per_hole = 24;
    rt
}

/// The rope behaves exactly like the `String` it replaced under every
/// access pattern the runtime uses: full materialisation, suffix deltas,
/// range slicing, prefix/suffix probes.
#[test]
fn rope_matches_string_semantics_chunk_by_chunk() {
    let pieces = [
        "A list of things ",
        "",
        "not to forget when travelling:\n- ",
        "sun screen",
        "\u{2713} unicode ",
        "tail.",
    ];
    let mut rope = Rope::new();
    let mut model = String::new();
    let mut cuts = vec![0usize];
    for piece in pieces {
        rope.push_str(piece);
        model.push_str(piece);
        cuts.push(model.len());
        assert_eq!(rope.len(), model.len());
        assert_eq!(rope, model.as_str());
        assert_eq!(rope.to_string(), model);
    }
    // Every chunk-boundary suffix — the streaming `prompt_chunk` deltas.
    let mut buf = String::new();
    for &cut in &cuts {
        rope.write_suffix(cut, &mut buf);
        assert_eq!(buf, &model[cut..]);
        assert_eq!(rope.suffix_string(cut), &model[cut..]);
    }
    // Every chunk-boundary range — hole-record slicing.
    for (i, &start) in cuts.iter().enumerate() {
        for &end in &cuts[i..] {
            assert_eq!(rope.slice_string(start..end), &model[start..end]);
        }
    }
    assert!(rope.starts_with(&model[..cuts[2]]));
    assert!(rope.ends_with("tail."));
    // A fork shares every chunk and stays equal.
    let fork = rope.clone();
    assert_eq!(fork, model.as_str());
}

/// All four decoder clauses produce byte-identical traces whether read
/// from the rope-backed `QueryRun` directly or reassembled from streamed
/// suffix deltas.
#[test]
fn all_decoders_round_trip_traces_through_the_stream() {
    for (name, source) in QUERIES {
        let direct = runtime().run(source).expect(name);

        let (sink, collector) = StreamSink::collector();
        let streamed = runtime().run_streamed(source, sink).expect(name);
        let events = collector.events();
        assert!(!events.is_empty(), "{name}: no events");

        assert_eq!(streamed.runs.len(), direct.runs.len(), "{name}");
        for (a, b) in streamed.runs.iter().zip(&direct.runs) {
            assert_eq!(a.trace, b.trace, "{name}: streamed trace differs");
            assert_eq!(a.log_prob.to_bits(), b.log_prob.to_bits(), "{name}");
        }

        let rebuilt = Reassembler::from_events(&events).expect(name);
        assert!(rebuilt.error.is_none(), "{name}: stream error");
        assert_eq!(rebuilt.runs.len(), direct.runs.len(), "{name}");
        for (got, want) in rebuilt.runs.iter().zip(&direct.runs) {
            assert_eq!(got.trace, want.trace, "{name}: reassembled trace differs");
        }

        // The rope suffix materialisation must preserve the documented
        // invariant that prompt deltas are never empty (an empty suffix
        // is dropped, not streamed).
        for e in &events {
            if let QueryEvent::PromptChunk { text, .. } = e {
                assert!(!text.is_empty(), "{name}: empty prompt chunk streamed");
            }
        }
    }
}
