//! Differential tests for compiled constraint automata (DESIGN.md §12):
//! with `MaskConfig::automata` on, every mask must be *bit-identical* to
//! the reference (uncompiled) configuration for both engines, clauses
//! the compiler rejects must fall back transparently, and end-to-end
//! query results — plain and streamed — must not change by a single bit.
//!
//! The automaton serves masks from a per-state cache keyed by a product
//! of per-leaf DFA states, so the interesting cases are: repeated values
//! (state-cache hits), growing prefixes (fresh states delegating to the
//! engine), dead states, and clauses mixing compilable and rejected
//! leaves.

use lmql::constraints::{
    CustomOp, CustomOps, Fin, FinalValue, MaskConfig, MaskEngine, MaskOutcome, Masker, OpCtx,
    VocabSource,
};
use lmql::{QueryEvent, Runtime, StreamSink, Value};
use lmql_lm::corpus;
use lmql_syntax::parse_expr;
use lmql_tokenizer::Vocabulary;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug)]
struct RawVocab(Vocabulary);

impl VocabSource for RawVocab {
    fn vocabulary(&self) -> &Vocabulary {
        &self.0
    }
}

fn small_vocab() -> Arc<RawVocab> {
    Arc::new(RawVocab(Vocabulary::from_tokens([
        "a", "b", "c", "d", "ab", "ba", "bc", "cd", "abc", "a.", "b.", ".", "!", " ", "x", "yz",
        "1", "42", "-", "cad",
    ])))
}

fn wide_vocab() -> Arc<RawVocab> {
    let toks: Vec<String> = (0..329)
        .map(|i| match i % 7 {
            0 => format!("w{i}"),
            1 => format!("{i}"),
            2 => format!(" t{i}"),
            3 => format!("x{i}."),
            4 => format!("ab{i}"),
            5 => format!("{}{i}", ".".repeat(i % 3 + 1)),
            _ => format!("z{i}!"),
        })
        .collect();
    Arc::new(RawVocab(Vocabulary::from_tokens(
        toks.iter().map(String::as_str),
    )))
}

/// Constraint templates over hole variable `X`, stressing every leaf the
/// compiler supports (options, substring haystack, needle containment,
/// equality, stop phrases, length metrics, int shape) plus clauses it
/// must reject (unknown calls, unresolvable names) and mixtures of both.
const CONSTRAINTS: &[&str] = &[
    // Options / equality.
    "X in [\"ab\", \"abc\", \"cd.\"]",
    "X == \"abc\"",
    "X != \"ab\"",
    "X not in [\"x\", \"a.\"]",
    "X in options",
    // Substring-of-haystack and needle containment.
    "X in \"abracadabra\"",
    "\"b\" in X",
    "not \".\" in X",
    "\"ab\" not in X",
    // Stop phrases, including multi-character ones.
    "stops_at(X, \".\") and len(X) <= 6",
    "stops_at(X, \"ab\")",
    "stops_at(X, \"b.\") and not \"!\" in X",
    // Length metrics and int shape.
    "len(X) < 4",
    "len(words(X)) < 3",
    "len(X) > 1 or \"1\" in X",
    "int(X)",
    // Rejected clauses (fallback path must stay bit-identical too).
    "unknown_op(X)",
    "len(X) < 4 and unknown_op(X)",
    "X in unresolvable_name",
];

/// Step values: repeats (state-cache hits), growing prefixes (a decode
/// in progress), dead values, digits, whitespace and stop-phrase ends.
const VALUES: &[&str] = &[
    "", "a", "ab", "ab", "", "abc", "a.", "1", "-", "-4", "ab", " ", "a", "abra", "q", "b.",
];

fn scope_variants() -> Vec<HashMap<String, Value>> {
    let mut with_options = HashMap::new();
    with_options.insert(
        "options".to_owned(),
        Value::List(vec!["ab".into(), "abc".into()]),
    );
    let mut other_options = HashMap::new();
    other_options.insert("options".to_owned(), Value::List(vec!["a.".into()]));
    vec![HashMap::new(), with_options, other_options]
}

fn run_grid(masker: &mut Masker) -> Vec<MaskOutcome> {
    let scopes = scope_variants();
    let mut out = Vec::new();
    for constraint in CONSTRAINTS {
        let expr = parse_expr(constraint).unwrap();
        for scope in &scopes {
            for value in VALUES {
                out.push(masker.compute(Some(&expr), scope, "X", value));
            }
        }
    }
    out
}

fn assert_grids_equal(got: &[MaskOutcome], want: &[MaskOutcome], label: &str) {
    assert_eq!(got.len(), want.len());
    for (i, (g, r)) in got.iter().zip(want).enumerate() {
        assert_eq!(g, r, "{label} diverged from reference at grid step {i}");
    }
}

#[test]
fn automaton_masks_bit_equal_to_reference() {
    for vocab in [small_vocab(), wide_vocab()] {
        for engine in [MaskEngine::Exact, MaskEngine::Symbolic] {
            let reference = run_grid(
                &mut Masker::new(engine, vocab.clone()).with_config(MaskConfig::reference()),
            );
            // Memo off isolates the automaton: every mask is either an
            // automaton-state hit or a direct engine computation.
            let automata_only = MaskConfig {
                memo: false,
                ..MaskConfig::default()
            };
            let mut masker = Masker::new(engine, vocab.clone()).with_config(automata_only);
            let first = run_grid(&mut masker);
            assert_grids_equal(
                &first,
                &reference,
                &format!("{engine:?}/automata cold pass"),
            );
            // Second pass over the same masker is served almost entirely
            // from cached automaton states — still bit-identical.
            let second = run_grid(&mut masker);
            assert_grids_equal(
                &second,
                &reference,
                &format!("{engine:?}/automata warm pass"),
            );
        }
    }
}

#[test]
fn default_config_matches_reference_with_automata_and_memo() {
    for vocab in [small_vocab(), wide_vocab()] {
        for engine in [MaskEngine::Exact, MaskEngine::Symbolic] {
            let reference = run_grid(
                &mut Masker::new(engine, vocab.clone()).with_config(MaskConfig::reference()),
            );
            let got = run_grid(&mut Masker::new(engine, vocab.clone()));
            assert_grids_equal(&got, &reference, &format!("{engine:?}/default config"));
        }
    }
}

#[test]
fn automaton_metrics_report_hits_states_and_compile_time() {
    let registry = lmql_obs::Registry::new();
    let mut masker = Masker::new(MaskEngine::Symbolic, small_vocab())
        .with_config(MaskConfig {
            memo: false,
            ..MaskConfig::default()
        })
        .with_metrics(&registry);
    run_grid(&mut masker);
    run_grid(&mut masker); // warm pass: repeated states must hit
    let snap = registry.snapshot();
    let hits = snap.counter("automata.hit").unwrap_or(0);
    let fallbacks = snap.counter("automata.fallback").unwrap_or(0);
    let states = snap.gauge("automata.states").unwrap_or(0);
    let compiles = snap.histogram("automata.compile_us").map_or(0, |h| h.count);
    assert!(hits > 0, "repeated grid values must hit automaton states");
    assert!(
        fallbacks > 0,
        "the grid's rejected clauses must count as fallbacks"
    );
    assert!(states > 0, "discovered states must be gauged");
    assert!(
        compiles > 0,
        "fresh compilations must record automata.compile_us"
    );
}

#[test]
fn custom_operator_clauses_fall_back_to_followmap() {
    /// `shorter_than_three(X)`: at most 2 characters.
    struct ShorterThanThree;
    impl CustomOp for ShorterThanThree {
        fn forward(&self, args: &[Value], _ctx: &OpCtx<'_>) -> Result<Value, String> {
            let s = args[0].as_str().ok_or("expected a string")?;
            Ok(Value::Bool(s.chars().count() <= 2))
        }
        fn final_hint(&self, _args: &[FinalValue], result: &Value, _ctx: &OpCtx<'_>) -> Fin {
            match result {
                Value::Bool(false) => Fin::Fin,
                _ => Fin::Var,
            }
        }
    }

    let vocab = small_vocab();
    // The whole clause must be rejected: a custom op anywhere in the
    // expression can read the full value, so no leaf abstraction is safe.
    let expr = parse_expr("shorter_than_three(X) and len(X) < 5").unwrap();
    let scope = HashMap::new();
    let mut ops = CustomOps::new();
    ops.register("shorter_than_three", Arc::new(ShorterThanThree));

    let registry = lmql_obs::Registry::new();
    let mut with_automata = Masker::new(MaskEngine::Exact, vocab.clone())
        .with_custom_ops(ops.clone())
        .with_metrics(&registry);
    let mut reference = Masker::new(MaskEngine::Exact, vocab.clone())
        .with_custom_ops(ops)
        .with_config(MaskConfig::reference());
    for value in ["", "a", "ab", "abc", "ab"] {
        let got = with_automata.compute(Some(&expr), &scope, "X", value);
        let want = reference.compute(Some(&expr), &scope, "X", value);
        assert_eq!(got, want, "custom-op fallback diverged at value {value:?}");
    }
    let snap = registry.snapshot();
    assert!(
        snap.counter("automata.fallback").unwrap_or(0) > 0,
        "custom-op clause must be counted as a fallback"
    );
    assert_eq!(
        snap.counter("automata.hit").unwrap_or(0),
        0,
        "custom-op clause must never be served from an automaton"
    );
}

const E2E_QUERIES: &[&str] = &[
    // Stop-phrase constrained argmax (compiles to a Stop leaf).
    "argmax\n    \"A list of things not to forget when travelling:\\n-[THING]\"\nfrom \"m\"\nwhere stops_at(THING, \"\\n\")\n",
    // Conjunction of compilable leaves, sampled (RNG stream must align).
    "sample(n=2, temperature=1.2)\n    \"A list of things not to forget when travelling:\\n-[THING]\"\nfrom \"m\"\nwhere stops_at(THING, \"\\n\") and len(THING) < 40\n",
    // Beam search with an options constraint.
    "beam(n=2)\n    \"A list of things not to forget when travelling:\\n-[THING]\"\nfrom \"m\"\nwhere stops_at(THING, \"\\n\") and not \"!\" in THING\n",
];

fn e2e_runtime(automata: bool) -> Runtime {
    let mut rt = Runtime::new(corpus::standard_ngram(), corpus::standard_bpe());
    rt.options_mut().max_tokens_per_hole = 24;
    rt.options_mut().mask.automata = automata;
    rt
}

#[test]
fn end_to_end_results_identical_with_and_without_automata() {
    for source in E2E_QUERIES {
        let with = e2e_runtime(true).run(source).expect("automata run");
        let without = e2e_runtime(false).run(source).expect("reference run");
        assert_eq!(with.runs.len(), without.runs.len(), "query: {source}");
        for (a, b) in with.runs.iter().zip(&without.runs) {
            assert_eq!(a.trace, b.trace, "trace differs for query: {source}");
            assert_eq!(
                a.log_prob.to_bits(),
                b.log_prob.to_bits(),
                "log-prob not bit-exact for query: {source}"
            );
            let holes_a: Vec<_> = a.hole_records.iter().map(|r| (&r.var, &r.value)).collect();
            let holes_b: Vec<_> = b.hole_records.iter().map(|r| (&r.var, &r.value)).collect();
            assert_eq!(holes_a, holes_b, "holes differ for query: {source}");
        }
    }
}

#[test]
fn streamed_runs_reassemble_identically_with_automata() {
    for source in E2E_QUERIES {
        let reference = e2e_runtime(false).run(source).expect("reference run");

        let (sink, collector) = StreamSink::collector();
        let streamed = e2e_runtime(true)
            .run_streamed(source, sink)
            .expect("streamed automata run");
        let events = collector.events();
        assert!(!events.is_empty(), "stream produced no events");
        assert_eq!(streamed.runs.len(), reference.runs.len());

        // The event stream alone — emitted through the automaton path,
        // including any fast-forwarded tokens — rebuilds the reference
        // result byte for byte.
        let rebuilt = lmql::Reassembler::from_events(&events).expect("reassembly");
        assert!(rebuilt.error.is_none(), "stream ended in error");
        assert_eq!(rebuilt.runs.len(), reference.runs.len());
        for (got, want) in rebuilt.runs.iter().zip(&reference.runs) {
            assert_eq!(got.trace, want.trace, "trace differs for query: {source}");
            let want_holes: Vec<(String, String)> = want
                .hole_records
                .iter()
                .map(|r| (r.var.clone(), r.value.clone()))
                .collect();
            assert_eq!(got.holes, want_holes, "holes differ for query: {source}");
            assert_eq!(
                got.log_prob.to_bits(),
                want.log_prob.to_bits(),
                "log-prob not bit-exact for query: {source}"
            );
        }
        // Token deltas reassemble the same final text per path.
        assert!(events
            .iter()
            .any(|e| matches!(e, QueryEvent::TokenDelta { .. })));
    }
}
