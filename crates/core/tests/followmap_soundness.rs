//! FollowMap soundness (Theorem 5.1) over *random* vocabularies.
//!
//! The companion suite in `mask_soundness.rs` checks the theorem against
//! one fixed vocabulary; here every case also draws a fresh small
//! vocabulary, so the eager mask is exercised over many distinct
//! tokenisations of the same constraints. The oracle is brute force:
//! decode a candidate token, then search all completions up to a bounded
//! depth — if any completion satisfies the constraint, the token was
//! decodable and must not have been masked (`T_Q ⊆ M`).

// Property suites ride behind the default-off `slow-tests` feature:
// run them with `cargo test --features slow-tests`.
#![cfg(feature = "slow-tests")]

use lmql::constraints::{
    collect_stop_phrases, eval_final, EvalCtx, MaskConfig, MaskEngine, Masker, ParallelScan,
    VocabSource,
};
use lmql_syntax::parse_expr;
use lmql_tokenizer::{TokenId, Vocabulary};
use proptest::prelude::*;
use proptest::test_runner::TestRng;
use std::collections::HashMap;
use std::sync::Arc;

/// A bare vocabulary as a mask source (no BPE needed for mask tests).
#[derive(Debug)]
struct RawVocab(Vocabulary);

impl VocabSource for RawVocab {
    fn vocabulary(&self) -> &Vocabulary {
        &self.0
    }
}

/// Candidate-token pool. Each case samples a small subsequence as its
/// vocabulary — overlapping tokens ("a"/"ab"/"abc"), stop-phrase
/// carriers ("a.", "b."), digits for `int`, and whitespace for `words`.
const POOL: &[&str] = &[
    "a", "b", "c", "d", "ab", "ba", "bc", "cd", "abc", "a.", "b.", ".", "!", " ", "x", "yz", "1",
    "42",
];

/// Generates a random small vocabulary (3–8 distinct pool tokens, order
/// preserved) plus a trace decodable in it (0–3 of its own tokens). The
/// trace depends on the vocabulary, so a single strategy draws both.
#[derive(Debug, Clone, Copy)]
struct CaseStrategy;

impl Strategy for CaseStrategy {
    type Value = (Vec<&'static str>, String);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let size = 3 + rng.below(6) as usize;
        // Uniform order-preserving subset of POOL with exactly `size`
        // elements: include each token with probability need/remaining.
        let mut tokens: Vec<&'static str> = Vec::with_capacity(size);
        let mut remaining = POOL.len() as u64;
        let mut need = size as u64;
        for &tok in POOL {
            if need > 0 && rng.below(remaining) < need {
                tokens.push(tok);
                need -= 1;
            }
            remaining -= 1;
        }
        let mut value = String::new();
        for _ in 0..rng.below(4) {
            value.push_str(tokens[rng.below(tokens.len() as u64) as usize]);
        }
        (tokens, value)
    }
}

/// All constraint templates the generator draws from. Each must be a
/// valid `where` clause over hole variable `X`.
fn constraint_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("X in [\"ab\", \"abc\", \"cd.\"]".to_owned()),
        Just("X in [\"a\"]".to_owned()),
        Just("len(X) < 4".to_owned()),
        Just("len(X) <= 2".to_owned()),
        Just("len(X) > 1".to_owned()),
        Just("not \".\" in X".to_owned()),
        Just("\"b\" in X".to_owned()),
        Just("X == \"abc\"".to_owned()),
        Just("stops_at(X, \".\")".to_owned()),
        Just("stops_at(X, \"!\")".to_owned()),
        Just("int(X)".to_owned()),
        Just("len(words(X)) < 3".to_owned()),
        Just("X not in [\"x\", \"a.\"]".to_owned()),
        Just("\"b\" not in X".to_owned()),
    ];
    prop_oneof![
        leaf.clone(),
        (leaf.clone(), leaf.clone()).prop_map(|(a, b)| format!("{a} and {b}")),
        (leaf.clone(), leaf).prop_map(|(a, b)| format!("{a} or {b}")),
    ]
}

/// Bounded decode-then-check: can `value` be completed to satisfy `expr`
/// by appending at most `depth` more vocabulary tokens (or stopping
/// right here)?
fn has_legal_completion(
    expr: &lmql_syntax::ast::Expr,
    scope: &HashMap<String, lmql::Value>,
    tokens: &[&str],
    value: &str,
    depth: usize,
) -> bool {
    let fv = eval_final(
        expr,
        &EvalCtx {
            scope,
            var: "X",
            value,
            var_final: true,
            custom: None,
        },
    );
    if fv.truthy() != Some(false) {
        return true;
    }
    if depth == 0 {
        return false;
    }
    tokens
        .iter()
        .any(|t| has_legal_completion(expr, scope, tokens, &format!("{value}{t}"), depth - 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// Theorem 5.1 under random vocabularies: a token the brute-force
    /// oracle can decode into a legal value is never masked.
    #[test]
    fn eager_mask_never_excludes_a_decodable_token(
        (tokens, value) in CaseStrategy,
        constraint in constraint_strategy(),
        engine in prop_oneof![Just(MaskEngine::Exact), Just(MaskEngine::Symbolic)],
    ) {
        let expr = parse_expr(&constraint).unwrap();
        let scope = HashMap::new();
        let v = Arc::new(RawVocab(Vocabulary::from_tokens(tokens.iter().copied())));
        let mut masker =
            Masker::new(engine, v.clone()).with_config(MaskConfig::reference());
        let out = masker.compute(Some(&expr), &scope, "X", &value);
        // The accelerated configuration (memo on, forced parallel scan)
        // must reproduce the reference mask bit for bit, so the soundness
        // property below transfers to the fast paths too.
        let mut fast = Masker::new(engine, v.clone()).with_config(MaskConfig {
            memo: true,
            parallel: ParallelScan::Threads(2),
            automata: false,
            ..MaskConfig::default()
        });
        prop_assert_eq!(&fast.compute(Some(&expr), &scope, "X", &value), &out);
        // Recomputing through the warm memo must be transparent as well.
        prop_assert_eq!(&fast.compute(Some(&expr), &scope, "X", &value), &out);
        // The compiled constraint automaton (DESIGN.md §12) must also
        // reproduce the reference bit for bit — first through a fresh
        // state (delegating to the engine), then through its state cache.
        let mut compiled = Masker::new(engine, v.clone()).with_config(MaskConfig {
            memo: false,
            ..MaskConfig::default()
        });
        prop_assert_eq!(&compiled.compute(Some(&expr), &scope, "X", &value), &out);
        prop_assert_eq!(&compiled.compute(Some(&expr), &scope, "X", &value), &out);
        if out.must_stop {
            // Stop phrase already satisfied; no mask to check.
            return Ok(());
        }
        for (i, tok) in tokens.iter().enumerate() {
            let id = TokenId(i as u32);
            if out.allowed.contains(id) {
                continue;
            }
            let candidate = format!("{value}{tok}");
            // The containment rule for stops_at masks tokens that run
            // *past* the phrase even when a legal completion exists;
            // that is intentional truncation, not a soundness issue.
            let overruns_stop = collect_stop_phrases(&expr, "X")
                .iter()
                .any(|p| candidate.contains(p.as_str()) && !candidate.ends_with(p.as_str()));
            if overruns_stop {
                continue;
            }
            prop_assert!(
                !has_legal_completion(&expr, &scope, &tokens, &candidate, 2),
                "{engine:?} masked token {tok:?} after value {value:?} under {constraint:?} \
                 with vocabulary {tokens:?}, but a legal completion exists"
            );
        }
    }
}
