//! Differential tests for the mask fast paths: memoization, parallel
//! vocabulary scans and the pooled scratch-set plumbing must be
//! *bit-identical* to the reference configuration (no memo, sequential
//! scans) for both engines.
//!
//! The two engines are deliberately NOT compared against each other —
//! Symbolic over-approximates `allowed` relative to Exact by design.
//! Each engine is compared against *its own* reference output across
//! every accelerated configuration.

use lmql::constraints::{
    MaskConfig, MaskEngine, MaskMemo, MaskOutcome, Masker, ParallelScan, VocabSource,
};
use lmql::Value;
use lmql_syntax::parse_expr;
use lmql_tokenizer::Vocabulary;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug)]
struct RawVocab(Vocabulary);

impl VocabSource for RawVocab {
    fn vocabulary(&self) -> &Vocabulary {
        &self.0
    }
}

/// A small vocabulary with overlapping tokens, stop-phrase carriers,
/// digits and whitespace (mirrors the soundness suite's pool).
fn small_vocab() -> Arc<RawVocab> {
    Arc::new(RawVocab(Vocabulary::from_tokens([
        "a", "b", "c", "d", "ab", "ba", "bc", "cd", "abc", "a.", "b.", ".", "!", " ", "x", "yz",
        "1", "42",
    ])))
}

/// A synthetic ~330-token vocabulary whose size is not a multiple of 64,
/// so parallel scans exercise a partial tail word.
fn wide_vocab() -> Arc<RawVocab> {
    let toks: Vec<String> = (0..329)
        .map(|i| match i % 7 {
            0 => format!("w{i}"),
            1 => format!("{i}"),
            2 => format!(" t{i}"),
            3 => format!("x{i}."),
            4 => format!("ab{i}"),
            5 => format!("{}{i}", ".".repeat(i % 3 + 1)),
            _ => format!("z{i}!"),
        })
        .collect();
    Arc::new(RawVocab(Vocabulary::from_tokens(
        toks.iter().map(String::as_str),
    )))
}

/// Constraint templates over hole variable `X`; `X in options` reads the
/// scope.
const CONSTRAINTS: &[&str] = &[
    "X in [\"ab\", \"abc\", \"cd.\"]",
    "len(X) < 4",
    "not \".\" in X",
    "\"b\" in X",
    "X == \"abc\"",
    "stops_at(X, \".\") and len(X) <= 6",
    "int(X)",
    "len(words(X)) < 3",
    "X not in [\"x\", \"a.\"]",
    "len(X) > 1 or \"1\" in X",
    "X in options",
];

/// Deterministic step values, including repeats (memo hits) and
/// monotonically growing prefixes (a decode in progress).
const VALUES: &[&str] = &["", "a", "ab", "ab", "", "abc", "a.", "1", "ab", " ", "a"];

fn scope_variants() -> Vec<HashMap<String, Value>> {
    let mut with_options = HashMap::new();
    with_options.insert(
        "options".to_owned(),
        Value::List(vec!["ab".into(), "abc".into()]),
    );
    let mut other_options = HashMap::new();
    other_options.insert("options".to_owned(), Value::List(vec!["a.".into()]));
    vec![HashMap::new(), with_options, other_options]
}

/// Runs the full (constraint × scope × value) grid through one masker,
/// collecting outcomes in order.
fn run_grid(masker: &mut Masker) -> Vec<MaskOutcome> {
    let scopes = scope_variants();
    let mut out = Vec::new();
    for constraint in CONSTRAINTS {
        let expr = parse_expr(constraint).unwrap();
        for scope in &scopes {
            for value in VALUES {
                out.push(masker.compute(Some(&expr), scope, "X", value));
            }
        }
    }
    out
}

fn accelerated_configs() -> Vec<(&'static str, MaskConfig)> {
    vec![
        (
            "memo",
            MaskConfig {
                memo: true,
                parallel: ParallelScan::Off,
                ..MaskConfig::default()
            },
        ),
        (
            "parallel",
            MaskConfig {
                memo: false,
                parallel: ParallelScan::Threads(4),
                ..MaskConfig::default()
            },
        ),
        (
            "memo+parallel",
            MaskConfig {
                memo: true,
                parallel: ParallelScan::Threads(4),
                ..MaskConfig::default()
            },
        ),
        (
            "memo tiny-capacity",
            MaskConfig {
                memo: true,
                memo_capacity: 3, // constant eviction churn
                parallel: ParallelScan::Off,
                ..MaskConfig::default()
            },
        ),
    ]
}

#[test]
fn accelerated_configs_match_reference_bit_for_bit() {
    for vocab in [small_vocab(), wide_vocab()] {
        for engine in [MaskEngine::Exact, MaskEngine::Symbolic] {
            let reference = run_grid(
                &mut Masker::new(engine, vocab.clone()).with_config(MaskConfig::reference()),
            );
            for (name, config) in accelerated_configs() {
                let got = run_grid(&mut Masker::new(engine, vocab.clone()).with_config(config));
                assert_eq!(got.len(), reference.len());
                for (i, (g, r)) in got.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        g,
                        r,
                        "{engine:?} config `{name}` diverged from reference at grid step {i} \
                         (vocab size {})",
                        vocab.vocabulary().len()
                    );
                }
            }
        }
    }
}

#[test]
fn shared_memo_across_maskers_is_transparent() {
    let vocab = wide_vocab();
    let memo = MaskMemo::new(512);
    for engine in [MaskEngine::Exact, MaskEngine::Symbolic] {
        let reference =
            run_grid(&mut Masker::new(engine, vocab.clone()).with_config(MaskConfig::reference()));
        // First masker populates the shared memo, second reads it back.
        // Automata off: this exercises the memo layer specifically, which
        // compiled constraints would otherwise bypass.
        let no_automata = MaskConfig {
            automata: false,
            ..MaskConfig::default()
        };
        let mut warm = Masker::new(engine, vocab.clone())
            .with_config(no_automata)
            .with_memo(Arc::clone(&memo));
        let first = run_grid(&mut warm);
        let mut reader = Masker::new(engine, vocab.clone())
            .with_config(no_automata)
            .with_memo(Arc::clone(&memo));
        let second = run_grid(&mut reader);
        assert_eq!(first, reference, "{engine:?}: populating pass diverged");
        assert_eq!(second, reference, "{engine:?}: reading pass diverged");
    }
    assert!(!memo.is_empty(), "the shared memo was never populated");
}

#[test]
fn memo_metrics_report_hits_and_misses() {
    let registry = lmql_obs::Registry::new();
    let mut masker = Masker::new(MaskEngine::Symbolic, small_vocab())
        .with_config(MaskConfig {
            memo: true,
            parallel: ParallelScan::Off,
            // Automata off: compiled constraints would intercept computes
            // before the memo, breaking the hit+miss == total accounting.
            automata: false,
            ..MaskConfig::default()
        })
        .with_metrics(&registry);
    run_grid(&mut masker);
    let snap = registry.snapshot();
    let hits = snap.counter("mask.cache.hit").unwrap_or(0);
    let misses = snap.counter("mask.cache.miss").unwrap_or(0);
    assert!(hits > 0, "repeated grid values must hit the memo");
    assert!(misses > 0, "distinct grid states must miss the memo");
    // Every compute either hits or misses.
    let scopes = scope_variants().len() as u64;
    let total = (CONSTRAINTS.len() * VALUES.len()) as u64 * scopes;
    assert_eq!(hits + misses, total);
}

#[test]
fn parallel_scan_metric_counts_chunks() {
    let registry = lmql_obs::Registry::new();
    // Exact engine always scans the vocabulary, so forcing threads must
    // report parallel chunks even on a single-core machine.
    let mut masker = Masker::new(MaskEngine::Exact, wide_vocab())
        .with_config(MaskConfig {
            memo: false,
            parallel: ParallelScan::Threads(4),
            // Automata off so the scan runs on every compute, not only on
            // the automaton's first visit to each state.
            automata: false,
            ..MaskConfig::default()
        })
        .with_metrics(&registry);
    let expr = parse_expr("len(X) < 4").unwrap();
    masker.compute(Some(&expr), &HashMap::new(), "X", "");
    let snap = registry.snapshot();
    assert!(
        snap.counter("mask.scan.parallel_chunks").unwrap_or(0) > 0,
        "forced-thread exact scan must record parallel chunks"
    );
}

#[test]
fn custom_op_registration_splits_memo_entries() {
    use lmql::constraints::{CustomOp, CustomOps, OpCtx};

    /// `shorter_than_three(X)`: at most 2 characters.
    struct ShorterThanThree;
    impl CustomOp for ShorterThanThree {
        fn forward(&self, args: &[Value], _ctx: &OpCtx<'_>) -> Result<Value, String> {
            let s = args[0].as_str().ok_or("expected a string")?;
            Ok(Value::Bool(s.chars().count() <= 2))
        }
        fn final_hint(
            &self,
            _args: &[lmql::constraints::FinalValue],
            result: &Value,
            _ctx: &OpCtx<'_>,
        ) -> lmql::constraints::Fin {
            // Length only grows: a violation is final.
            match result {
                Value::Bool(false) => lmql::constraints::Fin::Fin,
                _ => lmql::constraints::Fin::Var,
            }
        }
    }

    let vocab = small_vocab();
    let expr = parse_expr("shorter_than_three(X)").unwrap();
    let scope = HashMap::new();
    let memo = MaskMemo::new(64);

    let mut ops = CustomOps::new();
    ops.register("shorter_than_three", Arc::new(ShorterThanThree));
    let mut with_op = Masker::new(MaskEngine::Exact, vocab.clone())
        .with_custom_ops(ops)
        .with_memo(Arc::clone(&memo));
    let constrained = with_op.compute(Some(&expr), &scope, "X", "ab");

    // Same expression, same memo, but no registered op: the call is
    // undetermined and prunes nothing. A shared memo entry here would be
    // unsound — the generation tag must split the keys.
    let mut without_op = Masker::new(MaskEngine::Exact, vocab.clone()).with_memo(Arc::clone(&memo));
    let unconstrained = without_op.compute(Some(&expr), &scope, "X", "ab");

    assert!(
        constrained.allowed.count() < unconstrained.allowed.count(),
        "the registered operator must constrain more than the unknown call \
         (constrained {} vs {})",
        constrained.allowed.count(),
        unconstrained.allowed.count()
    );
}
