//! Integration tests for user-defined constraint operators
//! (Appendix A.1): forward/final/follow participation end to end.

use lmql::constraints::{CustomOp, Fin, FinalValue, FollowView, OpCtx};
use lmql::{Error, Runtime, Value};
use lmql_lm::{Episode, ScriptedLm};
use lmql_tokenizer::{Bpe, TokenSet};
use std::sync::Arc;

/// `no_digits(VAR)`: the value must not contain ASCII digits.
struct NoDigits;

impl CustomOp for NoDigits {
    fn forward(&self, args: &[Value], _ctx: &OpCtx<'_>) -> Result<Value, String> {
        let s = args[0].as_str().ok_or("no_digits() expects a string")?;
        Ok(Value::Bool(!s.chars().any(|c| c.is_ascii_digit())))
    }

    fn final_hint(&self, args: &[FinalValue], result: &Value, _ctx: &OpCtx<'_>) -> Fin {
        // A digit in an append-only string never goes away: a violation
        // is final; compliance is not (more tokens may add digits).
        match (args[0].fin, result) {
            (Fin::Inc, Value::Bool(false)) => Fin::Fin,
            (Fin::Fin, _) => Fin::Fin,
            _ => Fin::Var,
        }
    }

    fn follow_allowed(&self, view: &FollowView<'_>) -> Option<TokenSet> {
        // Fast path: exactly the digit-free tokens.
        Some(TokenSet::from_ids(
            view.vocab.len(),
            view.vocab
                .regular_tokens()
                .filter(|(_, s)| !s.chars().any(|c| c.is_ascii_digit()))
                .map(|(id, _)| id),
        ))
    }
}

fn runtime(script: &str) -> Runtime {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode::plain("Out:", script)],
    ));
    Runtime::new(lm, bpe)
}

#[test]
fn custom_op_masks_tokens() {
    // The script wants " call 911 now" — the custom constraint masks the
    // digit tokens, so decoding routes around them.
    let mut rt = runtime(" call 911 now.");
    rt.register_constraint_op("no_digits", Arc::new(NoDigits));
    let result = rt
        .run("argmax\n    \"Out:[X]\"\nfrom \"m\"\nwhere no_digits(X) and stops_at(X, \".\")\n")
        .unwrap();
    let v = result.best().var_str("X").unwrap();
    assert!(!v.chars().any(|c| c.is_ascii_digit()), "got {v:?}");
}

#[test]
fn custom_op_both_engines_agree() {
    use lmql::constraints::MaskEngine;
    let mut outs = Vec::new();
    for engine in [MaskEngine::Exact, MaskEngine::Symbolic] {
        let mut rt = runtime(" age 42.");
        rt.options_mut().engine = engine;
        rt.register_constraint_op("no_digits", Arc::new(NoDigits));
        let result = rt
            .run("argmax\n    \"Out:[X]\"\nfrom \"m\"\nwhere no_digits(X) and stops_at(X, \".\")\n")
            .unwrap();
        outs.push(result.best().trace.clone());
    }
    assert_eq!(outs[0], outs[1]);
}

#[test]
fn unknown_constraint_function_rejected() {
    let rt = runtime(" x");
    let err = rt
        .run("argmax\n    \"Out:[X]\"\nfrom \"m\"\nwhere definitely_not_registered(X)\n")
        .unwrap_err();
    assert!(matches!(err, Error::Compile { .. }));
    assert!(err.to_string().contains("definitely_not_registered"));
}

#[test]
fn custom_op_used_alongside_builtins() {
    let mut rt = runtime(" short answer.");
    rt.register_constraint_op("no_digits", Arc::new(NoDigits));
    let result = rt
        .run(
            "argmax\n    \"Out:[X]\"\nfrom \"m\"\nwhere no_digits(X) and len(words(X)) < 10 and stops_at(X, \".\")\n",
        )
        .unwrap();
    assert_eq!(result.best().var_str("X"), Some(" short answer."));
}
