//! Allocation-budget regression tests for the zero-copy data plane
//! (DESIGN.md §13): a counting global allocator pins the costs the rope
//! trace, pooled mask scratch and in-place softmax bought — forking a
//! hypothesis never copies the trace, and the steady-state decode loop
//! stays within a hard allocations-per-step budget.
//!
//! Counting is process-global, so every measuring test serialises on one
//! mutex and takes the minimum over several rounds to shrug off stray
//! harness allocations from other threads.

use lmql::constraints::{MaskConfig, MaskEngine, Masker};
use lmql::{compile_source, decode_hole, DecodeOptions, Externals, Pick, Step, VmState};
use lmql_arena::Rope;
use lmql_lm::corpus;
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Serialises measurements; counting is process-global.
static MEASURE: Mutex<()> = Mutex::new(());

/// Allocations made by `f`, minimised over `rounds` runs so concurrent
/// harness noise can only inflate discarded rounds.
fn count_allocs(rounds: usize, mut f: impl FnMut()) -> u64 {
    let _guard = MEASURE.lock().unwrap_or_else(|e| e.into_inner());
    let mut best = u64::MAX;
    for _ in 0..rounds {
        let start = ALLOCS.load(Ordering::Relaxed);
        f();
        best = best.min(ALLOCS.load(Ordering::Relaxed) - start);
    }
    best
}

/// A finished `VmState` whose trace is one emitted literal of `chars`
/// characters — no holes, no locals, so two states of different trace
/// length are structurally identical apart from the trace.
fn vm_with_trace(chars: usize) -> VmState {
    let literal = "x".repeat(chars);
    let source = format!("argmax\n    \"{literal}\"\nfrom \"m\"\n");
    let program = compile_source(&source).expect("literal-only query compiles");
    let externals = Externals::new();
    let mut vm = VmState::new([]);
    assert_eq!(vm.run(&program, &externals).unwrap(), Step::Done);
    assert_eq!(vm.trace().len(), chars);
    vm
}

#[test]
fn rope_clone_allocates_nothing() {
    let mut rope = Rope::new();
    for i in 0..100 {
        rope.push_str(&format!("chunk {i} of the interaction trace. "));
    }
    let allocs = count_allocs(5, || {
        let fork = rope.clone();
        std::hint::black_box(&fork);
    });
    assert_eq!(allocs, 0, "Rope::clone must be a refcount bump");
}

#[test]
fn beam_fork_makes_zero_trace_copy_allocations() {
    // A beam fork is a `VmState::clone`. With the rope trace, forking a
    // width-8 beam costs the same number of allocations whether the
    // shared trace is 3 chars or 10k chars — and for a hole-free state,
    // exactly zero.
    let small = vm_with_trace(3);
    let large = vm_with_trace(10_000);
    let mut beam: Vec<VmState> = Vec::with_capacity(8);
    let mut fork_allocs = |vm: &VmState| {
        count_allocs(5, || {
            for _ in 0..8 {
                beam.push(vm.clone());
            }
            std::hint::black_box(&beam);
            beam.clear();
        })
    };
    let small_allocs = fork_allocs(&small);
    let large_allocs = fork_allocs(&large);
    assert_eq!(
        small_allocs, large_allocs,
        "fork cost must be independent of trace length"
    );
    assert_eq!(
        large_allocs, 0,
        "forking a width-8 beam must not copy the 10k-char trace"
    );
}

#[test]
fn decode_steady_state_stays_within_alloc_budget() {
    // Marginal allocations per decode step, isolated from per-hole setup
    // by differencing a short and a long run of the same workload: with
    // pooled mask outcomes, in-place softmax into reused scratch and the
    // rope trace, the loop body allocates only the model's logits buffer
    // (the n-gram model allocates one `Vec` per `score` call).
    const BUDGET_ALLOCS_PER_STEP: u64 = 8;
    let bpe = corpus::standard_bpe();
    let lm = corpus::standard_ngram();
    // `len(X) > 2000` keeps EOS inadmissible, so every run decodes to its
    // token cap and the two runs differ by exactly the steady-state steps.
    let expr = lmql_syntax::parse_expr("not \"\\n\" in X and len(X) > 2000").unwrap();
    let scope = HashMap::new();
    let mut masker = Masker::new(MaskEngine::default(), bpe.clone());

    let mut run = |max_tokens: usize| -> (u64, u64) {
        let options = DecodeOptions {
            max_tokens_per_hole: max_tokens,
            ..DecodeOptions::default()
        };
        let mut tokens = 0u64;
        let allocs = count_allocs(3, || {
            let out = decode_hole(
                lm.as_ref(),
                &bpe,
                &mut masker,
                Some(&expr),
                &scope,
                "The little prince said: ",
                "X",
                &mut Pick::argmax(),
                &options,
            )
            .expect("decode succeeds");
            tokens = out.tokens as u64;
        });
        (allocs, tokens)
    };

    // Warm-up: automaton compilation, scan caches, pool population.
    let _ = run(4);
    let (short_allocs, short_tokens) = run(16);
    let (long_allocs, long_tokens) = run(80);
    assert!(
        long_tokens > short_tokens,
        "workload must keep decoding ({short_tokens} vs {long_tokens} tokens)"
    );
    let steps = long_tokens - short_tokens;
    let marginal = long_allocs.saturating_sub(short_allocs);
    let per_step = marginal / steps;
    assert!(
        per_step <= BUDGET_ALLOCS_PER_STEP,
        "decode loop allocates {per_step} allocs/step \
         ({marginal} allocs over {steps} steps), budget {BUDGET_ALLOCS_PER_STEP}"
    );
}

#[test]
fn router_prefix_fingerprint_allocates_nothing_when_warm() {
    // The front-end router derives its affinity key by fingerprinting
    // the tokenized prompt prefix (DESIGN.md §15). The streaming chunk
    // iterator borrows the prompt and the fingerprint folds token ids
    // straight out of the BPE chunk cache, so once the cache has seen
    // the chunks of a prompt, routing a query allocates nothing.
    let bpe = corpus::standard_bpe();
    let prompt = "Q: The little prince asked about the fox and the rose. A:";
    // Warm the chunk cache (first sight of each chunk encodes + caches).
    let cold = bpe.prefix_fingerprint(prompt, 32);
    let allocs = count_allocs(5, || {
        let key = bpe.prefix_fingerprint(prompt, 32);
        std::hint::black_box(key);
    });
    assert_eq!(allocs, 0, "warm routing-key derivation must not allocate");
    assert_eq!(
        bpe.prefix_fingerprint(prompt, 32),
        cold,
        "warm and cold fingerprints must agree"
    );
}

#[test]
fn masker_recycles_outcomes_through_the_pool() {
    // The decode loop hands every `MaskOutcome` back to the masker; the
    // pooled scratch means repeated pooled copies of the same mask reach
    // a steady state with no per-copy allocation.
    let bpe = corpus::standard_bpe();
    let mut masker =
        Masker::new(MaskEngine::default(), bpe.clone()).with_config(MaskConfig::default());
    let mask = lmql_tokenizer::TokenSet::full(bpe.vocab().len());
    // Prime the pool.
    for _ in 0..4 {
        let copy = masker.pooled_copy(&mask);
        masker.recycle_mask(copy);
    }
    let allocs = count_allocs(5, || {
        for _ in 0..16 {
            let copy = masker.pooled_copy(&mask);
            std::hint::black_box(&copy);
            masker.recycle_mask(copy);
        }
    });
    assert_eq!(allocs, 0, "pooled mask copies must not allocate");
}
