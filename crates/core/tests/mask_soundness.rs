//! Property tests for Theorem 5.1 (Brzozowski soundness) and engine
//! agreement.
//!
//! Soundness: for any constraint and partial value, a token that admits a
//! *legal completion* (found by bounded brute-force search) must never be
//! masked — `T_Q ⊆ M` in the paper's notation.
//!
//! Engine agreement: the symbolic FollowMap engine must be at least as
//! permissive as the exact per-token engine (it may over-approximate, but
//! never prune more).

// Property suites ride behind the default-off `slow-tests` feature:
// run them with `cargo test --features slow-tests`.
#![cfg(feature = "slow-tests")]

use lmql::constraints::{eval_final, EvalCtx, MaskEngine, Masker, VocabSource};
use lmql_syntax::parse_expr;
use lmql_tokenizer::{TokenId, Vocabulary};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// A bare vocabulary as a mask source (no BPE needed for mask tests).
#[derive(Debug)]
struct RawVocab(Vocabulary);

impl VocabSource for RawVocab {
    fn vocabulary(&self) -> &Vocabulary {
        &self.0
    }
}

const TOKENS: &[&str] = &[
    "a", "b", "c", "ab", "bc", "abc", ".", "!", " ", "x", "yz", "a.",
];

fn vocab() -> Arc<RawVocab> {
    Arc::new(RawVocab(Vocabulary::from_tokens(TOKENS.iter().copied())))
}

/// All constraint templates the generator draws from. Each must be a valid
/// `where` clause over hole variable `X`.
fn constraint_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("X in [\"ab\", \"abc\", \"bc.\"]".to_owned()),
        Just("X in [\"a\"]".to_owned()),
        Just("len(X) < 4".to_owned()),
        Just("len(X) <= 2".to_owned()),
        Just("len(X) > 1".to_owned()),
        Just("not \".\" in X".to_owned()),
        Just("\"b\" in X".to_owned()),
        Just("X == \"abc\"".to_owned()),
        Just("stops_at(X, \".\")".to_owned()),
        Just("int(X)".to_owned()),
        Just("len(words(X)) < 3".to_owned()),
        Just("X not in [\"x\", \"a.\"]".to_owned()),
        Just("\"b\" not in X".to_owned()),
    ];
    prop_oneof![
        leaf.clone(),
        (leaf.clone(), leaf.clone()).prop_map(|(a, b)| format!("{a} and {b}")),
        (leaf.clone(), leaf).prop_map(|(a, b)| format!("{a} or {b}")),
    ]
}

/// Values reachable by concatenating up to 2 vocabulary tokens.
fn value_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(proptest::sample::select(TOKENS), 0..=2).prop_map(|v| v.concat())
}

/// Bounded search: can `value` be completed to satisfy `expr` by appending
/// at most `depth` more tokens (or stopping right here)?
fn has_legal_completion(
    expr: &lmql_syntax::ast::Expr,
    scope: &HashMap<String, lmql::Value>,
    value: &str,
    depth: usize,
) -> bool {
    let fv = eval_final(
        expr,
        &EvalCtx {
            scope,
            var: "X",
            value,
            var_final: true,
            custom: None,
        },
    );
    if fv.truthy() != Some(false) {
        return true;
    }
    if depth == 0 {
        return false;
    }
    TOKENS
        .iter()
        .any(|t| has_legal_completion(expr, scope, &format!("{value}{t}"), depth - 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 5.1: tokens with a legal completion are never masked.
    #[test]
    fn masked_tokens_have_no_legal_completion(
        constraint in constraint_strategy(),
        value in value_strategy(),
        engine in prop_oneof![Just(MaskEngine::Exact), Just(MaskEngine::Symbolic)],
    ) {
        let expr = parse_expr(&constraint).unwrap();
        let scope = HashMap::new();
        let v = vocab();
        let mut masker = Masker::new(engine, v.clone());
        let out = masker.compute(Some(&expr), &scope, "X", &value);
        if out.must_stop {
            // Stop phrase already satisfied; no mask to check.
            return Ok(());
        }
        for (i, tok) in TOKENS.iter().enumerate() {
            let id = TokenId(i as u32);
            if !out.allowed.contains(id) {
                let candidate = format!("{value}{tok}");
                // The containment rule for stops_at masks tokens that run
                // *past* the phrase even when a legal completion exists;
                // that is intentional truncation, not a soundness issue.
                let overruns_stop = lmql::constraints::collect_stop_phrases(&expr, "X")
                    .iter()
                    .any(|p| candidate.contains(p.as_str()) && !candidate.ends_with(p.as_str()));
                if overruns_stop {
                    continue;
                }
                prop_assert!(
                    !has_legal_completion(&expr, &scope, &candidate, 2),
                    "{engine:?} masked token {tok:?} after value {value:?} under {constraint:?}, \
                     but a legal completion exists"
                );
            }
        }
    }

    /// The symbolic engine never prunes more than the exact engine.
    #[test]
    fn symbolic_is_superset_of_exact(
        constraint in constraint_strategy(),
        value in value_strategy(),
    ) {
        let expr = parse_expr(&constraint).unwrap();
        let scope = HashMap::new();
        let v = vocab();
        let mut exact = Masker::new(MaskEngine::Exact, v.clone());
        let mut symbolic = Masker::new(MaskEngine::Symbolic, v.clone());
        let a = exact.compute(Some(&expr), &scope, "X", &value);
        let b = symbolic.compute(Some(&expr), &scope, "X", &value);
        prop_assert_eq!(a.must_stop, b.must_stop);
        if a.must_stop {
            return Ok(());
        }
        prop_assert_eq!(a.eos_allowed, b.eos_allowed, "constraint {}", constraint);
        for id in a.allowed.iter() {
            prop_assert!(
                b.allowed.contains(id),
                "symbolic pruned token {:?} that exact allows (constraint {:?}, value {:?})",
                v.vocabulary().token_str(id),
                constraint,
                value
            );
        }
    }

    /// EOS admissibility agrees with concrete final evaluation.
    #[test]
    fn eos_agrees_with_final_eval(
        constraint in constraint_strategy(),
        value in value_strategy(),
    ) {
        let expr = parse_expr(&constraint).unwrap();
        let scope = HashMap::new();
        let v = vocab();
        let mut masker = Masker::new(MaskEngine::Exact, v.clone());
        let out = masker.compute(Some(&expr), &scope, "X", &value);
        if out.must_stop {
            return Ok(());
        }
        let fv = eval_final(
            &expr,
            &EvalCtx {
                scope: &scope,
                var: "X",
                value: &value,
                var_final: true,
                custom: None,
            },
        );
        prop_assert_eq!(out.eos_allowed, fv.truthy() != Some(false));
    }
}
