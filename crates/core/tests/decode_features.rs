//! Integration tests for the decoder features layered on Alg. 2:
//! `no_repeat_ngram_size`, `max_length`, speculative scoring, and the
//! debug trace.

use lmql::{DecodeOptions, Runtime, StopReason};
use lmql_lm::{Episode, LanguageModel, Logits, MeteredLm, ScriptedLm, UsageMeter};
use lmql_tokenizer::{Bpe, TokenId, Vocabulary};
use std::sync::Arc;

fn runtime(script: &str) -> Runtime {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode::plain("P:", script)],
    ));
    Runtime::new(lm, bpe)
}

/// A model that wants to repeat "ab" forever.
struct Repeater {
    bpe: Arc<Bpe>,
}

impl LanguageModel for Repeater {
    fn vocab(&self) -> &Vocabulary {
        self.bpe.vocab()
    }
    fn score(&self, context: &[TokenId]) -> Logits {
        let mut logits = Logits::constant(self.bpe.vocab().len(), 0.0);
        let text = self.bpe.decode(context);
        let next = if text.ends_with('a') { "b" } else { "a" };
        logits.set(self.bpe.vocab().id_of(next).unwrap(), 10.0);
        logits
    }
}

#[test]
fn no_repeat_ngram_breaks_loops() {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = Arc::new(Repeater {
        bpe: Arc::clone(&bpe),
    });
    let rt = Runtime::new(lm, Arc::clone(&bpe));
    // With 2-gram blocking the "abab…" cycle is broken: once "ab" and
    // "ba" have occurred, their repetitions are masked and the decoder is
    // pushed onto other tokens (HuggingFace semantics: blocking
    // redistributes, it does not stop generation).
    let result = rt
        .run("argmax(no_repeat_ngram_size=2, max_length=20)\n    \"P:[X]\"\nfrom \"m\"\n")
        .unwrap();
    let v = result.best().var_str("X").unwrap();
    assert!(!v.contains("abab"), "2-gram repeated: {v:?}");
    // Every consecutive character pair occurs at most once. The context
    // includes the prompt "P:", whose boundary pair is exempt.
    let chars: Vec<char> = format!("P:{v}").chars().collect();
    let mut seen = std::collections::HashSet::new();
    for w in chars.windows(2) {
        assert!(seen.insert((w[0], w[1])), "repeated pair {w:?} in {v:?}");
    }

    // Control: without blocking, the repeater loops forever (to the cap).
    let unblocked = rt
        .run("argmax(max_length=20)\n    \"P:[X]\"\nfrom \"m\"\n")
        .unwrap();
    assert!(unblocked.best().var_str("X").unwrap().contains("ababab"));
}

#[test]
fn max_length_param_caps_generation() {
    let rt = runtime(" a very long script that keeps going and going and going");
    let result = rt
        .run("argmax(max_length=4)\n    \"P:[X]\"\nfrom \"m\"\n")
        .unwrap();
    assert_eq!(result.best().var_str("X").unwrap().chars().count(), 4);
}

#[test]
fn speculative_mode_same_output_extra_queries() {
    let script = " speculative output.";
    let query = "argmax\n    \"P:[X]\"\nfrom \"m\"\nwhere stops_at(X, \".\")\n";

    let run = |speculative: bool| {
        let bpe = Arc::new(Bpe::char_level(""));
        let meter = UsageMeter::new();
        let lm = Arc::new(MeteredLm::new(
            ScriptedLm::new(Arc::clone(&bpe), [Episode::plain("P:", script)]),
            meter.clone(),
        ));
        let rt = Runtime::new(lm, Arc::clone(&bpe)).with_options(DecodeOptions {
            speculative,
            ..DecodeOptions::default()
        });
        let result = rt.run(query).unwrap();
        (result.best().trace.clone(), meter.snapshot().model_queries)
    };

    let (trace_seq, queries_seq) = run(false);
    let (trace_spec, queries_spec) = run(true);
    assert_eq!(trace_seq, trace_spec, "speculation must not change output");
    // Speculation wastes exactly the final step's forward pass.
    assert_eq!(queries_spec, queries_seq + 1);
}

#[test]
fn debug_trace_records_steps_and_reason() {
    let rt = runtime(" short.");
    let (result, trace) = rt
        .run_traced("argmax\n    \"P:[X]\"\nfrom \"m\"\nwhere stops_at(X, \".\")\n")
        .unwrap();
    assert_eq!(result.best().var_str("X"), Some(" short."));
    assert_eq!(trace.holes.len(), 1);
    let hole = &trace.holes[0];
    assert_eq!(hole.var, "X");
    assert_eq!(hole.value, " short.");
    assert_eq!(hole.stopped_by, StopReason::StopPhrase);
    assert_eq!(hole.steps.len(), " short.".len(), "one step per char token");
    assert!(hole.steps.iter().all(|s| s.prob > 0.0));
    assert!(trace.render().contains("[X] stopped by stop phrase"));
}

#[test]
fn debug_trace_covers_distribution_holes() {
    let rt = runtime(" yes");
    let (_, trace) = rt
        .run_traced("argmax\n    \"P:[X]\"\nfrom \"m\"\ndistribute X in [\" yes\", \" no\"]\n")
        .unwrap();
    assert_eq!(trace.holes.len(), 1);
    assert_eq!(trace.holes[0].stopped_by, StopReason::Distribution);
    assert!(trace.holes[0].steps.is_empty());
}
