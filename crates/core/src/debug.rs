//! Decoder introspection — a terminal rendition of the paper's
//! Appendix A.3 visual debugger: per decoding step, the mask size, EOS
//! admissibility and the picked token; per hole, why decoding stopped.
//!
//! Enable with [`Runtime::run_traced`](crate::Runtime::run_traced) and
//! print [`DebugTrace::render`].

use std::fmt::Write as _;

/// One decoding step of one hole (one row of the debugger's decoder
/// graph).
#[derive(Debug, Clone, PartialEq)]
pub struct StepTrace {
    /// Characters of the hole value before this step.
    pub value_chars: usize,
    /// Admissible regular tokens after masking.
    pub allowed: usize,
    /// Vocabulary size (for "k of N" display).
    pub vocab: usize,
    /// Whether EOS was admissible at this step.
    pub eos_allowed: bool,
    /// The picked token's text, or `None` when EOS was picked.
    pub picked: Option<String>,
    /// The picked token's masked (renormalised) probability.
    pub prob: f64,
}

/// Why a hole's decoding loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The model produced EOS.
    Eos,
    /// A `stops_at` phrase was completed.
    StopPhrase,
    /// Only EOS remained admissible.
    MaskExhausted,
    /// The per-hole token budget ran out.
    Budget,
    /// The hole was resolved by the `distribute` clause instead of
    /// token-by-token decoding.
    Distribution,
}

/// The decode history of one hole.
#[derive(Debug, Clone)]
pub struct HoleTrace {
    /// The hole variable.
    pub var: String,
    /// Final decoded value.
    pub value: String,
    /// Per-token decoding steps (empty for distribution holes).
    pub steps: Vec<StepTrace>,
    /// Why decoding ended.
    pub stopped_by: StopReason,
}

/// The decode history of a whole query run.
#[derive(Debug, Clone, Default)]
pub struct DebugTrace {
    /// One entry per decoded hole, in decode order.
    pub holes: Vec<HoleTrace>,
}

impl DebugTrace {
    /// Renders the trace as indented text, one block per hole:
    ///
    /// ```text
    /// [ANSWER] stopped by stop phrase, value " The capital."
    ///   step  1: mask 412/713  eos=yes  picked " The" (p=0.93)
    ///   …
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        for h in &self.holes {
            let reason = match h.stopped_by {
                StopReason::Eos => "end-of-sequence",
                StopReason::StopPhrase => "stop phrase",
                StopReason::MaskExhausted => "mask exhausted (only EOS left)",
                StopReason::Budget => "token budget",
                StopReason::Distribution => "distribute clause",
            };
            let _ = writeln!(out, "[{}] stopped by {reason}, value {:?}", h.var, h.value);
            for (i, s) in h.steps.iter().enumerate() {
                let picked = match &s.picked {
                    Some(t) => format!("{t:?}"),
                    None => "<eos>".to_owned(),
                };
                let _ = writeln!(
                    out,
                    "  step {:>3}: mask {:>4}/{}  eos={}  picked {picked} (p={:.3})",
                    i + 1,
                    s.allowed,
                    s.vocab,
                    if s.eos_allowed { "yes" } else { "no " },
                    s.prob
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shapes_output() {
        let trace = DebugTrace {
            holes: vec![HoleTrace {
                var: "X".into(),
                value: "hi.".into(),
                steps: vec![StepTrace {
                    value_chars: 0,
                    allowed: 10,
                    vocab: 100,
                    eos_allowed: true,
                    picked: Some("hi.".into()),
                    prob: 0.5,
                }],
                stopped_by: StopReason::StopPhrase,
            }],
        };
        let text = trace.render();
        assert!(text.contains("[X] stopped by stop phrase"));
        assert!(text.contains("mask   10/100"));
        assert!(text.contains("p=0.500"));
    }
}
