//! # LMQL in Rust
//!
//! A from-scratch reproduction of *Prompting Is Programming: A Query
//! Language for Large Language Models* (Beurer-Kellner, Fischer, Vechev;
//! PLDI 2023).
//!
//! LMQL generalises prompting into **Language Model Programming**: a query
//! combines a decoder clause, a Python-like scripted prompt with `[HOLE]`
//! variables and `{recall}` substitutions, a model, declarative `where`
//! constraints, and an optional `distribute` clause. The runtime executes
//! the script (Alg. 1), decoding each hole under the constraints (Alg. 2)
//! with token masks derived from FINAL/FOLLOW partial-evaluation semantics
//! (§5).
//!
//! ## Quick start
//!
//! ```
//! use lmql::Runtime;
//! use lmql_lm::{Episode, ScriptedLm};
//! use lmql_tokenizer::Bpe;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), lmql::Error> {
//! let bpe = Arc::new(Bpe::char_level(""));
//! let lm = Arc::new(ScriptedLm::new(
//!     Arc::clone(&bpe),
//!     [Episode::plain("Q:", " A penguin! Obviously.")],
//! ));
//! let runtime = Runtime::new(lm, bpe);
//!
//! let result = runtime.run(r#"
//! argmax
//!     "Q:[ANSWER]"
//! from "scripted-model"
//! where stops_at(ANSWER, "!") and len(ANSWER) < 40
//! "#)?;
//!
//! assert_eq!(result.best().var_str("ANSWER"), Some(" A penguin!"));
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate layout
//!
//! - [`Runtime`] — parse/compile/execute queries end-to-end,
//! - [`compile_source`] / [`Program`] — the compiled bytecode form,
//! - [`VmState`] — the resumable interpreter (Alg. 1),
//! - [`constraints`] — FINAL semantics (Table 1), FOLLOW maps (Table 2)
//!   and mask generation, in exact and symbolic engines,
//! - [`decode`](crate::DecodeOptions) / scripted beam search — Alg. 2.

pub mod constraints;
pub mod stream;

mod beam;
mod builtins;
mod compile;
mod debug;
mod decode;
mod error;
mod interp;
mod naive;
mod parallel;
mod program;
mod request;
mod runtime;
mod tool;
mod value;

pub use beam::{run_beam_search, FinishedBeam};
pub use compile::{compile_query, compile_source};
pub use debug::{DebugTrace, HoleTrace, StepTrace, StopReason};
pub use decode::{
    decode_hole, decode_hole_traced, ngram_blocked_tokens, unconstrained_mask, DecodeOptions,
    DecodedValue, Pick,
};
pub use error::{Error, Result};
pub use interp::{ExternalFn, Externals, HoleRecord, HoleRequest, Step, VmState};
pub use naive::{decode_hole_naive, decode_hole_naive_strict, NaiveOptions, NaiveOutcome};
pub use parallel::{plan_holes, HolePlan};
pub use program::{CompiledSegment, Instr, Program, PromptTemplate};
pub use request::QueryRequest;
pub use runtime::{QueryResult, QueryRun, Runtime, SubqueryLimits};
pub use stream::{
    EventSink, QueryEvent, ReassembledQuery, ReassembledRun, ReassembledSubquery, Reassembler,
    StreamSink, WireError,
};
pub use tool::{FnTool, Tool, ToolFunction, ToolRegistry, ToolSchema};
pub use value::Value;
