//! Constrained decoding (the paper's Alg. 2) and decoder strategies.

use crate::constraints::{MaskConfig, MaskEngine, Masker};
use crate::debug::{StepTrace, StopReason};
use crate::{Error, Result};
use lmql_lm::LanguageModel;
use lmql_tokenizer::{Bpe, TokenSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Tunables shared by all decoders.
#[derive(Debug, Clone)]
pub struct DecodeOptions {
    /// Softmax temperature `τ` (§2.1).
    pub temperature: f64,
    /// Hard cap on tokens generated per hole (the `max_length`-style
    /// safety net; decoding stops at the cap with the value as-is).
    pub max_tokens_per_hole: usize,
    /// RNG seed for `sample` decoding.
    pub seed: u64,
    /// Mask-generation engine (§5): exact reference or symbolic FollowMap.
    pub engine: MaskEngine,
    /// Mask-generation tuning (memoization, parallel vocabulary scans).
    /// The default memoizes and auto-parallelises; use
    /// [`MaskConfig::reference`] to recover the unaccelerated engines.
    pub mask: MaskConfig,
    /// HuggingFace-style n-gram blocking (the `no_repeat_ngram_size`
    /// decoder parameter of Fig. 11): a token is masked if appending it
    /// would repeat an n-gram already present in the context. `0`
    /// disables blocking.
    pub no_repeat_ngram: usize,
    /// Speculative scoring (§4): issue the model's forward pass in
    /// parallel with mask computation, hiding mask latency behind the
    /// model. Costs one extra (wasted) model query on the final step of
    /// each hole, exactly like the real system's speculative prediction.
    pub speculative: bool,
    /// Structured trace recorder. Disabled by default: a disabled tracer
    /// records nothing and allocates nothing, so leaving this at its
    /// default is free.
    pub tracer: lmql_obs::Tracer,
    /// Streaming event sink (DESIGN.md §11). Inactive by default: every
    /// emit is a no-op costing one branch. When active, the decode loop
    /// emits a [`TokenDelta`](crate::QueryEvent::TokenDelta) per picked
    /// token and checks the sink for cooperative cancellation between
    /// tokens.
    pub sink: crate::StreamSink,
    /// Program-level parallelism (DESIGN.md §14): decode provably
    /// independent holes concurrently and join them in program order.
    /// On by default; applies to `argmax` runs only (sampling threads
    /// one RNG through the holes and beams have their own batch loop).
    /// Disable to bisect — results are byte-identical either way.
    pub parallel_holes: bool,
}

impl Default for DecodeOptions {
    fn default() -> Self {
        DecodeOptions {
            temperature: 1.0,
            max_tokens_per_hole: 64,
            seed: 0,
            engine: MaskEngine::default(),
            mask: MaskConfig::default(),
            no_repeat_ngram: 0,
            speculative: false,
            tracer: lmql_obs::Tracer::disabled(),
            sink: crate::StreamSink::none(),
            parallel_holes: true,
        }
    }
}

impl DecodeOptions {
    /// Applies the decoder clause's keyword parameters on top of these
    /// options (`temperature`, `max_length`, `no_repeat_ngram_size`).
    pub fn with_decoder_params(mut self, spec: &lmql_syntax::ast::DecoderSpec) -> Self {
        self.temperature = spec.float_param("temperature", self.temperature);
        self.max_tokens_per_hole = spec
            .int_param("max_length", self.max_tokens_per_hole as i64)
            .max(1) as usize;
        self.no_repeat_ngram = spec
            .int_param("no_repeat_ngram_size", self.no_repeat_ngram as i64)
            .max(0) as usize;
        self
    }
}

/// Tokens that would repeat an `n`-gram already present in `context`
/// (HuggingFace's `no_repeat_ngram_size` semantics): for the last `n-1`
/// context tokens as a prefix, every token that completed that prefix to
/// an existing `n`-gram is blocked.
pub fn ngram_blocked_tokens(
    context: &[lmql_tokenizer::TokenId],
    n: usize,
    vocab_len: usize,
) -> TokenSet {
    let mut blocked = TokenSet::empty(vocab_len);
    ngram_blocked_into(context, n, &mut blocked);
    blocked
}

/// [`ngram_blocked_tokens`] into a caller-owned buffer, so per-step
/// callers (the decode loop, beam search) allocate the set once per hole
/// instead of once per token.
pub fn ngram_blocked_into(context: &[lmql_tokenizer::TokenId], n: usize, blocked: &mut TokenSet) {
    blocked.clear();
    if n == 0 || context.len() < n {
        return;
    }
    let prefix = &context[context.len() - (n - 1)..];
    for window in context.windows(n) {
        if &window[..n - 1] == prefix {
            blocked.insert(window[n - 1]);
        }
    }
}

/// How `pick` (Alg. 2, line 5) chooses from the masked distribution.
#[derive(Debug)]
pub enum Pick {
    /// Highest probability (greedy).
    Argmax,
    /// Sample from the categorical distribution.
    Sample(Box<StdRng>),
}

impl Pick {
    /// An argmax picker.
    pub fn argmax() -> Self {
        Pick::Argmax
    }

    /// A seeded sampler.
    pub fn sample(seed: u64) -> Self {
        Pick::Sample(Box::new(StdRng::seed_from_u64(seed)))
    }
}

/// The outcome of decoding one hole.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedValue {
    /// The hole's value (stop phrase included, if one triggered).
    pub value: String,
    /// Sum of masked log-probabilities of the chosen tokens.
    pub log_prob: f64,
    /// Number of tokens generated.
    pub tokens: usize,
    /// Why decoding ended.
    pub stopped_by: StopReason,
}

/// Decodes a value for hole `var` given the current interaction trace.
///
/// Implements Alg. 2: at each step compute the mask, stop on dead ends or
/// forced stops, renormalise the masked distribution, pick a token, append.
///
/// # Errors
///
/// [`Error::NoValidContinuation`] when every token is masked and EOS is
/// inadmissible before any progress can be made.
#[allow(clippy::too_many_arguments)]
pub fn decode_hole<L: LanguageModel + ?Sized>(
    lm: &L,
    bpe: &Arc<Bpe>,
    masker: &mut Masker,
    where_expr: Option<&lmql_syntax::ast::Expr>,
    scope: &HashMap<String, crate::Value>,
    trace: &str,
    var: &str,
    pick: &mut Pick,
    options: &DecodeOptions,
) -> Result<DecodedValue> {
    decode_hole_traced(
        lm, bpe, masker, where_expr, scope, trace, var, pick, options, None,
    )
}

/// [`decode_hole`] with optional per-step introspection recording
/// (Appendix A.3 debugger support).
///
/// # Errors
///
/// See [`decode_hole`].
#[allow(clippy::too_many_arguments)]
pub fn decode_hole_traced<L: LanguageModel + ?Sized>(
    lm: &L,
    bpe: &Arc<Bpe>,
    masker: &mut Masker,
    where_expr: Option<&lmql_syntax::ast::Expr>,
    scope: &HashMap<String, crate::Value>,
    trace: &str,
    var: &str,
    pick: &mut Pick,
    options: &DecodeOptions,
    mut steps_out: Option<&mut Vec<StepTrace>>,
) -> Result<DecodedValue> {
    let tracer = options.tracer.clone();
    let mut hole_span = tracer.span_lazy("decode", || format!("hole:{var}"));
    let eos = bpe.vocab().eos();
    let mut value = String::new();
    let mut log_prob = 0.0;
    let mut tokens = 0;
    let stopped_by;
    // Alg. 2 operates on the token sequence `uv`: the prompt is encoded
    // once, picked tokens are appended as-is (no per-step re-encoding,
    // which could even re-factorise the value differently).
    let mut context = bpe.encode(trace);
    // Per-hole scratch, refilled in place each step: with the automata
    // path serving pooled outcomes and the in-place softmax/mask below,
    // the steady-state loop body allocates nothing beyond the model's
    // own logits buffer (pinned by `tests/alloc_budget.rs`).
    let mut mask = TokenSet::empty(bpe.vocab().len());
    let mut dist = lmql_lm::Distribution::empty();
    let mut ngram_blocked =
        (options.no_repeat_ngram > 0).then(|| TokenSet::empty(bpe.vocab().len()));

    loop {
        // Cooperative cancellation: a dropped stream handle (or a
        // disconnected client) stops the run between tokens.
        if options.sink.cancelled() {
            return Err(Error::Cancelled);
        }
        // Speculative mode (§4): kick off the forward pass while the mask
        // is being computed; the logits are wasted if this step turns out
        // to stop decoding.
        let speculative_logits = if options.speculative {
            let (logits, outcome) = std::thread::scope(|scope_| {
                let handle = scope_.spawn(|| {
                    let _span = tracer.span("model", "score_speculative");
                    lm.try_score(&context)
                });
                let outcome = masker.compute(where_expr, scope, var, &value);
                (handle.join().expect("scoring thread panicked"), outcome)
            });
            Some((logits, outcome))
        } else {
            None
        };

        let outcome = match &speculative_logits {
            Some((_, outcome)) => outcome.clone(),
            None => masker.compute(where_expr, scope, var, &value),
        };
        if outcome.must_stop {
            stopped_by = StopReason::StopPhrase;
            masker.recycle(outcome);
            break;
        }
        if outcome.is_dead_end() {
            masker.recycle(outcome);
            return Err(Error::NoValidContinuation {
                var: var.to_owned(),
            });
        }
        if outcome.allowed.is_empty() {
            stopped_by = StopReason::MaskExhausted;
            masker.recycle(outcome);
            break;
        }
        if tokens >= options.max_tokens_per_hole {
            stopped_by = StopReason::Budget;
            masker.recycle(outcome);
            break;
        }

        mask.fill_from(&outcome.allowed);
        if outcome.eos_allowed {
            mask.insert(eos);
        }

        if let Some(blocked) = &mut ngram_blocked {
            ngram_blocked_into(&context, options.no_repeat_ngram, blocked);
            mask.subtract_with(blocked);
            if mask.is_empty() {
                stopped_by = StopReason::MaskExhausted;
                masker.recycle(outcome);
                break; // blocking exhausted the mask: end the hole
            }
        }
        // Fast-forwarding (DESIGN.md §12): when the automaton proves the
        // mask is a singleton without EOS, the model's answer is
        // irrelevant — the forced token is appended without scoring.
        // Chains of forced states (template text, closing brackets)
        // therefore cost zero LM calls, while the per-token stream
        // events, step traces and log-prob stay byte-identical to the
        // scored path: a singleton renormalises to probability exactly
        // 1.0, log-prob exactly 0.0. (Speculative mode already paid for
        // the forward pass, so it keeps the scored path.)
        if speculative_logits.is_none() {
            if let Some(t) = masker.forced_token(&outcome) {
                let mut ff_span = tracer.span("decode", "fast_forward");
                if let Pick::Sample(rng) = pick {
                    // The scored path draws one uniform sample per
                    // token; a singleton distribution maps every draw
                    // to `t`. Burn the draw so the RNG stream — and
                    // every later sampled token — stays identical.
                    let _: f64 = rng.gen();
                }
                let text = bpe.vocab().token_str(t);
                if ff_span.is_recording() {
                    ff_span.arg("token", text.to_owned());
                }
                if let Some(steps) = steps_out.as_deref_mut() {
                    steps.push(StepTrace {
                        value_chars: value.chars().count(),
                        allowed: outcome.allowed.count(),
                        vocab: bpe.vocab().len(),
                        eos_allowed: outcome.eos_allowed,
                        picked: Some(text.to_owned()),
                        prob: 1.0,
                    });
                }
                masker.note_fast_forward(1);
                options.sink.token_delta(var, text, 0.0);
                value.push_str(text);
                context.push(t);
                tokens += 1;
                masker.recycle(outcome);
                continue;
            }
        }
        let logits = match speculative_logits {
            Some((logits, _)) => logits?,
            None => {
                let mut span = tracer.span("model", "score");
                span.arg("context_tokens", context.len() as u64);
                lm.try_score(&context)?
            }
        };
        // In-place softmax + mask renormalisation into the per-hole
        // scratch: bit-identical to `softmax(..)` / `masked(..)` (same
        // floating-point operation order), zero allocations at steady
        // state.
        logits.softmax_into(options.temperature, &mut dist);
        if !dist.mask_in_place(&mask) {
            masker.recycle(outcome);
            return Err(Error::NoValidContinuation {
                var: var.to_owned(),
            });
        }
        let t = match pick {
            Pick::Argmax => dist.argmax(),
            Pick::Sample(rng) => dist.sample(rng),
        };
        if let Some(steps) = steps_out.as_deref_mut() {
            steps.push(StepTrace {
                value_chars: value.chars().count(),
                allowed: outcome.allowed.count(),
                vocab: bpe.vocab().len(),
                eos_allowed: outcome.eos_allowed,
                picked: (t != eos).then(|| bpe.vocab().token_str(t).to_owned()),
                prob: dist.prob(t),
            });
        }
        masker.recycle(outcome);
        if t == eos {
            stopped_by = StopReason::Eos;
            break;
        }
        let lp = dist.log_prob(t);
        let text = bpe.vocab().token_str(t);
        log_prob += lp;
        options.sink.token_delta(var, text, lp);
        value.push_str(text);
        context.push(t);
        tokens += 1;
    }

    if hole_span.is_recording() {
        hole_span.arg("tokens", tokens as u64);
        hole_span.arg("stopped_by", format!("{stopped_by:?}"));
    }
    Ok(DecodedValue {
        value,
        log_prob,
        tokens,
        stopped_by,
    })
}

/// The full-vocabulary mask (minus EOS) — what an unconstrained decoder
/// sees.
pub fn unconstrained_mask(bpe: &Bpe) -> TokenSet {
    let mut m = TokenSet::full(bpe.vocab().len());
    m.remove(bpe.vocab().eos());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmql_lm::{Episode, ScriptedLm};
    use lmql_syntax::parse_expr;

    fn setup(script: &str) -> (Arc<Bpe>, ScriptedLm, Masker) {
        let bpe = Arc::new(Bpe::char_level(""));
        let lm = ScriptedLm::new(Arc::clone(&bpe), [Episode::plain("P:", script)]);
        let masker = Masker::new(MaskEngine::Exact, bpe.clone());
        (bpe, lm, masker)
    }

    #[test]
    fn unconstrained_decodes_script_to_eos() {
        let (bpe, lm, mut masker) = setup(" hello.");
        let out = decode_hole(
            &lm,
            &bpe,
            &mut masker,
            None,
            &HashMap::new(),
            "P:",
            "X",
            &mut Pick::argmax(),
            &DecodeOptions::default(),
        )
        .unwrap();
        assert_eq!(out.value, " hello.");
        assert!(out.tokens > 0);
    }

    #[test]
    fn stops_at_truncates_inclusively() {
        let (bpe, lm, mut masker) = setup(" one. two. three.");
        let e = parse_expr("stops_at(X, \".\")").unwrap();
        let out = decode_hole(
            &lm,
            &bpe,
            &mut masker,
            Some(&e),
            &HashMap::new(),
            "P:",
            "X",
            &mut Pick::argmax(),
            &DecodeOptions::default(),
        )
        .unwrap();
        assert_eq!(out.value, " one.");
    }

    #[test]
    fn membership_constraint_forces_option() {
        // The script says " maybe" but the constraint only allows yes/no;
        // masking forces the model onto an option.
        let (bpe, lm, mut masker) = setup(" maybe");
        let e = parse_expr("X in [\" yes\", \" no\"]").unwrap();
        let out = decode_hole(
            &lm,
            &bpe,
            &mut masker,
            Some(&e),
            &HashMap::new(),
            "P:",
            "X",
            &mut Pick::argmax(),
            &DecodeOptions::default(),
        )
        .unwrap();
        assert!(out.value == " yes" || out.value == " no");
    }

    #[test]
    fn max_tokens_caps_generation() {
        let (bpe, lm, mut masker) = setup(" this is a very long script that keeps going");
        let opts = DecodeOptions {
            max_tokens_per_hole: 5,
            ..DecodeOptions::default()
        };
        let out = decode_hole(
            &lm,
            &bpe,
            &mut masker,
            None,
            &HashMap::new(),
            "P:",
            "X",
            &mut Pick::argmax(),
            &opts,
        )
        .unwrap();
        assert_eq!(out.tokens, 5);
    }

    #[test]
    fn impossible_constraint_is_dead_end() {
        let (bpe, lm, mut masker) = setup(" x");
        let e = parse_expr("X in [\"a\"] and X in [\"b\"]").unwrap();
        let err = decode_hole(
            &lm,
            &bpe,
            &mut masker,
            Some(&e),
            &HashMap::new(),
            "P:",
            "X",
            &mut Pick::argmax(),
            &DecodeOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, Error::NoValidContinuation { .. }));
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let (bpe, lm, mut masker) = setup(" result text here");
        let mut run = |seed| {
            decode_hole(
                &lm,
                &bpe,
                &mut masker,
                None,
                &HashMap::new(),
                "P:",
                "X",
                &mut Pick::sample(seed),
                &DecodeOptions {
                    temperature: 1.5,
                    ..DecodeOptions::default()
                },
            )
            .unwrap()
            .value
        };
        assert_eq!(run(7), run(7));
    }
}
