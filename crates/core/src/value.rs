//! Runtime values of the query scripting language.

use std::cmp::Ordering;
use std::fmt;

/// A value of the Python-like query language.
///
/// Values are plain data (no references): lists are owned vectors, so
/// cloning a VM state for beam search deep-copies the scope — each beam's
/// control flow stays independent, as §4's scripted beam search requires.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Python `None`.
    None,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// List.
    List(Vec<Value>),
}

impl Value {
    /// Python truthiness: `None`, `False`, `0`, `0.0`, `""` and `[]` are
    /// falsy; everything else is truthy.
    pub fn truthy(&self) -> bool {
        match self {
            Value::None => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::List(l) => !l.is_empty(),
        }
    }

    /// The string used when substituting a `{var}` recall into a prompt:
    /// Python's `str()` — strings render without quotes.
    pub fn to_prompt_string(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            other => other.to_string(),
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float, widening integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a list slice, if it is one.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// A short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::None => "None",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::List(_) => "list",
        }
    }

    /// Numeric/string ordering comparison, `None` when incomparable.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => match (a.as_float(), b.as_float()) {
                (Some(x), Some(y)) => x.partial_cmp(&y),
                _ => None,
            },
        }
    }

    /// Python `==`: numeric cross-type equality, structural otherwise.
    pub fn py_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (a, b) => a == b,
        }
    }
}

impl fmt::Display for Value {
    /// Python `repr`-style rendering (strings quoted inside lists).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::None => write!(f, "None"),
            Value::Bool(true) => write!(f, "True"),
            Value::Bool(false) => write!(f, "False"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match v {
                        Value::Str(s) => write!(f, "'{s}'")?,
                        other => write!(f, "{other}")?,
                    }
                }
                write!(f, "]")
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<Vec<Value>> for Value {
    fn from(l: Vec<Value>) -> Self {
        Value::List(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_matches_python() {
        assert!(!Value::None.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(!Value::List(vec![]).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(Value::Str("x".into()).truthy());
    }

    #[test]
    fn display_list_quotes_strings() {
        let v = Value::List(vec![Value::Str("a".into()), Value::Int(2)]);
        assert_eq!(v.to_string(), "['a', 2]");
    }

    #[test]
    fn prompt_string_unquoted() {
        assert_eq!(Value::Str("hi".into()).to_prompt_string(), "hi");
        assert_eq!(Value::Int(3).to_prompt_string(), "3");
    }

    #[test]
    fn cross_type_numeric_eq() {
        assert!(Value::Int(2).py_eq(&Value::Float(2.0)));
        assert!(!Value::Int(2).py_eq(&Value::Str("2".into())));
    }

    #[test]
    fn compare_numbers_and_strings() {
        assert_eq!(
            Value::Int(1).compare(&Value::Float(1.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Str("a".into()).compare(&Value::Str("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Str("a".into()).compare(&Value::Int(1)), None);
    }
}
