//! FINAL semantics (the paper's Table 1): annotating partially evaluated
//! values with how they can still change as decoding progresses.

use crate::Value;

/// The annotators `A = {fin, var, inc, dec}` of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fin {
    /// The value will retain this fixed value for every continuation.
    Fin,
    /// The value may still change arbitrarily.
    Var,
    /// The value will only grow (numerically, or append-only for strings
    /// and lists).
    Inc,
    /// The value will only shrink.
    Dec,
}

impl Fin {
    /// `true` for `fin`.
    pub fn is_final(self) -> bool {
        self == Fin::Fin
    }

    /// `true` if the value can only grow or is fixed.
    pub fn is_nondecreasing(self) -> bool {
        matches!(self, Fin::Fin | Fin::Inc)
    }

    /// `true` if the value can only shrink or is fixed.
    pub fn is_nonincreasing(self) -> bool {
        matches!(self, Fin::Fin | Fin::Dec)
    }
}

/// A partially evaluated value with its FINAL annotation.
///
/// `value: None` encodes *undetermined*: the expression depends on a future
/// hole that has no value yet; all operators are tolerant of it (§5.1
/// "Application").
#[derive(Debug, Clone, PartialEq)]
pub struct FinalValue {
    /// The value, or `None` when undetermined.
    pub value: Option<Value>,
    /// How the value may still change.
    pub fin: Fin,
}

impl FinalValue {
    /// A final (fixed) value.
    pub fn fin(value: Value) -> Self {
        FinalValue {
            value: Some(value),
            fin: Fin::Fin,
        }
    }

    /// A value that may still change.
    pub fn var(value: Value) -> Self {
        FinalValue {
            value: Some(value),
            fin: Fin::Var,
        }
    }

    /// A monotonically growing value (e.g. the currently decoding hole).
    pub fn inc(value: Value) -> Self {
        FinalValue {
            value: Some(value),
            fin: Fin::Inc,
        }
    }

    /// An undetermined value (depends on a future hole).
    pub fn undetermined() -> Self {
        FinalValue {
            value: None,
            fin: Fin::Var,
        }
    }

    /// `true` if undetermined.
    pub fn is_undetermined(&self) -> bool {
        self.value.is_none()
    }

    /// `FIN(⊥)`: the expression is `false` for **every** continuation —
    /// the signal that lets the decoder mask a token or abort (§5.1).
    pub fn is_definitely_false(&self) -> bool {
        self.fin.is_final() && matches!(&self.value, Some(v) if !v.truthy())
    }

    /// `FIN(⊤)`: the expression is `true` for every continuation.
    pub fn is_definitely_true(&self) -> bool {
        self.fin.is_final() && matches!(&self.value, Some(v) if v.truthy())
    }

    /// The boolean reading of the value, if determined.
    pub fn truthy(&self) -> Option<bool> {
        self.value.as_ref().map(Value::truthy)
    }

    /// Replaces the annotation.
    pub fn with_fin(mut self, fin: Fin) -> Self {
        self.fin = fin;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn definitely_false_requires_fin() {
        assert!(FinalValue::fin(Value::Bool(false)).is_definitely_false());
        assert!(!FinalValue::var(Value::Bool(false)).is_definitely_false());
        assert!(!FinalValue::undetermined().is_definitely_false());
    }

    #[test]
    fn definitely_true_requires_fin() {
        assert!(FinalValue::fin(Value::Int(1)).is_definitely_true());
        assert!(!FinalValue::inc(Value::Int(1)).is_definitely_true());
    }

    #[test]
    fn monotonicity_predicates() {
        assert!(Fin::Inc.is_nondecreasing());
        assert!(Fin::Fin.is_nondecreasing());
        assert!(!Fin::Dec.is_nondecreasing());
        assert!(Fin::Dec.is_nonincreasing());
        assert!(!Fin::Var.is_nonincreasing());
    }
}
