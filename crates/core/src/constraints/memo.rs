//! Mask memoization: compute each `(where-expr, scope, var, value)` mask
//! exactly once.
//!
//! Mask generation is the dominant non-model cost of constrained
//! decoding: the Exact engine and the FollowMap generic leaf fallback pay
//! one FINAL evaluation per vocabulary entry per step. But the mask is a
//! pure function of its inputs — the constraint expression, the values of
//! the scope variables it references, the hole name and the partial
//! value — so re-steps of the same state (argmax retries, `sample(n)`
//! branches that haven't diverged yet, beams sharing a `(var, value)`
//! prefix, repeated queries through the engine's shared scheduler) can
//! reuse the first computation's [`MaskOutcome`] bit-for-bit.
//!
//! The memo key is a structural fingerprint:
//!
//! - `expr_hash` — a hash of the expression tree *ignoring spans*, so the
//!   same constraint text parsed twice (two queries through one engine)
//!   lands on the same entry;
//! - `scope_hash` — a hash of the values of every `Name` the expression
//!   references (other than the hole variable itself), hashed in
//!   traversal order; unrelated scope variables do not shrink reuse;
//! - the hole `var` and partial `value`, stored verbatim;
//! - tags for the engine, the vocabulary identity, and the custom-operator
//!   registry generation, so entries can never leak across
//!   configurations that would compute different bits.
//!
//! Invalidation is purely structural: there is no mutable state a mask
//! depends on (scan caches are themselves pure functions of the
//! vocabulary), so entries never go stale — they only get evicted by the
//! bounded LRU. Sharing one [`MaskMemo`] across maskers is sound exactly
//! when they mask over the same vocabulary object; the engine shares one
//! memo across its per-query runtimes, which all hold the same tokenizer.

use crate::constraints::mask::{MaskEngine, MaskOutcome};
use crate::Value;
use lmql_syntax::ast::Expr;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// The inputs a mask is a pure function of, fingerprinted.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct MaskKey {
    /// Engine discriminant (Exact vs Symbolic masks differ).
    pub engine: u8,
    /// Identity of the vocabulary object masked over.
    pub vocab: (usize, usize),
    /// Custom-operator registry generation (see `CustomOps::generation`).
    pub ops: u64,
    /// Structural hash of the `where` expression, spans ignored.
    pub expr: u64,
    /// Hash of the referenced scope variables' values.
    pub scope: u64,
    /// Hole variable name.
    pub var: String,
    /// Partial hole value.
    pub value: String,
}

impl MaskKey {
    pub(crate) fn new(
        engine: MaskEngine,
        vocab: (usize, usize),
        ops_generation: u64,
        expr: &Expr,
        scope: &HashMap<String, Value>,
        var: &str,
        value: &str,
    ) -> Self {
        let (expr_hash, scope_hash) = fingerprint_expr(expr, scope, var);
        MaskKey {
            engine: match engine {
                MaskEngine::Exact => 0,
                MaskEngine::Symbolic => 1,
            },
            vocab,
            ops: ops_generation,
            expr: expr_hash,
            scope: scope_hash,
            var: var.to_owned(),
            value: value.to_owned(),
        }
    }
}

/// Hashes the expression structurally (spans ignored) and, in the same
/// walk, hashes the current value of every scope variable it references.
/// Returns `(expr_hash, scope_hash)`.
///
/// Both walks are deterministic (AST traversal order), so equal
/// `(expr, scope|free-vars, var)` inputs always produce equal hashes.
pub(crate) fn fingerprint_expr(
    expr: &Expr,
    scope: &HashMap<String, Value>,
    var: &str,
) -> (u64, u64) {
    let mut eh = DefaultHasher::new();
    let mut sh = DefaultHasher::new();
    walk(expr, scope, var, &mut eh, &mut sh);
    (eh.finish(), sh.finish())
}

/// Hashes every binding in a scope (sorted by name, so iteration order of
/// the underlying map cannot leak into the hash). Used for beam-level
/// per-step mask dedup, where over-keying on unreferenced variables only
/// costs reuse, never soundness.
pub(crate) fn fingerprint_scope_full(scope: &HashMap<String, Value>) -> u64 {
    let mut names: Vec<&str> = scope.keys().map(String::as_str).collect();
    names.sort_unstable();
    let mut h = DefaultHasher::new();
    for name in names {
        name.hash(&mut h);
        hash_value(&scope[name], &mut h);
    }
    h.finish()
}

fn hash_value<H: Hasher>(v: &Value, h: &mut H) {
    match v {
        Value::None => 0u8.hash(h),
        Value::Bool(b) => {
            1u8.hash(h);
            b.hash(h);
        }
        Value::Int(i) => {
            2u8.hash(h);
            i.hash(h);
        }
        Value::Float(f) => {
            3u8.hash(h);
            f.to_bits().hash(h);
        }
        Value::Str(s) => {
            4u8.hash(h);
            s.hash(h);
        }
        Value::List(items) => {
            5u8.hash(h);
            items.len().hash(h);
            for it in items {
                hash_value(it, h);
            }
        }
    }
}

fn walk<H: Hasher>(expr: &Expr, scope: &HashMap<String, Value>, var: &str, eh: &mut H, sh: &mut H) {
    match expr {
        Expr::Str { value, .. } => {
            0u8.hash(eh);
            value.hash(eh);
        }
        Expr::Int { value, .. } => {
            1u8.hash(eh);
            value.hash(eh);
        }
        Expr::Float { value, .. } => {
            2u8.hash(eh);
            value.to_bits().hash(eh);
        }
        Expr::Bool { value, .. } => {
            3u8.hash(eh);
            value.hash(eh);
        }
        Expr::None { .. } => 4u8.hash(eh),
        Expr::Name { name, .. } => {
            5u8.hash(eh);
            name.hash(eh);
            // Scope dependency: the mask depends on this name's current
            // value (absent names — builtins, the hole itself — hash as
            // a constant tag, which is consistent across lookups).
            if name != var {
                name.hash(sh);
                match scope.get(name) {
                    Some(v) => {
                        1u8.hash(sh);
                        hash_value(v, sh);
                    }
                    None => 0u8.hash(sh),
                }
            }
        }
        Expr::List { items, .. } => {
            6u8.hash(eh);
            items.len().hash(eh);
            for it in items {
                walk(it, scope, var, eh, sh);
            }
        }
        Expr::Call { func, args, .. } => {
            7u8.hash(eh);
            walk(func, scope, var, eh, sh);
            args.len().hash(eh);
            for a in args {
                walk(a, scope, var, eh, sh);
            }
        }
        Expr::Attribute { obj, name, .. } => {
            8u8.hash(eh);
            walk(obj, scope, var, eh, sh);
            name.hash(eh);
        }
        Expr::Index { obj, index, .. } => {
            9u8.hash(eh);
            walk(obj, scope, var, eh, sh);
            walk(index, scope, var, eh, sh);
        }
        Expr::Slice { obj, lo, hi, .. } => {
            10u8.hash(eh);
            walk(obj, scope, var, eh, sh);
            lo.is_some().hash(eh);
            if let Some(lo) = lo {
                walk(lo, scope, var, eh, sh);
            }
            hi.is_some().hash(eh);
            if let Some(hi) = hi {
                walk(hi, scope, var, eh, sh);
            }
        }
        Expr::BinOp {
            op, left, right, ..
        } => {
            11u8.hash(eh);
            (*op as u8).hash(eh);
            walk(left, scope, var, eh, sh);
            walk(right, scope, var, eh, sh);
        }
        Expr::Compare {
            op, left, right, ..
        } => {
            12u8.hash(eh);
            (*op as u8).hash(eh);
            walk(left, scope, var, eh, sh);
            walk(right, scope, var, eh, sh);
        }
        Expr::BoolOp { and, operands, .. } => {
            13u8.hash(eh);
            and.hash(eh);
            operands.len().hash(eh);
            for o in operands {
                walk(o, scope, var, eh, sh);
            }
        }
        Expr::Not { operand, .. } => {
            14u8.hash(eh);
            walk(operand, scope, var, eh, sh);
        }
        Expr::Neg { operand, .. } => {
            15u8.hash(eh);
            walk(operand, scope, var, eh, sh);
        }
    }
}

/// A bounded, LRU-evicting memo of [`MaskOutcome`]s, shareable across
/// maskers (and threads) via `Arc`.
///
/// The engine installs one shared memo into every per-query runtime, so
/// concurrent queries over the same constraints reuse each other's masks;
/// a standalone [`Runtime`](crate::Runtime) owns a private one spanning
/// its runs (all `sample(n)` branches, every re-run of a compiled
/// program).
#[derive(Debug)]
pub struct MaskMemo {
    inner: Mutex<MemoInner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct MemoInner {
    entries: HashMap<MaskKey, (MaskOutcome, u64)>,
    tick: u64,
}

impl MaskMemo {
    /// A memo holding at most `capacity` outcomes (minimum 1).
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(MaskMemo {
            inner: Mutex::new(MemoInner::default()),
            capacity: capacity.max(1),
        })
    }

    /// Number of cached outcomes.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("mask memo poisoned").entries.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn get(&self, key: &MaskKey) -> Option<MaskOutcome> {
        let mut inner = self.inner.lock().expect("mask memo poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let (outcome, last_used) = inner.entries.get_mut(key)?;
        *last_used = tick;
        Some(outcome.clone())
    }

    pub(crate) fn insert(&self, key: MaskKey, outcome: MaskOutcome) {
        let mut inner = self.inner.lock().expect("mask memo poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if inner.entries.len() >= self.capacity && !inner.entries.contains_key(&key) {
            // Evict the least-recently-used entry. O(capacity) scan, but
            // eviction is rare and the capacity small; the scan is
            // trivial next to one O(|V|) mask computation.
            if let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&victim);
            }
        }
        inner.entries.insert(key, (outcome, tick));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmql_syntax::parse_expr;
    use lmql_tokenizer::TokenSet;

    fn outcome(n: usize) -> MaskOutcome {
        MaskOutcome {
            allowed: TokenSet::full(n),
            eos_allowed: true,
            must_stop: false,
        }
    }

    fn key(expr: &Expr, scope: &HashMap<String, Value>, value: &str) -> MaskKey {
        MaskKey::new(
            MaskEngine::Symbolic,
            (0xABC, 10),
            0,
            expr,
            scope,
            "X",
            value,
        )
    }

    #[test]
    fn span_differences_do_not_split_entries() {
        let a = parse_expr("len(X) < 4 and \"b\" in X").unwrap();
        let b = parse_expr("  len(X)  <  4  and  \"b\"  in  X").unwrap();
        let scope = HashMap::new();
        assert_eq!(key(&a, &scope, "v"), key(&b, &scope, "v"));
    }

    #[test]
    fn referenced_scope_values_split_entries() {
        let e = parse_expr("X in options").unwrap();
        let mut scope = HashMap::new();
        scope.insert("options".to_owned(), Value::List(vec!["a".into()]));
        let k1 = key(&e, &scope, "");
        scope.insert("options".to_owned(), Value::List(vec!["b".into()]));
        let k2 = key(&e, &scope, "");
        assert_ne!(k1, k2, "changing a referenced list must miss");
        // An unreferenced variable changing does not split.
        scope.insert("unrelated".to_owned(), Value::Int(7));
        assert_eq!(k2, key(&e, &scope, ""));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let memo = MaskMemo::new(2);
        let e = parse_expr("len(X) < 4").unwrap();
        let scope = HashMap::new();
        let (k1, k2, k3) = (
            key(&e, &scope, "a"),
            key(&e, &scope, "b"),
            key(&e, &scope, "c"),
        );
        memo.insert(k1.clone(), outcome(4));
        memo.insert(k2.clone(), outcome(4));
        assert!(memo.get(&k1).is_some()); // refresh k1: k2 becomes LRU
        memo.insert(k3.clone(), outcome(4));
        assert_eq!(memo.len(), 2);
        assert!(memo.get(&k1).is_some());
        assert!(memo.get(&k2).is_none(), "LRU entry evicted");
        assert!(memo.get(&k3).is_some());
    }
}
