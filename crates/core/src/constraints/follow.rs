//! FOLLOW semantics (the paper's Table 2): symbolic computation of token
//! masks via FollowMaps.
//!
//! For the currently decoding hole `v` with partial value `u`, a FollowMap
//! approximates, per candidate next token `t`, the future value of a
//! constraint expression under `v ← u·t`. We represent the actionable part
//! of a FollowMap as two token sets per (sub)expression:
//!
//! - `definitely_false` — tokens for which the expression becomes `FIN(⊥)`,
//! - `definitely_true`  — tokens for which it becomes `FIN(⊤)`,
//!
//! and compose them case-wise through `and`/`or`/`not` exactly as the
//! recursive `Follow[·]` operator of §5.2 composes FollowMaps. Leaf
//! expressions with a known shape (membership in a constant list,
//! substring constraints, string equality, `int(…)`) resolve to token sets
//! through the vocabulary prefix trie ("Subtokenization", §5.2); any other
//! leaf falls back to per-token FINAL evaluation *of that leaf only*.
//!
//! Soundness (Theorem 5.1): a token lands in `definitely_false` only if
//! FINAL evaluation under `v ← u·t` yields `FIN(⊥)`, so no token admitting
//! a legal continuation is ever masked. Property tests in
//! `tests/mask_soundness.rs` check this against brute force.

use crate::constraints::eval::{eval_final, EvalCtx};
use crate::Value;
use lmql_syntax::ast::{CmpOp, Expr};
use lmql_tokenizer::{TokenId, TokenSet, TokenTrie, Vocabulary};
use std::collections::HashMap;

/// The actionable projection of a FollowMap: which tokens force a
/// definitive verdict.
#[derive(Debug, Clone)]
pub(crate) struct FollowSets {
    /// Tokens making the expression `FIN(⊥)`.
    pub definitely_false: TokenSet,
    /// Tokens making the expression `FIN(⊤)`.
    pub definitely_true: TokenSet,
}

impl FollowSets {
    fn neutral(pool: &mut SetPool) -> Self {
        FollowSets {
            definitely_false: pool.take_empty(),
            definitely_true: pool.take_empty(),
        }
    }

    fn constant(pool: &mut SetPool, truth: bool) -> Self {
        let full = pool.take_full();
        let empty = pool.take_empty();
        if truth {
            FollowSets {
                definitely_false: empty,
                definitely_true: full,
            }
        } else {
            FollowSets {
                definitely_false: full,
                definitely_true: empty,
            }
        }
    }
}

/// A recycling pool of [`TokenSet`] scratch buffers over one vocabulary:
/// a typed wrapper over the generic bounded [`lmql_arena::Pool`].
///
/// FollowMap composition builds and discards several vocabulary-sized
/// bitsets per expression node per decoding step; the pool turns those
/// `empty()`/`full()` allocations into `clear()`/`fill()` reuses of
/// buffers retired by earlier steps.
#[derive(Debug)]
pub(crate) struct SetPool {
    len: usize,
    free: lmql_arena::Pool<TokenSet>,
}

impl SetPool {
    pub(crate) fn new(len: usize) -> Self {
        // The cap bounds memory at `DEFAULT_CAP · |V| / 8` bytes per
        // masker.
        SetPool {
            len,
            free: lmql_arena::Pool::new(),
        }
    }

    /// An empty set over the pool's vocabulary, reusing a retired buffer
    /// when one is available.
    pub(crate) fn take_empty(&mut self) -> TokenSet {
        match self.free.take() {
            Some(mut s) => {
                s.clear();
                s
            }
            None => TokenSet::empty(self.len),
        }
    }

    /// A full set over the pool's vocabulary.
    pub(crate) fn take_full(&mut self) -> TokenSet {
        let mut s = self.take_empty();
        s.fill();
        s
    }

    /// A copy of `other`, reusing a retired buffer when available.
    pub(crate) fn take_copy(&mut self, other: &TokenSet) -> TokenSet {
        let mut s = self.take_empty();
        s.fill_from(other);
        s
    }

    /// Retires a buffer for reuse. Sets over a different universe are
    /// dropped (they cannot be reused here).
    pub(crate) fn put(&mut self, s: TokenSet) {
        if s.universe_len() == self.len {
            self.free.put(s);
        }
    }

    /// Retires both sets of a [`FollowSets`].
    pub(crate) fn put_sets(&mut self, fs: FollowSets) {
        self.put(fs.definitely_false);
        self.put(fs.definitely_true);
    }
}

/// Scans the vocabulary, calling `classify` on `value·token` for every
/// regular token and collecting the two verdict bits into `df_words` /
/// `dt_words` (64 tokens per word, matching [`TokenSet::words_mut`]).
///
/// With `threads > 1` the scan is chunked into word-aligned 64-token
/// ranges distributed over a scoped thread pool; each chunk's bits are
/// accumulated in a register and stored into its own `u64` word, so
/// writers never share a word and no synchronisation is needed. The
/// result is bit-identical to the sequential scan — every token's verdict
/// is a pure function of `value·token` — only the evaluation order
/// changes.
///
/// Returns the number of word-chunks scanned in parallel (0 for a
/// sequential scan), for the `mask.scan.parallel_chunks` metric.
pub(crate) fn scan_vocab<F>(
    vocab: &Vocabulary,
    value: &str,
    threads: usize,
    df_words: &mut [u64],
    dt_words: &mut [u64],
    classify: &F,
) -> u64
where
    F: Fn(&str) -> (bool, bool) + Sync,
{
    let words = df_words.len();
    debug_assert_eq!(words, dt_words.len());
    let vlen = vocab.len();

    // One word-aligned chunk of 64 candidate tokens: builds each
    // candidate with a rolling truncate-then-push (no per-token String),
    // accumulates the verdict bits, and stores them as one word.
    let scan_word = |word: usize, candidate: &mut String, base: usize| -> (u64, u64) {
        let (mut df_bits, mut dt_bits) = (0u64, 0u64);
        for bit in 0..64 {
            let idx = word * 64 + bit;
            if idx >= vlen {
                break;
            }
            let id = TokenId(idx as u32);
            if vocab.is_special(id) {
                continue;
            }
            candidate.truncate(base);
            candidate.push_str(vocab.token_str(id));
            let (f, t) = classify(candidate);
            if f {
                df_bits |= 1 << bit;
            }
            if t {
                dt_bits |= 1 << bit;
            }
        }
        (df_bits, dt_bits)
    };

    if threads <= 1 || words <= 1 {
        let mut candidate = String::with_capacity(value.len() + 24);
        candidate.push_str(value);
        let base = candidate.len();
        for word in 0..words {
            let (df, dt) = scan_word(word, &mut candidate, base);
            df_words[word] = df;
            dt_words[word] = dt;
        }
        return 0;
    }

    let chunk = words.div_ceil(threads).max(1);
    std::thread::scope(|s| {
        for (i, (dfc, dtc)) in df_words
            .chunks_mut(chunk)
            .zip(dt_words.chunks_mut(chunk))
            .enumerate()
        {
            let scan_word = &scan_word;
            s.spawn(move || {
                let mut candidate = String::with_capacity(value.len() + 24);
                candidate.push_str(value);
                let base = candidate.len();
                for (w, (dfw, dtw)) in dfc.iter_mut().zip(dtc.iter_mut()).enumerate() {
                    let (df, dt) = scan_word(i * chunk + w, &mut candidate, base);
                    *dfw = df;
                    *dtw = dt;
                }
            });
        }
    });
    words as u64
}

/// Reusable vocabulary-scan caches; needle scans are O(|V|·|token|) and
/// identical across decoding steps, so they are computed once per query.
#[derive(Debug, Default)]
pub(crate) struct ScanCache {
    /// needle → tokens whose text contains the needle.
    contains: HashMap<String, TokenSet>,
    /// needle → tokens whose text contains the needle *not* as a suffix.
    contains_beyond: HashMap<String, TokenSet>,
    /// Tokens consisting only of ASCII digits.
    digit_only: Option<TokenSet>,
    /// Tokens that are an optional `-` followed by digits only.
    int_start: Option<TokenSet>,
    /// Per-token `(word_count, starts_with_non_whitespace)`.
    word_stats: Option<Vec<(u32, bool)>>,
    /// Per-token character count.
    char_lens: Option<Vec<u32>>,
}

impl ScanCache {
    pub(crate) fn tokens_containing(&mut self, vocab: &Vocabulary, needle: &str) -> &TokenSet {
        // Hit path allocates nothing (`entry` would clone the needle).
        if !self.contains.contains_key(needle) {
            let set = TokenSet::from_ids(
                vocab.len(),
                vocab
                    .regular_tokens()
                    .filter(|(_, s)| s.contains(needle))
                    .map(|(id, _)| id),
            );
            self.contains.insert(needle.to_owned(), set);
        }
        &self.contains[needle]
    }

    pub(crate) fn tokens_containing_beyond(
        &mut self,
        vocab: &Vocabulary,
        needle: &str,
    ) -> &TokenSet {
        if !self.contains_beyond.contains_key(needle) {
            let set = TokenSet::from_ids(
                vocab.len(),
                vocab
                    .regular_tokens()
                    .filter(|(_, s)| s.contains(needle) && !s.ends_with(needle))
                    .map(|(id, _)| id),
            );
            self.contains_beyond.insert(needle.to_owned(), set);
        }
        &self.contains_beyond[needle]
    }

    pub(crate) fn digit_only(&mut self, vocab: &Vocabulary) -> &TokenSet {
        self.digit_only.get_or_insert_with(|| {
            TokenSet::from_ids(
                vocab.len(),
                vocab
                    .regular_tokens()
                    .filter(|(_, s)| !s.is_empty() && s.chars().all(|c| c.is_ascii_digit()))
                    .map(|(id, _)| id),
            )
        })
    }

    pub(crate) fn word_stats(&mut self, vocab: &Vocabulary) -> &[(u32, bool)] {
        self.word_stats.get_or_insert_with(|| {
            vocab
                .ids()
                .map(|id| {
                    if vocab.is_special(id) {
                        return (0, false);
                    }
                    let s = vocab.token_str(id);
                    let count = s.split_whitespace().count() as u32;
                    let starts_nonws = s.chars().next().is_some_and(|c| !c.is_whitespace());
                    (count, starts_nonws)
                })
                .collect()
        })
    }

    pub(crate) fn char_lens(&mut self, vocab: &Vocabulary) -> &[u32] {
        self.char_lens.get_or_insert_with(|| {
            vocab
                .ids()
                .map(|id| {
                    if vocab.is_special(id) {
                        0
                    } else {
                        vocab.token_str(id).chars().count() as u32
                    }
                })
                .collect()
        })
    }

    pub(crate) fn int_start(&mut self, vocab: &Vocabulary) -> &TokenSet {
        self.int_start.get_or_insert_with(|| {
            TokenSet::from_ids(
                vocab.len(),
                vocab
                    .regular_tokens()
                    .filter(|(_, s)| {
                        let d = s.strip_prefix('-').unwrap_or(s);
                        !s.is_empty() && d.chars().all(|c| c.is_ascii_digit())
                    })
                    .map(|(id, _)| id),
            )
        })
    }
}

/// Everything a FOLLOW computation needs.
pub(crate) struct FollowCtx<'a> {
    pub scope: &'a HashMap<String, Value>,
    pub var: &'a str,
    pub value: &'a str,
    pub vocab: &'a Vocabulary,
    pub trie: &'a TokenTrie,
    pub cache: &'a mut ScanCache,
    pub custom: Option<&'a crate::constraints::CustomOps>,
    /// Scratch-set pool shared with the masker.
    pub pool: &'a mut SetPool,
    /// Thread count for generic vocabulary scans (`<= 1` = sequential).
    pub threads: usize,
    /// Accumulates word-chunks scanned in parallel (metric output).
    pub parallel_chunks: u64,
}

impl FollowCtx<'_> {
    fn eval_ctx(&self) -> EvalCtx<'_> {
        EvalCtx {
            scope: self.scope,
            var: self.var,
            value: self.value,
            var_final: false,
            custom: self.custom,
        }
    }
}

/// Computes the FOLLOW sets of `expr` (the recursive `Follow[·]` operator).
pub(crate) fn follow_sets(expr: &Expr, ctx: &mut FollowCtx<'_>) -> FollowSets {
    // Case-wise short-circuit: if the expression already has a definitive
    // verdict on the current value, every token inherits it.
    let now = eval_final(expr, &ctx.eval_ctx());
    if now.is_definitely_true() {
        return FollowSets::constant(ctx.pool, true);
    }
    if now.is_definitely_false() {
        return FollowSets::constant(ctx.pool, false);
    }

    match expr {
        Expr::BoolOp { and, operands, .. } => {
            // a∧b is FIN(⊥) if any conjunct is; FIN(⊤) if all are (dual
            // for ∨). Fold incrementally, retiring each part to the pool.
            let (mut df, mut dt) = if *and {
                (ctx.pool.take_empty(), ctx.pool.take_full())
            } else {
                (ctx.pool.take_full(), ctx.pool.take_empty())
            };
            for o in operands {
                let p = follow_sets(o, ctx);
                if *and {
                    df.union_with(&p.definitely_false);
                    dt.intersect_with(&p.definitely_true);
                } else {
                    df.intersect_with(&p.definitely_false);
                    dt.union_with(&p.definitely_true);
                }
                ctx.pool.put_sets(p);
            }
            FollowSets {
                definitely_false: df,
                definitely_true: dt,
            }
        }
        Expr::Not { operand, .. } => {
            let inner = follow_sets(operand, ctx);
            FollowSets {
                definitely_false: inner.definitely_true,
                definitely_true: inner.definitely_false,
            }
        }
        other => leaf_follow_sets(other, ctx),
    }
}

/// FOLLOW sets of a non-boolean-composed expression: fast paths from
/// Table 2 where the shape is recognised, per-token FINAL evaluation of
/// the leaf otherwise.
fn leaf_follow_sets(expr: &Expr, ctx: &mut FollowCtx<'_>) -> FollowSets {
    if let Some(fs) = fast_path(expr, ctx) {
        return fs;
    }
    // Generic fallback: evaluate this leaf for every candidate token.
    // Sound and complete for one-token lookahead, just not O(1); the
    // scan is chunked across threads when the masker enables it.
    let mut df = ctx.pool.take_empty();
    let mut dt = ctx.pool.take_empty();
    let (scope, var, custom, vocab) = (ctx.scope, ctx.var, ctx.custom, ctx.vocab);
    let classify = |candidate: &str| {
        let fv = eval_final(
            expr,
            &EvalCtx {
                scope,
                var,
                value: candidate,
                var_final: false,
                custom,
            },
        );
        let f = fv.is_definitely_false();
        (f, !f && fv.is_definitely_true())
    };
    ctx.parallel_chunks += scan_vocab(
        vocab,
        ctx.value,
        ctx.threads,
        df.words_mut(),
        dt.words_mut(),
        &classify,
    );
    FollowSets {
        definitely_false: df,
        definitely_true: dt,
    }
}

/// Table 2 fast paths. Returns `None` when the expression shape is not
/// recognised.
fn fast_path(expr: &Expr, ctx: &mut FollowCtx<'_>) -> Option<FollowSets> {
    match expr {
        Expr::Bool { value, .. } => Some(FollowSets::constant(ctx.pool, *value)),
        // stops_at never constrains validity (its FOLLOW value is ⊤-ish).
        Expr::Call { func, .. } if matches!(func.as_ref(), Expr::Name { name, .. } if name == "stops_at") => {
            Some(FollowSets::neutral(ctx.pool))
        }
        // Custom operator with a follow fast path, called on the current
        // hole variable (Appendix A.1).
        Expr::Call { func, args, .. }
            if matches!(
                (func.as_ref(), ctx.custom),
                (Expr::Name { name, .. }, Some(c)) if c.contains(name)
            ) && matches!(args.first(), Some(Expr::Name { name, .. }) if name == ctx.var) =>
        {
            let Expr::Name { name, .. } = func.as_ref() else {
                unreachable!("matched above");
            };
            let op = ctx.custom.and_then(|c| c.get(name)).expect("matched above");
            let view = crate::constraints::FollowView {
                value: ctx.value,
                vocab: ctx.vocab,
                trie: ctx.trie,
            };
            let mut df = op.follow_allowed(&view)?;
            df.complement_in_place();
            Some(FollowSets {
                definitely_false: df,
                definitely_true: ctx.pool.take_empty(),
            })
        }
        // int(VAR): only integer-shaped tokens keep the constraint alive.
        Expr::Call { func, args, .. }
            if matches!(func.as_ref(), Expr::Name { name, .. } if name == "int")
                && matches!(args.first(), Some(Expr::Name { name, .. }) if name == ctx.var) =>
        {
            let allowed = if ctx.value.trim().is_empty() {
                ctx.cache.int_start(ctx.vocab)
            } else {
                ctx.cache.digit_only(ctx.vocab)
            };
            let mut df = ctx.pool.take_copy(allowed);
            df.complement_in_place();
            Some(FollowSets {
                definitely_false: df,
                definitely_true: ctx.pool.take_empty(),
            })
        }
        Expr::Compare {
            op, left, right, ..
        } => compare_fast_path(*op, left, right, ctx),
        _ => None,
    }
}

/// A recognised length metric over the current hole variable.
enum LenMetric {
    Chars,
    Words,
}

/// Matches `len(VAR)`, `len(characters(VAR))` or `len(words(VAR))` over
/// the current hole variable.
fn len_metric_of(e: &Expr, var: &str) -> Option<LenMetric> {
    let Expr::Call { func, args, .. } = e else {
        return None;
    };
    let Expr::Name { name, .. } = func.as_ref() else {
        return None;
    };
    if name != "len" {
        return None;
    }
    match args.first()? {
        Expr::Name { name, .. } if name == var => Some(LenMetric::Chars),
        Expr::Call { func, args, .. } => {
            let Expr::Name { name: inner, .. } = func.as_ref() else {
                return None;
            };
            let metric = match inner.as_str() {
                "characters" => LenMetric::Chars,
                "words" => LenMetric::Words,
                _ => return None,
            };
            match args.first()? {
                Expr::Name { name, .. } if name == var => Some(metric),
                _ => None,
            }
        }
        _ => None,
    }
}

fn compare_fast_path(
    op: CmpOp,
    left: &Expr,
    right: &Expr,
    ctx: &mut FollowCtx<'_>,
) -> Option<FollowSets> {
    let is_cur_var = |e: &Expr| matches!(e, Expr::Name { name, .. } if name == ctx.var);

    // Length-bound fast path (`len(words(X)) < 40` and friends): the
    // metric is monotone, so per-token deltas decide definitively.
    {
        let (metric, bound, op_norm) = if let (Some(m), Expr::Int { value, .. }) =
            (len_metric_of(left, ctx.var), right)
        {
            (Some(m), *value, op)
        } else if let (Expr::Int { value, .. }, Some(m)) = (left, len_metric_of(right, ctx.var)) {
            // Mirror `N op metric` to `metric op' N`.
            let mirrored = match op {
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::Ge => CmpOp::Le,
                other => other,
            };
            (Some(m), *value, mirrored)
        } else {
            (None, 0, op)
        };
        if let Some(metric) = metric {
            if matches!(op_norm, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge) {
                return Some(len_bound_sets(metric, op_norm, bound, ctx));
            }
        }
    }

    let const_str = |e: &Expr| -> Option<String> {
        match e {
            Expr::Str { value, .. } => Some(value.clone()),
            _ => None,
        }
    };
    let const_str_list = |e: &Expr| -> Option<Vec<String>> {
        match e {
            Expr::List { items, .. } => items.iter().map(const_str).collect(),
            // A scope variable holding a list of strings is constant for
            // the duration of this hole decode.
            Expr::Name { name, .. } if name != ctx.var => match ctx.scope.get(name) {
                Some(Value::List(items)) => items
                    .iter()
                    .map(|v| v.as_str().map(str::to_owned))
                    .collect(),
                _ => None,
            },
            _ => None,
        }
    };

    match op {
        // VAR in ["opt1", "opt2", …]  (Table 2: `x in l`)
        CmpOp::In if is_cur_var(left) => {
            if let Some(options) = const_str_list(right) {
                let mut allowed = ctx.pool.take_empty();
                for opt in &options {
                    if let Some(rem) = opt.strip_prefix(ctx.value) {
                        if !rem.is_empty() {
                            allowed.union_with(&ctx.trie.aligned_with(rem, false));
                        }
                    }
                }
                allowed.complement_in_place();
                return Some(FollowSets {
                    definitely_false: allowed,
                    definitely_true: ctx.pool.take_empty(),
                });
            }
            // VAR in "haystack": v·t must remain a substring.
            if let Some(hay) = const_str(right) {
                let mut allowed = ctx.pool.take_empty();
                if ctx.value.is_empty() {
                    for (start, _) in hay.char_indices() {
                        for t in ctx.trie.prefixes_of(&hay[start..]) {
                            allowed.insert(t);
                        }
                    }
                } else {
                    let mut from = 0;
                    while let Some(pos) = hay[from..].find(ctx.value) {
                        let end = from + pos + ctx.value.len();
                        for t in ctx.trie.prefixes_of(&hay[end..]) {
                            allowed.insert(t);
                        }
                        from += pos + 1;
                    }
                }
                allowed.complement_in_place();
                return Some(FollowSets {
                    definitely_false: allowed,
                    definitely_true: ctx.pool.take_empty(),
                });
            }
            None
        }
        // "needle" in VAR (Table 2: `x in s` for constant x): presence is
        // sticky for an append-only string, so tokens completing the
        // needle are FIN(⊤); absence is never final.
        CmpOp::In if is_cur_var(right) => {
            let needle = const_str(left)?;
            let mut dt = ctx
                .pool
                .take_copy(ctx.cache.tokens_containing(ctx.vocab, &needle));
            // Cross-boundary completions: the value ends with a proper
            // prefix of the needle and the token starts with the rest.
            for (k, _) in needle.char_indices().skip(1) {
                if ctx.value.ends_with(&needle[..k]) {
                    for t in ctx.trie.tokens_with_prefix(&needle[k..]) {
                        dt.insert(t);
                    }
                }
            }
            Some(FollowSets {
                definitely_false: ctx.pool.take_empty(),
                definitely_true: dt,
            })
        }
        // VAR == "const" (Table 2 string comparison): alignment with the
        // remaining characters.
        CmpOp::Eq => {
            let (var_side, const_side) = if is_cur_var(left) {
                (left, right)
            } else if is_cur_var(right) {
                (right, left)
            } else {
                return None;
            };
            let _ = var_side;
            let target = const_str(const_side)?;
            let rem = target.strip_prefix(ctx.value)?;
            let mut df = if rem.is_empty() {
                ctx.pool.take_empty()
            } else {
                ctx.trie.aligned_with(rem, false)
            };
            df.complement_in_place();
            Some(FollowSets {
                definitely_false: df,
                definitely_true: ctx.pool.take_empty(),
            })
        }
        _ => None,
    }
}

/// FOLLOW sets for `metric(VAR) op bound` where the metric is monotone
/// non-decreasing under token appends.
fn len_bound_sets(metric: LenMetric, op: CmpOp, bound: i64, ctx: &mut FollowCtx<'_>) -> FollowSets {
    let mut df = ctx.pool.take_empty();
    let mut dt = ctx.pool.take_empty();
    let vocab = ctx.vocab;
    match metric {
        LenMetric::Chars => {
            let current = ctx.value.chars().count() as i64;
            for (i, &dl) in ctx.cache.char_lens(vocab).iter().enumerate() {
                let id = TokenId(i as u32);
                if vocab.is_special(id) {
                    continue;
                }
                classify_len(current + dl as i64, op, bound, id, &mut df, &mut dt);
            }
        }
        LenMetric::Words => {
            let current = ctx.value.split_whitespace().count() as i64;
            let ends_nonws = ctx.value.chars().last().is_some_and(|c| !c.is_whitespace());
            for (i, &(count_t, starts_nonws)) in ctx.cache.word_stats(vocab).iter().enumerate() {
                let id = TokenId(i as u32);
                if vocab.is_special(id) {
                    continue;
                }
                // words(v·t) = words(v) + words(t) − 1 iff the boundary
                // words merge (both sides non-whitespace and non-empty).
                let merge = ends_nonws && starts_nonws && current > 0 && count_t > 0;
                let new = current + count_t as i64 - i64::from(merge);
                classify_len(new, op, bound, id, &mut df, &mut dt);
            }
        }
    }
    FollowSets {
        definitely_false: df,
        definitely_true: dt,
    }
}

/// For a monotone non-decreasing metric: an upper bound that fails now
/// fails forever (`df`); a lower bound that holds now holds forever
/// (`dt`).
fn classify_len(
    new: i64,
    op: CmpOp,
    bound: i64,
    id: lmql_tokenizer::TokenId,
    df: &mut TokenSet,
    dt: &mut TokenSet,
) {
    match op {
        CmpOp::Lt if new >= bound => df.insert(id),
        CmpOp::Le if new > bound => df.insert(id),
        CmpOp::Gt if new > bound => dt.insert(id),
        CmpOp::Ge if new >= bound => dt.insert(id),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmql_syntax::parse_expr;
    use lmql_tokenizer::Vocabulary;

    fn setup(tokens: &[&str]) -> (Vocabulary, TokenTrie) {
        let vocab = Vocabulary::from_tokens(tokens.iter().copied());
        let trie = TokenTrie::new(&vocab);
        (vocab, trie)
    }

    fn sets(expr: &str, tokens: &[&str], var: &str, value: &str) -> (Vec<String>, Vec<String>) {
        let (vocab, trie) = setup(tokens);
        let e = parse_expr(expr).unwrap();
        let scope = HashMap::new();
        let mut cache = ScanCache::default();
        let mut pool = SetPool::new(vocab.len());
        let mut ctx = FollowCtx {
            scope: &scope,
            var,
            value,
            vocab: &vocab,
            trie: &trie,
            cache: &mut cache,
            custom: None,
            pool: &mut pool,
            threads: 1,
            parallel_chunks: 0,
        };
        let fs = follow_sets(&e, &mut ctx);
        let name = |s: &TokenSet| -> Vec<String> {
            s.iter()
                .filter(|t| !vocab.is_special(*t))
                .map(|t| vocab.token_str(t).to_owned())
                .collect()
        };
        (name(&fs.definitely_false), name(&fs.definitely_true))
    }

    #[test]
    fn in_list_masks_non_aligned() {
        let (df, _) = sets(
            "X in [\"Tho\", \"Act\"]",
            &["T", "Th", "Tho", "A", "Act", "x", "Thx"],
            "X",
            "",
        );
        // "x" and "Thx" do not align with any option.
        assert!(df.contains(&"x".to_owned()));
        assert!(df.contains(&"Thx".to_owned()));
        assert!(!df.contains(&"Tho".to_owned()));
        assert!(!df.contains(&"T".to_owned()));
    }

    #[test]
    fn needle_completion_is_definitely_true() {
        let (_, dt) = sets("\"ab\" in X", &["a", "b", "ab", "xabx", "zz"], "X", "");
        assert!(dt.contains(&"ab".to_owned()));
        assert!(dt.contains(&"xabx".to_owned()));
        assert!(!dt.contains(&"a".to_owned()));
        // Cross-boundary: value ends with "a", token "b" completes.
        let (_, dt) = sets("\"ab\" in X", &["a", "b", "ab", "zz"], "X", "xa");
        assert!(dt.contains(&"b".to_owned()));
    }

    #[test]
    fn negated_needle_masks_completions() {
        let (df, _) = sets("not \"\\n\" in X", &["a", "\n", "b\nc", "ok"], "X", "text");
        assert!(df.contains(&"\n".to_owned()));
        assert!(df.contains(&"b\nc".to_owned()));
        assert!(!df.contains(&"ok".to_owned()));
    }

    #[test]
    fn int_constraint_allows_digits_only() {
        let (df, _) = sets("int(X)", &["1", "23", "-", "-4", "a", "1a"], "X", "4");
        assert!(df.contains(&"a".to_owned()));
        assert!(df.contains(&"1a".to_owned()));
        assert!(df.contains(&"-".to_owned()), "minus not allowed mid-number");
        assert!(!df.contains(&"23".to_owned()));
    }

    #[test]
    fn equality_aligns_with_remaining() {
        let (df, _) = sets(
            "X == \"Search\"",
            &["S", "Se", "Search", "x", "Searchx"],
            "X",
            "",
        );
        assert!(!df.contains(&"S".to_owned()));
        assert!(!df.contains(&"Search".to_owned()));
        assert!(df.contains(&"x".to_owned()));
        assert!(
            df.contains(&"Searchx".to_owned()),
            "overshoot can never equal the target"
        );
    }

    #[test]
    fn conjunction_unions_false_sets() {
        let (df, _) = sets(
            "X in [\"ab\"] and not \"b\" in X",
            &["a", "b", "ab", "z"],
            "X",
            "",
        );
        // "z" violates membership; "b" and "ab" violate the not-contains.
        assert!(df.contains(&"z".to_owned()));
        assert!(df.contains(&"b".to_owned()));
        assert!(df.contains(&"ab".to_owned()));
        assert!(!df.contains(&"a".to_owned()));
    }

    #[test]
    fn fallback_len_bound_exact() {
        let (df, _) = sets("len(X) <= 2", &["a", "ab", "abc"], "X", "a");
        assert!(!df.contains(&"a".to_owned())); // len 2 ok
        assert!(df.contains(&"ab".to_owned())); // len 3 violates, final
        assert!(df.contains(&"abc".to_owned()));
    }

    #[test]
    fn scope_list_variable_supported() {
        let (vocab, trie) = setup(&["a", "b", "ab", "z"]);
        let e = parse_expr("X in options").unwrap();
        let mut scope = HashMap::new();
        scope.insert(
            "options".to_owned(),
            Value::List(vec!["ab".into(), "b".into()]),
        );
        let mut cache = ScanCache::default();
        let mut pool = SetPool::new(vocab.len());
        let mut ctx = FollowCtx {
            scope: &scope,
            var: "X",
            value: "",
            vocab: &vocab,
            trie: &trie,
            cache: &mut cache,
            custom: None,
            pool: &mut pool,
            threads: 1,
            parallel_chunks: 0,
        };
        let fs = follow_sets(&e, &mut ctx);
        let df: Vec<&str> = fs
            .definitely_false
            .iter()
            .filter(|t| !vocab.is_special(*t))
            .map(|t| vocab.token_str(t))
            .collect();
        assert!(df.contains(&"z"));
        assert!(!df.contains(&"a"));
        assert!(!df.contains(&"ab"));
    }

    /// The parallel vocabulary scan is bit-identical to the sequential
    /// one, including for universes that are not a multiple of 64.
    #[test]
    fn parallel_scan_matches_sequential() {
        let tokens: Vec<String> = (0..331).map(|i| format!("t{i:03}")).collect();
        let vocab = Vocabulary::from_tokens(tokens.iter().map(String::as_str));
        let classify = |c: &str| {
            let digits: u32 = c.chars().filter(|ch| ch.is_ascii_digit()).count() as u32;
            (digits.is_multiple_of(3), c.ends_with('7'))
        };
        let words = vocab.len().div_ceil(64);
        let (mut df_seq, mut dt_seq) = (vec![0u64; words], vec![0u64; words]);
        let chunks = scan_vocab(&vocab, "v:", 1, &mut df_seq, &mut dt_seq, &classify);
        assert_eq!(chunks, 0, "sequential scan reports no parallel chunks");
        for threads in [2, 3, 8] {
            let (mut df, mut dt) = (vec![0u64; words], vec![0u64; words]);
            let chunks = scan_vocab(&vocab, "v:", threads, &mut df, &mut dt, &classify);
            assert!(chunks > 0);
            assert_eq!(df, df_seq, "threads={threads}");
            assert_eq!(dt, dt_seq, "threads={threads}");
        }
    }
}
