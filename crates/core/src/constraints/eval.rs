//! Partial evaluation of `where` clauses with FINAL semantics (Table 1),
//! plus a strict concrete evaluator for support expressions.

use crate::builtins::{call_builtin, call_method, is_int_string};
use crate::constraints::{Fin, FinalValue};
use crate::interp::Externals;
use crate::{Error, Result, Value};
use lmql_syntax::ast::{BinOp, CmpOp, Expr};
use std::collections::HashMap;

/// The evaluation context of one constraint check: the scope `σ`, the
/// currently decoding hole and its candidate value.
#[derive(Debug, Clone, Copy)]
pub struct EvalCtx<'a> {
    /// Variable scope (previous holes and Python variables).
    pub scope: &'a HashMap<String, Value>,
    /// Name of the hole being decoded.
    pub var: &'a str,
    /// Candidate value of the hole (the partial value, possibly extended
    /// by a lookahead token).
    pub value: &'a str,
    /// `true` when evaluating at end-of-sequence: the hole value is
    /// complete, so its annotation is `fin` instead of `inc`.
    pub var_final: bool,
    /// User-defined constraint operators (Appendix A.1), if any.
    pub custom: Option<&'a crate::constraints::CustomOps>,
}

/// Evaluates `expr` under FINAL semantics.
///
/// Never fails validation spuriously: value-level errors on partial data
/// (e.g. an index that is not populated yet) degrade to *undetermined*
/// rather than propagating, which is sound (it only loses pruning power).
pub fn eval_final(expr: &Expr, ctx: &EvalCtx<'_>) -> FinalValue {
    match expr {
        Expr::Str { value, .. } => FinalValue::fin(Value::Str(value.clone())),
        Expr::Int { value, .. } => FinalValue::fin(Value::Int(*value)),
        Expr::Float { value, .. } => FinalValue::fin(Value::Float(*value)),
        Expr::Bool { value, .. } => FinalValue::fin(Value::Bool(*value)),
        Expr::None { .. } => FinalValue::fin(Value::None),
        Expr::Name { name, .. } => {
            if name == ctx.var {
                let v = Value::Str(ctx.value.to_owned());
                if ctx.var_final {
                    FinalValue::fin(v)
                } else {
                    FinalValue::inc(v)
                }
            } else if let Some(v) = ctx.scope.get(name) {
                // Within one decoding step, previous holes and Python
                // variables are fixed (Table 1: previous hole → fin).
                FinalValue::fin(v.clone())
            } else {
                // Future hole (Table 1: future hole → undetermined).
                FinalValue::undetermined()
            }
        }
        Expr::List { items, .. } => {
            let mut vals = Vec::with_capacity(items.len());
            let mut fin = Fin::Fin;
            for item in items {
                let fv = eval_final(item, ctx);
                let Some(v) = fv.value else {
                    return FinalValue::undetermined();
                };
                if !fv.fin.is_final() {
                    fin = Fin::Var;
                }
                vals.push(v);
            }
            FinalValue {
                value: Some(Value::List(vals)),
                fin,
            }
        }
        Expr::Call { func, args, span } => match func.as_ref() {
            Expr::Name { name, .. } => eval_builtin_final(name, args, ctx, *span),
            Expr::Attribute { obj, name, .. } => {
                let o = eval_final(obj, ctx);
                let mut argv = Vec::with_capacity(args.len());
                let mut fin = o.fin;
                for a in args {
                    let fv = eval_final(a, ctx);
                    if !fv.fin.is_final() {
                        fin = Fin::Var;
                    }
                    let Some(v) = fv.value else {
                        return FinalValue::undetermined();
                    };
                    argv.push(v);
                }
                let Some(ov) = o.value else {
                    return FinalValue::undetermined();
                };
                if !o.fin.is_final() {
                    fin = Fin::Var;
                }
                match call_method(&ov, name, &argv, *span) {
                    Ok(v) => FinalValue {
                        value: Some(v),
                        fin,
                    },
                    Err(_) => FinalValue::undetermined(),
                }
            }
            _ => FinalValue::undetermined(),
        },
        Expr::Attribute { .. } => FinalValue::undetermined(),
        Expr::Index { obj, index, span } => {
            let (o, i) = (eval_final(obj, ctx), eval_final(index, ctx));
            match (o.value, i.value) {
                (Some(ov), Some(iv)) => match crate::interp::compare_free_index(&ov, &iv, *span) {
                    Ok(v) => FinalValue {
                        value: Some(v),
                        fin: weakest(o.fin, i.fin),
                    },
                    Err(_) => FinalValue::undetermined(),
                },
                _ => FinalValue::undetermined(),
            }
        }
        Expr::Slice { obj, lo, hi, span } => {
            let o = eval_final(obj, ctx);
            let lo_v = match lo {
                None => None,
                Some(e) => match eval_final(e, ctx).value {
                    Some(v) => Some(v),
                    None => return FinalValue::undetermined(),
                },
            };
            let hi_v = match hi {
                None => None,
                Some(e) => match eval_final(e, ctx).value {
                    Some(v) => Some(v),
                    None => return FinalValue::undetermined(),
                },
            };
            match o.value {
                Some(ov) => match crate::interp::slice_free(&ov, lo_v, hi_v, *span) {
                    Ok(v) => FinalValue {
                        value: Some(v),
                        fin: if o.fin.is_final() { Fin::Fin } else { Fin::Var },
                    },
                    Err(_) => FinalValue::undetermined(),
                },
                None => FinalValue::undetermined(),
            }
        }
        Expr::BinOp {
            op,
            left,
            right,
            span,
        } => {
            let (l, r) = (eval_final(left, ctx), eval_final(right, ctx));
            match (&l.value, &r.value) {
                (Some(lv), Some(rv)) => match crate::interp::binop_values(*op, lv, rv, *span) {
                    Ok(v) => FinalValue {
                        value: Some(v),
                        fin: binop_fin(*op, l.fin, r.fin),
                    },
                    Err(_) => FinalValue::undetermined(),
                },
                _ => FinalValue::undetermined(),
            }
        }
        Expr::Compare {
            op,
            left,
            right,
            span,
        } => {
            let (l, r) = (eval_final(left, ctx), eval_final(right, ctx));
            compare_final(*op, &l, &r, *span)
        }
        Expr::BoolOp { and, operands, .. } => {
            let vals: Vec<FinalValue> = operands.iter().map(|o| eval_final(o, ctx)).collect();
            bool_fold_final(*and, &vals)
        }
        Expr::Not { operand, .. } => {
            let v = eval_final(operand, ctx);
            match v.truthy() {
                Some(b) => FinalValue {
                    value: Some(Value::Bool(!b)),
                    fin: if v.fin.is_final() { Fin::Fin } else { Fin::Var },
                },
                None => FinalValue::undetermined(),
            }
        }
        Expr::Neg { operand, .. } => {
            let v = eval_final(operand, ctx);
            let negated = match &v.value {
                Some(Value::Int(i)) => Some(Value::Int(-i)),
                Some(Value::Float(f)) => Some(Value::Float(-f)),
                _ => None,
            };
            match negated {
                Some(n) => FinalValue {
                    value: Some(n),
                    // Negation flips monotonicity.
                    fin: match v.fin {
                        Fin::Inc => Fin::Dec,
                        Fin::Dec => Fin::Inc,
                        other => other,
                    },
                },
                None => FinalValue::undetermined(),
            }
        }
    }
}

/// FINAL rules for the built-in functions (Table 1, left column).
fn eval_builtin_final(
    name: &str,
    args: &[Expr],
    ctx: &EvalCtx<'_>,
    span: lmql_syntax::Span,
) -> FinalValue {
    match name {
        // Table 1: words/sentences/len propagate the argument's annotation
        // (appending to a string can only add words/sentences/length).
        "words" | "sentences" | "characters" | "len" => {
            let a = eval_final(&args[0], ctx);
            let Some(av) = a.value else {
                return FinalValue::undetermined();
            };
            match call_builtin(name, &[av], span) {
                Ok(v) => FinalValue {
                    value: Some(v),
                    fin: a.fin,
                },
                Err(_) => FinalValue::undetermined(),
            }
        }
        // `int(VAR)` as a constraint: "the value parses as an integer".
        // While the value grows: a malformed prefix can never be repaired
        // by appending, so non-prefix-of-integer is FIN(⊥).
        "int" => {
            let a = eval_final(&args[0], ctx);
            let Some(av) = a.value else {
                return FinalValue::undetermined();
            };
            let Some(s) = av.as_str() else {
                // Numeric arguments are trivially integers.
                return FinalValue::fin(Value::Bool(matches!(av, Value::Int(_) | Value::Float(_))));
            };
            let ok = is_int_string(s);
            if a.fin.is_final() {
                FinalValue::fin(Value::Bool(ok))
            } else if ok {
                // Currently an integer; appending a digit keeps it one,
                // appending junk breaks it: not final.
                FinalValue::var(Value::Bool(true))
            } else if is_int_prefix(s) {
                FinalValue::var(Value::Bool(false))
            } else {
                FinalValue::fin(Value::Bool(false))
            }
        }
        // Stopping conditions never fail validation; the decoder gives
        // them their operational meaning (§3.1).
        "stops_at" => FinalValue::var(Value::Bool(true)),
        _ => {
            // Custom operators (Appendix A.1) take precedence over the
            // generic builtin path.
            if let Some(op) = ctx.custom.and_then(|c| c.get(name)) {
                let finals: Vec<FinalValue> = args.iter().map(|a| eval_final(a, ctx)).collect();
                let mut argv = Vec::with_capacity(finals.len());
                for fv in &finals {
                    let Some(v) = &fv.value else {
                        return FinalValue::undetermined();
                    };
                    argv.push(v.clone());
                }
                let op_ctx = crate::constraints::OpCtx {
                    var: ctx.var,
                    value: ctx.value,
                    var_final: ctx.var_final,
                };
                return match op.forward(&argv, &op_ctx) {
                    Ok(result) => {
                        let fin = if ctx.var_final {
                            Fin::Fin
                        } else {
                            op.final_hint(&finals, &result, &op_ctx)
                        };
                        FinalValue {
                            value: Some(result),
                            fin,
                        }
                    }
                    Err(_) => FinalValue::undetermined(),
                };
            }
            // Other builtins (str, range) evaluate concretely.
            let mut argv = Vec::with_capacity(args.len());
            let mut fin = Fin::Fin;
            for a in args {
                let fv = eval_final(a, ctx);
                if !fv.fin.is_final() {
                    fin = Fin::Var;
                }
                let Some(v) = fv.value else {
                    return FinalValue::undetermined();
                };
                argv.push(v);
            }
            match call_builtin(name, &argv, span) {
                Ok(v) => FinalValue {
                    value: Some(v),
                    fin,
                },
                Err(_) => FinalValue::undetermined(),
            }
        }
    }
}

/// `true` if `s` could still become an integer by appending characters
/// (a prefix of `-?[0-9]+`).
fn is_int_prefix(s: &str) -> bool {
    let digits = s.strip_prefix('-').unwrap_or(s);
    digits.chars().all(|c| c.is_ascii_digit())
}

fn weakest(a: Fin, b: Fin) -> Fin {
    if a.is_final() && b.is_final() {
        Fin::Fin
    } else {
        Fin::Var
    }
}

/// Monotonicity of arithmetic (Table 1 number rules, conservatively).
fn binop_fin(op: BinOp, l: Fin, r: Fin) -> Fin {
    match op {
        BinOp::Add => {
            if l.is_final() && r.is_final() {
                Fin::Fin
            } else if l.is_nondecreasing() && r.is_nondecreasing() {
                Fin::Inc
            } else if l.is_nonincreasing() && r.is_nonincreasing() {
                Fin::Dec
            } else {
                Fin::Var
            }
        }
        BinOp::Sub => {
            if l.is_final() && r.is_final() {
                Fin::Fin
            } else if l.is_nondecreasing() && r.is_nonincreasing() {
                Fin::Inc
            } else if l.is_nonincreasing() && r.is_nondecreasing() {
                Fin::Dec
            } else {
                Fin::Var
            }
        }
        _ => {
            if l.is_final() && r.is_final() {
                Fin::Fin
            } else {
                Fin::Var
            }
        }
    }
}

/// FINAL rules for comparisons (Table 1, right column).
fn compare_final(op: CmpOp, l: &FinalValue, r: &FinalValue, span: lmql_syntax::Span) -> FinalValue {
    let (Some(lv), Some(rv)) = (&l.value, &r.value) else {
        return FinalValue::undetermined();
    };
    let Ok(b) = crate::interp::compare_values(op, lv, rv, span) else {
        return FinalValue::undetermined();
    };
    let fin = match op {
        // x < y is FIN(⊤) when the gap can only widen, FIN(⊥) when the
        // violation can only widen.
        CmpOp::Lt | CmpOp::Le => {
            let holds_forever = b && l.fin.is_nonincreasing() && r.fin.is_nondecreasing();
            let fails_forever = !b && l.fin.is_nondecreasing() && r.fin.is_nonincreasing();
            if holds_forever || fails_forever {
                Fin::Fin
            } else {
                Fin::Var
            }
        }
        CmpOp::Gt | CmpOp::Ge => {
            let holds_forever = b && l.fin.is_nondecreasing() && r.fin.is_nonincreasing();
            let fails_forever = !b && l.fin.is_nonincreasing() && r.fin.is_nondecreasing();
            if holds_forever || fails_forever {
                Fin::Fin
            } else {
                Fin::Var
            }
        }
        CmpOp::Eq | CmpOp::Ne => {
            let eq_fin = match (lv, rv) {
                // String equality against an append-only string: once the
                // growing side stops being a prefix of the fixed side, it
                // can never become equal again.
                (Value::Str(a), Value::Str(bstr)) => {
                    if l.fin.is_final() && r.fin.is_final() {
                        Fin::Fin
                    } else if l.fin == Fin::Inc && r.fin.is_final() {
                        if bstr.starts_with(a.as_str()) {
                            Fin::Var
                        } else {
                            Fin::Fin // already diverged: never equal
                        }
                    } else if r.fin == Fin::Inc && l.fin.is_final() {
                        if a.starts_with(bstr.as_str()) {
                            Fin::Var
                        } else {
                            Fin::Fin
                        }
                    } else {
                        Fin::Var
                    }
                }
                _ => {
                    if l.fin.is_final() && r.fin.is_final() {
                        Fin::Fin
                    } else {
                        Fin::Var
                    }
                }
            };
            // A FIN verdict on equality is only usable when it cannot be
            // overturned: "equal now but still growing" stays VAR (handled
            // by `starts_with` above returning Var).
            eq_fin
        }
        // Negation preserves finality, so `in` and `not in` share rules.
        // Negation preserves finality, so `in` and `not in` share rules —
        // but `in_fin` reasons about *containment*, so `not in` must pass
        // the un-negated boolean.
        CmpOp::In | CmpOp::NotIn => {
            let contains = if op == CmpOp::NotIn { !b } else { b };
            in_fin(l, r, contains)
        }
    };
    FinalValue {
        value: Some(Value::Bool(b)),
        fin,
    }
}

/// FINAL annotation for `x in s` / `x in l` (Table 1 membership rules),
/// given the current boolean outcome `b` of `x in r`.
fn in_fin(l: &FinalValue, r: &FinalValue, b: bool) -> Fin {
    let (Some(lv), Some(rv)) = (&l.value, &r.value) else {
        return Fin::Var;
    };
    match (lv, rv) {
        // needle in haystack-string
        (Value::Str(needle), Value::Str(_hay)) => {
            if l.fin.is_final() && r.fin == Fin::Inc {
                // Fixed needle, growing haystack: containment persists.
                if b {
                    Fin::Fin
                } else {
                    Fin::Var
                }
            } else if l.fin == Fin::Inc && r.fin.is_final() {
                // Growing needle, fixed haystack: once not contained it
                // can never be contained again (appending only lengthens).
                if b {
                    Fin::Var
                } else {
                    Fin::Fin
                }
            } else if l.fin.is_final() && r.fin.is_final() {
                Fin::Fin
            } else {
                let _ = needle;
                Fin::Var
            }
        }
        // element in list
        (x, Value::List(items)) => {
            if l.fin.is_final() && r.fin.is_final() {
                Fin::Fin
            } else if l.fin == Fin::Inc && r.fin.is_final() {
                // Growing string vs fixed option list (Table 1's `e in l`):
                // FIN(⊥) once no option starts with the current value.
                if let Some(s) = x.as_str() {
                    let any_extension = items
                        .iter()
                        .any(|e| e.as_str().is_some_and(|es| es.starts_with(s)));
                    if b || any_extension {
                        Fin::Var
                    } else {
                        Fin::Fin
                    }
                } else {
                    Fin::Var
                }
            } else if l.fin.is_final() && r.fin == Fin::Inc {
                // Fixed element, growing list: membership persists.
                if b {
                    Fin::Fin
                } else {
                    Fin::Var
                }
            } else {
                Fin::Var
            }
        }
        _ => Fin::Var,
    }
}

/// FINAL rules for `and`/`or` (Table 1 bottom-right): definitive
/// short-circuiting over partial results.
fn bool_fold_final(and: bool, vals: &[FinalValue]) -> FinalValue {
    if and {
        if vals.iter().any(FinalValue::is_definitely_false) {
            return FinalValue::fin(Value::Bool(false));
        }
        if vals.iter().all(FinalValue::is_definitely_true) {
            return FinalValue::fin(Value::Bool(true));
        }
        // Value level: unknowns are tolerated (treated as not-yet-failing).
        let any_false = vals.iter().any(|v| v.truthy() == Some(false));
        FinalValue::var(Value::Bool(!any_false))
    } else {
        if vals.iter().any(FinalValue::is_definitely_true) {
            return FinalValue::fin(Value::Bool(true));
        }
        if vals.iter().all(FinalValue::is_definitely_false) {
            return FinalValue::fin(Value::Bool(false));
        }
        let any_true = vals.iter().any(|v| v.truthy() == Some(true));
        FinalValue::var(Value::Bool(any_true))
    }
}

/// Strict concrete evaluation of an expression against a scope (no hole in
/// flight) — used for `distribute` support expressions and by tests.
///
/// # Errors
///
/// Unlike [`eval_final`], errors propagate.
pub fn eval_expr(
    expr: &Expr,
    scope: &HashMap<String, Value>,
    externals: &Externals,
) -> Result<Value> {
    // Reuse the VM: compile the expression into a tiny program would be
    // overkill; instead evaluate recursively with strict semantics.
    match expr {
        Expr::Str { value, .. } => Ok(Value::Str(value.clone())),
        Expr::Int { value, .. } => Ok(Value::Int(*value)),
        Expr::Float { value, .. } => Ok(Value::Float(*value)),
        Expr::Bool { value, .. } => Ok(Value::Bool(*value)),
        Expr::None { .. } => Ok(Value::None),
        Expr::Name { name, span } => scope
            .get(name)
            .cloned()
            .ok_or_else(|| Error::eval(format!("undefined variable `{name}`"), *span)),
        Expr::List { items, .. } => Ok(Value::List(
            items
                .iter()
                .map(|i| eval_expr(i, scope, externals))
                .collect::<Result<_>>()?,
        )),
        Expr::Call { func, args, span } => {
            let argv: Vec<Value> = args
                .iter()
                .map(|a| eval_expr(a, scope, externals))
                .collect::<Result<_>>()?;
            match func.as_ref() {
                Expr::Name { name, .. } => call_builtin(name, &argv, *span),
                Expr::Attribute { obj, name, .. } => {
                    if let Expr::Name { name: module, .. } = obj.as_ref() {
                        if scope.get(module).is_none() {
                            // Try an external module call first.
                            if let Ok(v) = externals_call(externals, module, name, &argv) {
                                return Ok(v);
                            }
                        }
                    }
                    let o = eval_expr(obj, scope, externals)?;
                    call_method(&o, name, &argv, *span)
                }
                other => Err(Error::eval("invalid call target", other.span())),
            }
        }
        Expr::Attribute { span, .. } => Err(Error::eval("attribute access outside a call", *span)),
        Expr::Index { obj, index, span } => {
            let o = eval_expr(obj, scope, externals)?;
            let i = eval_expr(index, scope, externals)?;
            crate::interp::compare_free_index(&o, &i, *span)
        }
        Expr::Slice { obj, lo, hi, span } => {
            let o = eval_expr(obj, scope, externals)?;
            let lo = lo
                .as_ref()
                .map(|e| eval_expr(e, scope, externals))
                .transpose()?;
            let hi = hi
                .as_ref()
                .map(|e| eval_expr(e, scope, externals))
                .transpose()?;
            crate::interp::slice_free(&o, lo, hi, *span)
        }
        Expr::BinOp {
            op,
            left,
            right,
            span,
        } => {
            let l = eval_expr(left, scope, externals)?;
            let r = eval_expr(right, scope, externals)?;
            crate::interp::binop_values(*op, &l, &r, *span)
        }
        Expr::Compare {
            op,
            left,
            right,
            span,
        } => {
            let l = eval_expr(left, scope, externals)?;
            let r = eval_expr(right, scope, externals)?;
            Ok(Value::Bool(crate::interp::compare_values(
                *op, &l, &r, *span,
            )?))
        }
        Expr::BoolOp { and, operands, .. } => {
            let mut last = Value::Bool(*and);
            for o in operands {
                last = eval_expr(o, scope, externals)?;
                let decided = if *and { !last.truthy() } else { last.truthy() };
                if decided {
                    return Ok(last);
                }
            }
            Ok(last)
        }
        Expr::Not { operand, .. } => {
            Ok(Value::Bool(!eval_expr(operand, scope, externals)?.truthy()))
        }
        Expr::Neg { operand, span } => match eval_expr(operand, scope, externals)? {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(Error::eval(
                format!("cannot negate {}", other.type_name()),
                *span,
            )),
        },
    }
}

fn externals_call(
    externals: &Externals,
    module: &str,
    func: &str,
    args: &[Value],
) -> Result<Value> {
    externals.call_public(module, func, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmql_syntax::parse_expr;

    fn ctx<'a>(
        scope: &'a HashMap<String, Value>,
        var: &'a str,
        value: &'a str,
        var_final: bool,
    ) -> EvalCtx<'a> {
        EvalCtx {
            scope,
            var,
            value,
            var_final,
            custom: None,
        }
    }

    fn eval(src: &str, var: &str, value: &str, var_final: bool) -> FinalValue {
        let e = parse_expr(src).unwrap();
        let scope = HashMap::new();
        eval_final(&e, &ctx(&scope, var, value, var_final))
    }

    #[test]
    fn len_upper_bound_goes_fin_false() {
        // len(X) < 3 with X = "abcd": violated and len only grows.
        let fv = eval("len(X) < 3", "X", "abcd", false);
        assert!(fv.is_definitely_false());
        // Still satisfiable while short.
        let fv = eval("len(X) < 3", "X", "ab", false);
        assert_eq!(fv.truthy(), Some(true));
        assert!(!fv.fin.is_final());
    }

    #[test]
    fn len_lower_bound_goes_fin_true() {
        let fv = eval("len(X) > 2", "X", "abcd", false);
        assert!(fv.is_definitely_true());
        let fv = eval("len(X) > 2", "X", "a", false);
        assert_eq!(fv.truthy(), Some(false));
        assert!(!fv.fin.is_final());
    }

    #[test]
    fn words_count_propagates_inc() {
        let fv = eval("len(words(X)) < 3", "X", "one two three four", false);
        assert!(fv.is_definitely_false());
    }

    #[test]
    fn substring_presence_is_sticky() {
        // "q" in X: once present in a growing string, present forever.
        let fv = eval("\"q\" in X", "X", "a q b", false);
        assert!(fv.is_definitely_true());
        // not "q" in X is then FIN(⊥).
        let fv = eval("not \"q\" in X", "X", "a q b", false);
        assert!(fv.is_definitely_false());
        // Absence is not final while growing.
        let fv = eval("\"q\" in X", "X", "ab", false);
        assert_eq!(fv.truthy(), Some(false));
        assert!(!fv.fin.is_final());
    }

    #[test]
    fn list_membership_prunes_on_divergence() {
        let fv = eval("X in [\"Tho\", \"Act\"]", "X", "Th", false);
        assert_eq!(fv.truthy(), Some(false));
        assert!(!fv.fin.is_final(), "still extendable to Tho");
        let fv = eval("X in [\"Tho\", \"Act\"]", "X", "Thx", false);
        assert!(fv.is_definitely_false());
        // Exact match while still growing: true but not final.
        let fv = eval("X in [\"Tho\", \"Act\"]", "X", "Tho", false);
        assert_eq!(fv.truthy(), Some(true));
        assert!(!fv.fin.is_final());
        // At EOS it becomes final.
        let fv = eval("X in [\"Tho\", \"Act\"]", "X", "Tho", true);
        assert!(fv.is_definitely_true());
    }

    #[test]
    fn string_equality_diverges_finally() {
        let fv = eval("X == \"Search\"", "X", "Sea", false);
        assert_eq!(fv.truthy(), Some(false));
        assert!(!fv.fin.is_final());
        let fv = eval("X == \"Search\"", "X", "Sez", false);
        assert!(fv.is_definitely_false());
    }

    #[test]
    fn int_constraint_finality() {
        assert!(!eval("int(X)", "X", "12", false).is_definitely_false());
        assert!(eval("int(X)", "X", "1a", false).is_definitely_false());
        assert!(eval("int(X)", "X", "42", true).is_definitely_true());
        assert!(eval("int(X)", "X", "", true).is_definitely_false());
    }

    #[test]
    fn not_in_operator_finality() {
        // Containment in a growing string is sticky, so once the needle
        // appears, `not in` is definitively false…
        let fv = eval("\"q\" not in X", "X", "a q b", false);
        assert!(fv.is_definitely_false());
        // …but absence is NOT final while the value can still grow.
        let fv = eval("\"q\" not in X", "X", "ab", false);
        assert_eq!(fv.truthy(), Some(true));
        assert!(!fv.fin.is_final(), "premature FIN(true) would be unsound");
    }

    #[test]
    fn conjunction_short_circuits() {
        let fv = eval("len(X) < 2 and \"zz\" in X", "X", "abc", false);
        assert!(fv.is_definitely_false());
    }

    #[test]
    fn disjunction_short_circuits() {
        let fv = eval("len(X) > 1 or \"zz\" in X", "X", "abc", false);
        assert!(fv.is_definitely_true());
    }

    #[test]
    fn future_holes_are_undetermined() {
        let fv = eval("len(FUTURE) < 3", "X", "a", false);
        assert!(fv.is_undetermined());
        // …and conjunction with a definitive false still decides.
        let fv = eval("len(FUTURE) < 3 and len(X) < 1", "X", "ab", false);
        assert!(fv.is_definitely_false());
    }

    #[test]
    fn stops_at_never_fails_validation() {
        let fv = eval("stops_at(X, \".\")", "X", "anything", false);
        assert_eq!(fv.truthy(), Some(true));
        assert!(!fv.fin.is_final());
    }

    #[test]
    fn previous_holes_are_fixed() {
        let mut scope = HashMap::new();
        scope.insert("PREV".to_owned(), Value::Str("done".into()));
        let e = parse_expr("PREV == \"done\"").unwrap();
        let fv = eval_final(&e, &ctx(&scope, "X", "", false));
        assert!(fv.is_definitely_true());
    }

    #[test]
    fn eval_expr_strict() {
        let mut scope = HashMap::new();
        scope.insert("OPTIONS".to_owned(), Value::Str("a, b, c".into()));
        let e = parse_expr("OPTIONS.split(\", \")").unwrap();
        let v = eval_expr(&e, &scope, &Externals::new()).unwrap();
        assert_eq!(v, Value::List(vec!["a".into(), "b".into(), "c".into()]));
        let e = parse_expr("missing_var").unwrap();
        assert!(eval_expr(&e, &scope, &Externals::new()).is_err());
    }
}
