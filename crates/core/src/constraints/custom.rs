//! User-defined constraint operators (the paper's Appendix A.1):
//! "Users can easily extend LMQL with custom operators, by implementing a
//! simple class interface with forward, final and follow functions."
//!
//! A [`CustomOp`] participates in all three evaluation levels:
//!
//! - **forward** — concrete value-level evaluation,
//! - **final** — the FINAL annotation of the result (Table 1 style),
//! - **follow** — an optional token-set fast path for mask generation;
//!   when absent, the engines fall back to sound per-token evaluation of
//!   the operator (no pruning is lost, only speed).

use crate::constraints::{Fin, FinalValue};
use crate::Value;
use lmql_tokenizer::{TokenSet, TokenTrie, Vocabulary};
use std::collections::HashMap;
use std::sync::Arc;

/// The decoding situation a custom operator is evaluated in.
#[derive(Debug, Clone, Copy)]
pub struct OpCtx<'a> {
    /// Name of the hole currently being decoded.
    pub var: &'a str,
    /// The hole's (candidate) value.
    pub value: &'a str,
    /// `true` when the value is complete (EOS admissibility check).
    pub var_final: bool,
}

/// What a custom operator's FOLLOW fast path can see.
pub struct FollowView<'a> {
    /// The current (partial) value of the hole the operator constrains.
    pub value: &'a str,
    /// The model vocabulary.
    pub vocab: &'a Vocabulary,
    /// Prefix trie over the vocabulary.
    pub trie: &'a TokenTrie,
}

impl std::fmt::Debug for FollowView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FollowView")
            .field("value", &self.value)
            .finish_non_exhaustive()
    }
}

/// A user-defined constraint operator, callable from `where` clauses as
/// `name(args…)`.
///
/// # Example
///
/// ```
/// use lmql::constraints::{CustomOp, Fin, FinalValue, OpCtx};
/// use lmql::Value;
///
/// /// `uppercase(VAR)`: the value must be entirely uppercase.
/// struct Uppercase;
///
/// impl CustomOp for Uppercase {
///     fn forward(&self, args: &[Value], _ctx: &OpCtx<'_>) -> Result<Value, String> {
///         let s = args[0].as_str().ok_or("uppercase() expects a string")?;
///         Ok(Value::Bool(!s.chars().any(|c| c.is_lowercase())))
///     }
///
///     fn final_hint(&self, args: &[FinalValue], result: &Value, _ctx: &OpCtx<'_>) -> Fin {
///         // A lowercase character can never be removed from an
///         // append-only string: a violation is final.
///         match (args[0].fin, result) {
///             (Fin::Inc, Value::Bool(false)) => Fin::Fin,
///             (Fin::Fin, _) => Fin::Fin,
///             _ => Fin::Var,
///         }
///     }
/// }
/// ```
pub trait CustomOp: Send + Sync {
    /// Concrete evaluation with fully known arguments.
    ///
    /// # Errors
    ///
    /// During partial evaluation, errors degrade to *undetermined*
    /// (tolerated); in strict contexts they surface to the caller.
    fn forward(&self, args: &[Value], ctx: &OpCtx<'_>) -> Result<Value, String>;

    /// The FINAL annotation of `result` given the arguments' annotations.
    /// The default, `var`, is always sound (the value may still change),
    /// it just enables no pruning.
    fn final_hint(&self, args: &[FinalValue], result: &Value, ctx: &OpCtx<'_>) -> Fin {
        let _ = (args, result, ctx);
        Fin::Var
    }

    /// Optional FOLLOW fast path for calls of the shape
    /// `name(CURRENT_VAR)`: the set of next tokens that keep the
    /// constraint satisfiable. Return `None` (the default) to fall back
    /// to per-token FINAL evaluation.
    fn follow_allowed(&self, view: &FollowView<'_>) -> Option<TokenSet> {
        let _ = view;
        None
    }
}

/// A registry of custom operators, shared by a runtime and its maskers.
#[derive(Clone, Default)]
pub struct CustomOps {
    ops: HashMap<String, Arc<dyn CustomOp>>,
    /// Mask-memo tag: `0` for every empty registry (all empty registries
    /// are interchangeable), a process-unique value after any `register`.
    /// Clones keep the tag — two registries with equal generations hold
    /// identical operators, so memoized masks can be shared across them.
    generation: u64,
}

impl std::fmt::Debug for CustomOps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.ops.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("CustomOps").field("ops", &names).finish()
    }
}

impl CustomOps {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an operator under `name`.
    ///
    /// # Panics
    ///
    /// Panics if the name collides with a built-in function.
    pub fn register(&mut self, name: &str, op: Arc<dyn CustomOp>) {
        assert!(
            !crate::builtins::BUILTIN_FUNCTIONS.contains(&name),
            "`{name}` is a built-in function and cannot be overridden"
        );
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        self.generation = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.ops.insert(name.to_owned(), op);
    }

    /// The registry's mask-memo generation tag (see the field docs).
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// Looks up an operator.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn CustomOp>> {
        self.ops.get(name)
    }

    /// `true` if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.ops.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysTrue;
    impl CustomOp for AlwaysTrue {
        fn forward(&self, _args: &[Value], _ctx: &OpCtx<'_>) -> Result<Value, String> {
            Ok(Value::Bool(true))
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut ops = CustomOps::new();
        ops.register("always", Arc::new(AlwaysTrue));
        assert!(ops.contains("always"));
        assert!(!ops.contains("never"));
    }

    #[test]
    #[should_panic(expected = "built-in function")]
    fn builtin_collision_panics() {
        let mut ops = CustomOps::new();
        ops.register("words", Arc::new(AlwaysTrue));
    }
}
