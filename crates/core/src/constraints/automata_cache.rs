//! Cross-query cache of compiled constraint automata.
//!
//! Compilation (see the `lmql-automata` crate) is cheap but not free,
//! and — more importantly — the per-state mask store inside each
//! [`Automaton`] is the thing worth sharing: every state discovered by
//! one run warms all later runs of the same `(engine, vocabulary,
//! custom-op generation, expression, referenced scope values, hole)`
//! combination. The engine installs one [`AutomataCache`] into every
//! worker runtime, mirroring how [`MaskMemo`](super::MaskMemo) is
//! shared; a standalone [`Runtime`](crate::Runtime) lazily creates a
//! private one.
//!
//! Clauses that do not compile are cached too (as `None`), so the
//! fallback path pays the rejection walk once per clause, not once per
//! decode step.

use crate::constraints::memo::fingerprint_expr;
use crate::Value;
use lmql_automata::{Automaton, ScopeResolver};
use lmql_syntax::ast::Expr;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Identity of a compiled automaton: everything its transition structure
/// and per-state masks are a pure function of. Fully `Copy`, so the
/// per-step lookup allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct AutomatonKey {
    /// Engine discriminant — per-state masks are engine-computed, and
    /// Exact/Symbolic masks legitimately differ.
    pub engine: u8,
    /// Identity of the vocabulary object masked over.
    pub vocab: (usize, usize),
    /// Custom-operator registry generation: registering an op can turn a
    /// previously compilable clause into a rejected one.
    pub ops: u64,
    /// Structural hash of the `where` expression, spans ignored.
    pub expr: u64,
    /// Hash of the referenced scope variables' values.
    pub scope: u64,
    /// Hash of the hole variable name.
    pub var: u64,
}

impl AutomatonKey {
    pub(crate) fn new(
        engine: crate::constraints::MaskEngine,
        vocab: (usize, usize),
        ops_generation: u64,
        expr: &Expr,
        scope: &HashMap<String, Value>,
        var: &str,
    ) -> Self {
        let (expr_hash, scope_hash) = fingerprint_expr(expr, scope, var);
        let mut vh = DefaultHasher::new();
        var.hash(&mut vh);
        AutomatonKey {
            engine: match engine {
                crate::constraints::MaskEngine::Exact => 0,
                crate::constraints::MaskEngine::Symbolic => 1,
            },
            vocab,
            ops: ops_generation,
            expr: expr_hash,
            scope: scope_hash,
            var: vh.finish(),
        }
    }
}

/// Shareable cache of compiled automata (and of compile rejections).
#[derive(Default)]
pub struct AutomataCache {
    inner: Mutex<HashMap<AutomatonKey, Option<Arc<Automaton>>>>,
}

impl AutomataCache {
    /// An empty cache, ready to share across runtimes via `Arc`.
    pub fn new() -> Arc<Self> {
        Arc::new(AutomataCache::default())
    }

    /// Number of cached entries (compiled and rejected clauses both).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("automata cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key`, compiling via `build` on first sight. `None`
    /// means the clause is known not to compile. Compilation runs under
    /// the lock: it is microseconds, and holding the lock means
    /// concurrent runtimes never duplicate work.
    pub(crate) fn get_or_compile(
        &self,
        key: AutomatonKey,
        build: impl FnOnce() -> Option<Automaton>,
    ) -> Option<Arc<Automaton>> {
        let mut inner = self.inner.lock().expect("automata cache poisoned");
        inner
            .entry(key)
            .or_insert_with(|| build().map(Arc::new))
            .clone()
    }
}

impl std::fmt::Debug for AutomataCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AutomataCache")
            .field("entries", &self.len())
            .finish()
    }
}

/// [`ScopeResolver`] over the runtime scope: previous holes and
/// bindings are fixed while the current hole decodes, so their values
/// are compile-time constants for the automaton.
pub(crate) struct ScopeValues<'a>(pub &'a HashMap<String, Value>);

impl ScopeResolver for ScopeValues<'_> {
    fn str_list(&self, name: &str) -> Option<Vec<String>> {
        match self.0.get(name)? {
            Value::List(items) => items
                .iter()
                .map(|v| v.as_str().map(str::to_owned))
                .collect(),
            _ => None,
        }
    }
}
