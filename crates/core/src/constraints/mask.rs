//! Decoding-mask generation: Alg. 2's `compute_mask`.
//!
//! Two engines produce the mask:
//!
//! - [`MaskEngine::Exact`] — the reference engine: evaluate the `where`
//!   clause under `v ← u·t` with FINAL semantics for every candidate token
//!   `t` and mask the `FIN(⊥)` ones. Always sound and complete for
//!   one-token lookahead; costs one expression evaluation per vocabulary
//!   entry per step.
//! - [`MaskEngine::Symbolic`] — the FollowMap engine of §5.2: compose
//!   per-operator FOLLOW sets through the constraint expression and
//!   resolve them to vocabulary bitmasks via the prefix trie. The ablation
//!   benchmark `followmap` compares the two.
//!
//! Both engines additionally enforce `stops_at` *containment*: a token
//! that would extend the value past a stopping phrase (the phrase would
//! appear strictly inside the value) is masked, so decoding halts exactly
//! at the phrase.

use crate::constraints::automata_cache::{AutomataCache, AutomatonKey};
use crate::constraints::eval::{eval_final, EvalCtx};
use crate::constraints::follow::{follow_sets, scan_vocab, FollowCtx, ScanCache, SetPool};
use crate::constraints::memo::{MaskKey, MaskMemo};
use crate::Value;
use lmql_syntax::ast::Expr;
use lmql_tokenizer::{TokenSet, TokenTrie, Vocabulary};
use std::collections::HashMap;
use std::sync::Arc;

/// Which mask-generation engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaskEngine {
    /// Per-token FINAL evaluation (reference).
    Exact,
    /// Symbolic FollowMap composition (default; falls back to per-token
    /// evaluation for unrecognised leaf shapes).
    #[default]
    Symbolic,
}

/// Parallelism policy for O(|V|) vocabulary scans (the Exact engine and
/// the FollowMap generic leaf fallback).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelScan {
    /// Always scan sequentially.
    Off,
    /// Scan in parallel when the machine has more than one core *and* the
    /// vocabulary meets [`MaskConfig::parallel_min_vocab`] (thread-spawn
    /// overhead dwarfs small scans).
    #[default]
    Auto,
    /// Use exactly this many scan threads regardless of vocabulary size
    /// or core count (for tests and benchmarks).
    Threads(usize),
}

/// Tuning knobs for mask generation. The defaults memoize and
/// auto-parallelise; every fast path can be disabled to recover the
/// reference behaviour bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskConfig {
    /// Memoize mask outcomes keyed on `(expr, referenced scope values,
    /// var, value)` (see [`MaskMemo`]).
    pub memo: bool,
    /// Capacity of the per-masker memo created when no shared memo is
    /// installed.
    pub memo_capacity: usize,
    /// Parallelism policy for vocabulary scans.
    pub parallel: ParallelScan,
    /// Minimum vocabulary size for [`ParallelScan::Auto`] to engage.
    pub parallel_min_vocab: usize,
    /// Compile eager `where` clauses to constraint automata and serve
    /// masks per automaton state (DESIGN.md §12). Clauses that don't
    /// compile — custom operators above all — fall back transparently.
    pub automata: bool,
}

impl Default for MaskConfig {
    fn default() -> Self {
        MaskConfig {
            memo: true,
            memo_capacity: 256,
            parallel: ParallelScan::Auto,
            parallel_min_vocab: 2048,
            automata: true,
        }
    }
}

impl MaskConfig {
    /// The reference configuration: no memo, sequential scans, no
    /// automata.
    pub fn reference() -> Self {
        MaskConfig {
            memo: false,
            parallel: ParallelScan::Off,
            automata: false,
            ..MaskConfig::default()
        }
    }

    /// Resolves the thread count for one scan over `vocab_len` tokens.
    pub(crate) fn scan_threads(&self, vocab_len: usize) -> usize {
        match self.parallel {
            ParallelScan::Off => 1,
            ParallelScan::Threads(n) => n.max(1),
            ParallelScan::Auto => {
                if vocab_len < self.parallel_min_vocab {
                    return 1;
                }
                machine_parallelism().min(8)
            }
        }
    }
}

/// [`std::thread::available_parallelism`], cached: on Linux the probe
/// re-reads cgroup quota files on every call (tens of microseconds —
/// comparable to an entire symbolic mask computation), and the answer
/// never changes mid-process.
fn machine_parallelism() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Counter handles for mask-generation metrics, registered once and
/// bumped lock-free on the decode path.
#[derive(Debug, Clone)]
pub struct MaskMetrics {
    hits: lmql_obs::Counter,
    misses: lmql_obs::Counter,
    parallel_chunks: lmql_obs::Counter,
    automata_hits: lmql_obs::Counter,
    automata_fallbacks: lmql_obs::Counter,
    fast_forwarded: lmql_obs::Counter,
    automata_states: lmql_obs::Gauge,
    compile_us: lmql_obs::Histogram,
}

impl MaskMetrics {
    /// Registers (or re-attaches to) the mask counters in `registry`:
    /// `mask.cache.hit`, `mask.cache.miss`, `mask.scan.parallel_chunks`,
    /// plus the automaton family — `automata.hit` (mask served from a
    /// cached automaton state), `automata.fallback` (clause didn't
    /// compile), `automata.fast_forwarded_tokens` (tokens appended
    /// without an LM call), `automata.states` (distinct states
    /// discovered) and the `automata.compile_us` histogram.
    pub fn register(registry: &lmql_obs::Registry) -> Self {
        MaskMetrics {
            hits: registry.counter("mask.cache.hit"),
            misses: registry.counter("mask.cache.miss"),
            parallel_chunks: registry.counter("mask.scan.parallel_chunks"),
            automata_hits: registry.counter("automata.hit"),
            automata_fallbacks: registry.counter("automata.fallback"),
            fast_forwarded: registry.counter("automata.fast_forwarded_tokens"),
            automata_states: registry.gauge("automata.states"),
            compile_us: registry.histogram("automata.compile_us"),
        }
    }
}

/// The result of one mask computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskOutcome {
    /// Admissible regular (non-EOS) tokens.
    pub allowed: TokenSet,
    /// Whether ending the hole here satisfies the constraints.
    pub eos_allowed: bool,
    /// A `stops_at` phrase is already satisfied: the decoder must stop and
    /// keep the phrase in the value.
    pub must_stop: bool,
}

impl MaskOutcome {
    /// `true` when no token can be produced and EOS is inadmissible —
    /// Alg. 2's failure exit.
    pub fn is_dead_end(&self) -> bool {
        !self.must_stop && !self.eos_allowed && self.allowed.is_empty()
    }
}

/// Stateful mask generator for one query run (owns the scan caches and
/// scratch-set pool; optionally shares a [`MaskMemo`] across runs).
pub struct Masker {
    engine: MaskEngine,
    vocab_owner: Arc<dyn VocabSource>,
    trie: TokenTrie,
    cache: ScanCache,
    custom: crate::constraints::CustomOps,
    tracer: lmql_obs::Tracer,
    config: MaskConfig,
    memo: Option<Arc<MaskMemo>>,
    pool: SetPool,
    metrics: Option<MaskMetrics>,
    /// Shared store of compiled automata (lazily created when
    /// [`MaskConfig::automata`] is on and none was installed).
    automata: Option<Arc<AutomataCache>>,
    /// The automaton (or cached rejection) for the clause computed last,
    /// so steady-state steps skip the cache mutex entirely.
    current_automaton: Option<(AutomatonKey, Option<Arc<lmql_automata::Automaton>>)>,
    /// Reusable product-state scratch buffer (zero-alloc hot path).
    state_key: Vec<u64>,
    /// Whether the last computed outcome came from an automaton state —
    /// the precondition for [`Masker::forced_token`].
    last_from_automaton: bool,
}

/// Anything that can lend a [`Vocabulary`] (object-safe facade so `Masker`
/// can hold tokenizers of any kind).
pub trait VocabSource: Send + Sync {
    /// The vocabulary to mask over.
    fn vocabulary(&self) -> &Vocabulary;
}

impl VocabSource for lmql_tokenizer::Bpe {
    fn vocabulary(&self) -> &Vocabulary {
        self.vocab()
    }
}

impl std::fmt::Debug for Masker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Masker")
            .field("engine", &self.engine)
            .finish_non_exhaustive()
    }
}

impl Masker {
    /// A masker over the tokenizer's vocabulary.
    pub fn new(engine: MaskEngine, vocab_owner: Arc<dyn VocabSource>) -> Self {
        let trie = TokenTrie::new(vocab_owner.vocabulary());
        let pool = SetPool::new(vocab_owner.vocabulary().len());
        Masker {
            engine,
            vocab_owner,
            trie,
            cache: ScanCache::default(),
            custom: crate::constraints::CustomOps::new(),
            tracer: lmql_obs::Tracer::disabled(),
            config: MaskConfig::default(),
            memo: None,
            pool,
            metrics: None,
            automata: None,
            current_automaton: None,
            state_key: Vec::new(),
            last_from_automaton: false,
        }
    }

    /// Installs user-defined constraint operators (Appendix A.1).
    pub fn with_custom_ops(mut self, ops: crate::constraints::CustomOps) -> Self {
        self.custom = ops;
        self
    }

    /// Installs a trace recorder: every mask computation records a span,
    /// with a nested span for the engine-specific evaluation (FollowMap
    /// composition or exact per-token FINAL evaluation).
    pub fn with_tracer(mut self, tracer: lmql_obs::Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Overrides the mask-generation configuration.
    pub fn with_config(mut self, config: MaskConfig) -> Self {
        self.config = config;
        self
    }

    /// Installs a shared memo (e.g. the engine's cross-query memo). Only
    /// sound when every sharer masks over the same vocabulary object —
    /// the memo key carries the vocabulary identity, so a mismatch costs
    /// misses, never wrong bits.
    pub fn with_memo(mut self, memo: Arc<MaskMemo>) -> Self {
        self.memo = Some(memo);
        self
    }

    /// Registers and bumps mask metrics in `registry`.
    pub fn with_metrics(mut self, registry: &lmql_obs::Registry) -> Self {
        self.metrics = Some(MaskMetrics::register(registry));
        self
    }

    /// Installs a shared automata cache (e.g. the engine's cross-query
    /// cache). Like [`Masker::with_memo`], sharing is always sound: the
    /// automaton key carries vocabulary identity, engine, operator
    /// generation and scope fingerprints.
    pub fn with_automata_cache(mut self, cache: Arc<AutomataCache>) -> Self {
        self.automata = Some(cache);
        self
    }

    /// The engine in use.
    pub fn engine(&self) -> MaskEngine {
        self.engine
    }

    /// The active configuration.
    pub fn config(&self) -> MaskConfig {
        self.config
    }

    /// Computes the mask for the next token of hole `var`, currently
    /// holding `value`, under `where_expr` and the scope.
    ///
    /// With [`MaskConfig::memo`] enabled, the outcome is served from the
    /// memo when this exact `(expr, referenced scope values, var, value)`
    /// state was computed before — bit-identical by construction, since
    /// the mask is a pure function of the key.
    pub fn compute(
        &mut self,
        where_expr: Option<&Expr>,
        scope: &HashMap<String, Value>,
        var: &str,
        value: &str,
    ) -> MaskOutcome {
        let mut mask_span = self.tracer.span("mask", "compute_mask");
        self.last_from_automaton = false;
        let Some(expr) = where_expr else {
            // Unconstrained hole: everything is admissible.
            let eos = self.vocab_owner.vocabulary().eos();
            let mut allowed = self.pool.take_full();
            allowed.remove(eos);
            return MaskOutcome {
                allowed,
                eos_allowed: true,
                must_stop: false,
            };
        };

        // Constraint-automaton path (DESIGN.md §12): when the clause
        // compiles, the mask is a pure function of the automaton state,
        // so a revisited state is a hash lookup instead of a vocabulary
        // scan. A state's first visit delegates to `compute_uncached` —
        // the masks served here are the engine's own bits.
        if self.config.automata {
            if let Some(aut) = self.automaton_for(expr, scope, var) {
                let mut key = std::mem::take(&mut self.state_key);
                aut.state_of(value, &mut key);
                if let Some(hit) = aut.cached(&key) {
                    self.state_key = key;
                    self.last_from_automaton = true;
                    if let Some(m) = &self.metrics {
                        m.automata_hits.inc();
                    }
                    if mask_span.is_recording() {
                        mask_span.arg("automaton_hit", 1u64);
                    }
                    // Pooled copy: at steady state (decode loops recycle
                    // outcomes via `Masker::recycle`) serving a cached
                    // state allocates nothing.
                    return MaskOutcome {
                        allowed: self.pool.take_copy(&hit.allowed),
                        eos_allowed: hit.eos_allowed,
                        must_stop: hit.must_stop,
                    };
                }
                let outcome = self.compute_uncached(expr, scope, var, value, &mut mask_span);
                let (_, new_state) = aut.insert(
                    &key,
                    lmql_automata::StateMask {
                        allowed: outcome.allowed.clone(),
                        eos_allowed: outcome.eos_allowed,
                        must_stop: outcome.must_stop,
                    },
                );
                if new_state {
                    if let Some(m) = &self.metrics {
                        m.automata_states.add(1);
                    }
                }
                self.state_key = key;
                self.last_from_automaton = true;
                return outcome;
            }
            if let Some(m) = &self.metrics {
                m.automata_fallbacks.inc();
            }
        }

        let key = if self.config.memo {
            let vlen = self.vocab_owner.vocabulary().len();
            let key = MaskKey::new(
                self.engine,
                (Arc::as_ptr(&self.vocab_owner).cast::<()>() as usize, vlen),
                self.custom.generation(),
                expr,
                scope,
                var,
                value,
            );
            let memo = self
                .memo
                .get_or_insert_with(|| MaskMemo::new(self.config.memo_capacity));
            if let Some(hit) = memo.get(&key) {
                if let Some(m) = &self.metrics {
                    m.hits.inc();
                }
                if mask_span.is_recording() {
                    mask_span.arg("memo_hit", 1u64);
                }
                return hit;
            }
            if let Some(m) = &self.metrics {
                m.misses.inc();
            }
            Some(key)
        } else {
            None
        };

        let outcome = self.compute_uncached(expr, scope, var, value, &mut mask_span);
        if let Some(key) = key {
            self.memo
                .as_ref()
                .expect("memo created by the lookup above")
                .insert(key, outcome.clone());
        }
        outcome
    }

    /// The compiled automaton for the clause, compiling (and caching the
    /// result, including rejections) on first sight. The last-used slot
    /// keeps steady-state decode steps off the cache mutex.
    fn automaton_for(
        &mut self,
        expr: &Expr,
        scope: &HashMap<String, Value>,
        var: &str,
    ) -> Option<Arc<lmql_automata::Automaton>> {
        let vlen = self.vocab_owner.vocabulary().len();
        let key = AutomatonKey::new(
            self.engine,
            (Arc::as_ptr(&self.vocab_owner).cast::<()>() as usize, vlen),
            self.custom.generation(),
            expr,
            scope,
            var,
        );
        if let Some((cached_key, slot)) = &self.current_automaton {
            if *cached_key == key {
                return slot.clone();
            }
        }
        let cache = match &self.automata {
            Some(c) => Arc::clone(c),
            None => {
                let c = AutomataCache::new();
                self.automata = Some(Arc::clone(&c));
                c
            }
        };
        let custom = &self.custom;
        let metrics = &self.metrics;
        let slot = cache.get_or_compile(key, || {
            let started = std::time::Instant::now();
            let compiled = lmql_automata::compile(
                expr,
                var,
                &crate::constraints::automata_cache::ScopeValues(scope),
                &|name| custom.contains(name),
            );
            if let Some(m) = metrics {
                m.compile_us.record(started.elapsed().as_micros() as u64);
            }
            compiled.ok()
        });
        self.current_automaton = Some((key, slot.clone()));
        slot
    }

    /// When the automaton produced the last outcome and that outcome
    /// admits exactly one token (and forbids ending the hole), returns
    /// it: the decoder can append it without querying the model
    /// (SGLang-style fast-forwarding). `None` for FollowMap-path
    /// outcomes — only automaton states are cheap enough to prove the
    /// singleton chain step by step.
    pub fn forced_token(&self, outcome: &MaskOutcome) -> Option<lmql_tokenizer::TokenId> {
        if !self.last_from_automaton || outcome.must_stop || outcome.eos_allowed {
            return None;
        }
        let mut it = outcome.allowed.iter();
        let t = it.next()?;
        it.next().is_none().then_some(t)
    }

    /// Records `n` fast-forwarded (forced, not model-scored) tokens.
    pub fn note_fast_forward(&self, n: u64) {
        if let Some(m) = &self.metrics {
            m.fast_forwarded.add(n);
        }
    }

    /// Returns a consumed outcome's bitset to the scratch pool. Decode
    /// loops call this once per step so the next [`Masker::compute`] can
    /// reuse the allocation instead of making a new one — the pool half
    /// of the steady-state zero-allocation contract (DESIGN.md §13).
    pub fn recycle(&mut self, outcome: MaskOutcome) {
        self.pool.put(outcome.allowed);
    }

    /// Takes a pooled copy of `mask` (same bits, recycled allocation
    /// when one is available). Pair with [`Masker::recycle_mask`].
    pub fn pooled_copy(&mut self, mask: &TokenSet) -> TokenSet {
        self.pool.take_copy(mask)
    }

    /// Returns a scratch bitset taken via [`Masker::pooled_copy`] to the
    /// pool.
    pub fn recycle_mask(&mut self, mask: TokenSet) {
        self.pool.put(mask);
    }

    fn compute_uncached(
        &mut self,
        expr: &Expr,
        scope: &HashMap<String, Value>,
        var: &str,
        value: &str,
        mask_span: &mut lmql_obs::SpanGuard,
    ) -> MaskOutcome {
        let stop_phrases = collect_stop_phrases(expr, var);
        if stop_phrases.iter().any(|s| value.ends_with(s.as_str())) {
            return MaskOutcome {
                allowed: self.pool.take_empty(),
                eos_allowed: true,
                must_stop: true,
            };
        }

        // EOS admissibility: the completed value must not make the clause
        // false. Undetermined (future holes) is tolerated.
        let final_eval = eval_final(
            expr,
            &EvalCtx {
                scope,
                var,
                value,
                var_final: true,
                custom: Some(&self.custom),
            },
        );
        let eos_allowed = final_eval.truthy() != Some(false);

        let mut allowed = match self.engine {
            MaskEngine::Exact => {
                let _span = self.tracer.span("mask", "exact_eval");
                self.exact_allowed(expr, scope, var, value)
            }
            MaskEngine::Symbolic => {
                let _span = self.tracer.span("mask", "follow_eval");
                let vocab = self.vocab_owner.vocabulary();
                let threads = self.config.scan_threads(vocab.len());
                let mut ctx = FollowCtx {
                    scope,
                    var,
                    value,
                    vocab,
                    trie: &self.trie,
                    cache: &mut self.cache,
                    custom: Some(&self.custom),
                    pool: &mut self.pool,
                    threads,
                    parallel_chunks: 0,
                };
                let fs = follow_sets(expr, &mut ctx);
                let chunks = ctx.parallel_chunks;
                let mut allowed = fs.definitely_false;
                self.pool.put(fs.definitely_true);
                allowed.complement_in_place();
                if chunks > 0 {
                    if let Some(m) = &self.metrics {
                        m.parallel_chunks.add(chunks);
                    }
                }
                allowed
            }
        };
        let vocab = self.vocab_owner.vocabulary();
        allowed.remove(vocab.eos());

        // stops_at containment: mask tokens that run past a stop phrase.
        for phrase in &stop_phrases {
            allowed.subtract_with(self.cache.tokens_containing_beyond(vocab, phrase));
            // Cross-boundary overruns: value ends with a proper prefix of
            // the phrase; tokens that complete the phrase *and continue*
            // are masked (tokens completing it exactly are fine).
            for (k, _) in phrase.char_indices().skip(1) {
                if value.ends_with(&phrase[..k]) {
                    for t in self.trie.tokens_with_prefix(&phrase[k..]) {
                        if vocab.token_str(t).len() > phrase.len() - k {
                            allowed.remove(t);
                        }
                    }
                }
            }
        }

        if mask_span.is_recording() {
            mask_span.arg("allowed", allowed.count() as u64);
            mask_span.arg("eos_allowed", u64::from(eos_allowed));
        }
        MaskOutcome {
            allowed,
            eos_allowed,
            must_stop: false,
        }
    }

    fn exact_allowed(
        &mut self,
        expr: &Expr,
        scope: &HashMap<String, Value>,
        var: &str,
        value: &str,
    ) -> TokenSet {
        let owner = Arc::clone(&self.vocab_owner);
        let vocab = owner.vocabulary();
        let threads = self.config.scan_threads(vocab.len());
        let mut allowed = self.pool.take_empty();
        let mut scratch = self.pool.take_empty();
        let custom = &self.custom;
        // A token is allowed unless FINAL evaluation is definitely false;
        // the scan's second verdict channel is unused here.
        let classify = |candidate: &str| {
            let fv = eval_final(
                expr,
                &EvalCtx {
                    scope,
                    var,
                    value: candidate,
                    var_final: false,
                    custom: Some(custom),
                },
            );
            (!fv.is_definitely_false(), false)
        };
        let chunks = scan_vocab(
            vocab,
            value,
            threads,
            allowed.words_mut(),
            scratch.words_mut(),
            &classify,
        );
        if chunks > 0 {
            if let Some(m) = &self.metrics {
                m.parallel_chunks.add(chunks);
            }
        }
        self.pool.put(scratch);
        allowed
    }
}

/// Extracts the `stops_at(var, phrase)` phrases applying to `var` from a
/// constraint expression.
pub fn collect_stop_phrases(expr: &Expr, var: &str) -> Vec<String> {
    let mut out = Vec::new();
    walk_stop_phrases(expr, var, &mut out);
    out
}

fn walk_stop_phrases(expr: &Expr, var: &str, out: &mut Vec<String>) {
    match expr {
        Expr::Call { func, args, .. } => {
            if let Expr::Name { name, .. } = func.as_ref() {
                if name == "stops_at" && args.len() == 2 {
                    if let (Expr::Name { name: v, .. }, Expr::Str { value: s, .. }) =
                        (&args[0], &args[1])
                    {
                        if v == var {
                            out.push(s.clone());
                        }
                    }
                }
            }
        }
        Expr::BoolOp { operands, .. } => {
            for o in operands {
                walk_stop_phrases(o, var, out);
            }
        }
        Expr::Not { operand, .. } => walk_stop_phrases(operand, var, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmql_syntax::parse_expr;
    use lmql_tokenizer::Bpe;

    fn masker(engine: MaskEngine) -> (Masker, Arc<Bpe>) {
        let bpe = Arc::new(Bpe::char_level(""));
        (Masker::new(engine, bpe.clone()), bpe)
    }

    fn allowed_strs(m: &MaskOutcome, bpe: &Bpe) -> Vec<String> {
        m.allowed
            .iter()
            .map(|t| bpe.vocab().token_str(t).to_owned())
            .collect()
    }

    #[test]
    fn no_where_allows_everything_but_eos() {
        let (mut m, bpe) = masker(MaskEngine::Exact);
        let out = m.compute(None, &HashMap::new(), "X", "");
        assert!(out.eos_allowed);
        assert_eq!(out.allowed.count(), bpe.vocab().len() - 1);
    }

    #[test]
    fn engines_agree_on_membership() {
        let e = parse_expr("X in [\"yes\", \"no\"]").unwrap();
        let scope = HashMap::new();
        let (mut exact, bpe) = masker(MaskEngine::Exact);
        let (mut symb, _) = masker(MaskEngine::Symbolic);
        for value in ["", "y", "n", "ye"] {
            let a = exact.compute(Some(&e), &scope, "X", value);
            let b = symb.compute(Some(&e), &scope, "X", value);
            assert_eq!(
                allowed_strs(&a, &bpe),
                allowed_strs(&b, &bpe),
                "value {value:?}"
            );
            assert_eq!(a.eos_allowed, b.eos_allowed, "value {value:?}");
        }
    }

    #[test]
    fn membership_mask_allows_only_aligned() {
        let e = parse_expr("X in [\"yes\", \"no\"]").unwrap();
        let (mut m, bpe) = masker(MaskEngine::Symbolic);
        let out = m.compute(Some(&e), &HashMap::new(), "X", "");
        let allowed = allowed_strs(&out, &bpe);
        assert_eq!(allowed, vec!["n", "y"]);
        assert!(!out.eos_allowed, "empty string is not a valid option");
        let out = m.compute(Some(&e), &HashMap::new(), "X", "yes");
        assert!(out.eos_allowed);
        assert!(out.allowed.is_empty());
    }

    #[test]
    fn stop_phrase_triggers_must_stop() {
        let e = parse_expr("stops_at(X, \".\")").unwrap();
        let (mut m, _) = masker(MaskEngine::Exact);
        let out = m.compute(Some(&e), &HashMap::new(), "X", "done.");
        assert!(out.must_stop);
        let out = m.compute(Some(&e), &HashMap::new(), "X", "done");
        assert!(!out.must_stop);
    }

    #[test]
    fn stop_phrase_masks_overruns() {
        // Char-level vocab: the "." token itself is allowed (ends with the
        // phrase); any multi-char token containing "." mid-way would be
        // masked — at char level every token is length 1, so check the
        // boundary rule with a phrase of length 2.
        let e = parse_expr("stops_at(X, \"ab\")").unwrap();
        let (mut m, bpe) = masker(MaskEngine::Exact);
        let out = m.compute(Some(&e), &HashMap::new(), "X", "xa");
        // Token "b" completes the phrase exactly: allowed.
        let b = bpe.vocab().id_of("b").unwrap();
        assert!(out.allowed.contains(b));
        assert!(!out.must_stop);
    }

    #[test]
    fn dead_end_detected() {
        let e = parse_expr("X in [\"a\"] and X in [\"b\"]").unwrap();
        let (mut m, _) = masker(MaskEngine::Exact);
        let out = m.compute(Some(&e), &HashMap::new(), "X", "");
        assert!(out.is_dead_end());
    }

    #[test]
    fn collect_stop_phrases_finds_all() {
        let e = parse_expr(
            "stops_at(R, \"?\") and stops_at(R, \"\\n\") and stops_at(OTHER, \"!\") and len(R) < 5",
        )
        .unwrap();
        assert_eq!(collect_stop_phrases(&e, "R"), vec!["?", "\n"]);
        assert_eq!(collect_stop_phrases(&e, "OTHER"), vec!["!"]);
    }

    #[test]
    fn not_contains_masks_newline_tokens() {
        let e = parse_expr("not \"\\n\" in X").unwrap();
        let scope = HashMap::new();
        for engine in [MaskEngine::Exact, MaskEngine::Symbolic] {
            let (mut m, bpe) = masker(engine);
            let out = m.compute(Some(&e), &scope, "X", "some text");
            let nl = bpe.vocab().id_of("\n").unwrap();
            assert!(!out.allowed.contains(nl), "engine {engine:?}");
            assert!(out.eos_allowed);
        }
    }
}
