//! Validation and constrained decoding (§5 of the paper): FINAL semantics,
//! FOLLOW maps and token-mask generation.

mod automata_cache;
mod custom;
mod eval;
mod final_sem;
mod follow;
mod mask;
mod memo;

pub use automata_cache::AutomataCache;
pub use custom::{CustomOp, CustomOps, FollowView, OpCtx};
pub use eval::{eval_expr, eval_final, EvalCtx};
pub use final_sem::{Fin, FinalValue};
pub use mask::{
    collect_stop_phrases, MaskConfig, MaskEngine, MaskMetrics, MaskOutcome, Masker, ParallelScan,
    VocabSource,
};
pub use memo::MaskMemo;

pub(crate) use memo::fingerprint_scope_full;
