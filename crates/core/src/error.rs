//! Runtime errors.

use lmql_syntax::{Span, SyntaxError};
use std::fmt;

/// An error raised while compiling or executing an LMQL query.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The query failed to parse.
    Syntax(SyntaxError),
    /// The query is well-formed but violates a static rule (e.g. the
    /// `distribute` variable is not the last hole).
    Compile { message: String, span: Span },
    /// Evaluation failed (type error, unknown variable, bad call, …).
    Eval { message: String, span: Span },
    /// Decoding could not produce a constraint-satisfying value: every
    /// next token was masked out and EOS was inadmissible (Alg. 2's
    /// `⋀ᵢ mᵢ = 0` exit without a legal decoding).
    NoValidContinuation { var: String },
    /// An external (user-registered) function failed.
    External { name: String, message: String },
    /// The language model behind the query failed (a remote backend
    /// died, a retry budget ran out). The query is sound — the serving
    /// layer was not.
    Model { message: String },
    /// The query was cancelled cooperatively (a dropped stream handle, a
    /// disconnected client) before it could finish.
    Cancelled,
}

impl Error {
    /// Helper for evaluation errors.
    pub fn eval(message: impl Into<String>, span: Span) -> Self {
        Error::Eval {
            message: message.into(),
            span,
        }
    }

    /// Helper for compile errors.
    pub fn compile(message: impl Into<String>, span: Span) -> Self {
        Error::Compile {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Syntax(e) => write!(f, "{e}"),
            Error::Compile { message, span } => {
                write!(f, "compile error at {span}: {message}")
            }
            Error::Eval { message, span } => write!(f, "runtime error at {span}: {message}"),
            Error::NoValidContinuation { var } => write!(
                f,
                "no valid continuation for hole `{var}`: all next tokens violate the constraints"
            ),
            Error::External { name, message } => {
                write!(f, "external function `{name}` failed: {message}")
            }
            Error::Model { message } => write!(f, "model failure: {message}"),
            Error::Cancelled => f.write_str("query cancelled"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Syntax(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SyntaxError> for Error {
    fn from(e: SyntaxError) -> Self {
        Error::Syntax(e)
    }
}

/// Model-layer failures surface as [`Error::Model`] with the taxonomy's
/// rendered classification ("transient model error (…)", "fatal model
/// error: …", …) in the message; cancellation keeps its own variant so
/// callers can tell "the consumer left" from "the backend broke".
impl From<lmql_lm::LmError> for Error {
    fn from(e: lmql_lm::LmError) -> Self {
        match e {
            lmql_lm::LmError::Cancelled => Error::Cancelled,
            other => Error::Model {
                message: other.to_string(),
            },
        }
    }
}

/// Result alias for runtime operations.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;
    use lmql_syntax::Pos;

    #[test]
    fn display_variants() {
        let e = Error::eval("bad value", Span::at(Pos::new(1, 2)));
        assert!(e.to_string().contains("runtime error at 1:2"));
        let e = Error::NoValidContinuation { var: "X".into() };
        assert!(e.to_string().contains("`X`"));
        assert!(Error::Cancelled.to_string().contains("cancelled"));
    }

    #[test]
    fn lm_errors_convert_preserving_class() {
        let e: Error = lmql_lm::LmError::fatal("bad vocab").into();
        assert!(matches!(&e, Error::Model { message } if message.contains("fatal")));
        let e: Error = lmql_lm::LmError::transient(lmql_lm::FaultKind::Timeout, "slow").into();
        assert!(matches!(&e, Error::Model { message } if message.contains("transient")));
        assert_eq!(Error::from(lmql_lm::LmError::Cancelled), Error::Cancelled);
    }
}
