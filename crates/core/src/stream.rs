//! Streaming query execution: the event model, observer sinks, the wire
//! codec and client-side reassembly (DESIGN.md §11).
//!
//! The paper's runtime (Alg. 1/2) is inherently incremental — it suspends
//! at every hole and decodes token by token — so instead of waiting for a
//! fully-materialised [`QueryResult`](crate::QueryResult), a consumer can
//! observe the run as a stream of [`QueryEvent`]s: template text as the
//! interpreter reaches it ([`QueryEvent::PromptChunk`]), per-token deltas
//! while a hole decodes ([`QueryEvent::TokenDelta`]), the authoritative
//! hole value when constraints close it ([`QueryEvent::VariableDone`]),
//! and — for `beam(n)`/`sample(n)` — the branching structure itself
//! ([`QueryEvent::BeamFork`]/[`QueryEvent::BeamPrune`]).
//!
//! **Reassembly invariant:** for every decoder, replaying a query's event
//! stream through [`Reassembler`] rebuilds the non-streaming result
//! *byte-identically* — same traces, same hole values, same bit-exact
//! log-probabilities, same run order. The acceptance suite
//! (`tests/streaming.rs`) holds this for `argmax`, `sample(n)` and
//! `beam(n)`.
//!
//! Every event is tagged with a `path`: a stable identity for one
//! hypothesis (a sample run, a beam). Path `0` is the root; beam search
//! mints fresh ids on fork. Forks are emitted *before* the parent's next
//! token delta, so a child always inherits the parent's pre-delta state.

use lmql_lm::CancelToken;
use std::collections::BTreeMap;

/// The first path id available to nested subquery streams. A single
/// run's own hypothesis ids (sample indices, beam forks) stay far below
/// this, so every id at or above it unambiguously belongs to a subquery.
pub(crate) const SUBQUERY_PATH_BASE: u32 = 1 << 16;
use std::fmt;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// One observable step of a streaming query run.
///
/// `path` identifies the hypothesis the event belongs to (run index for
/// `sample(n)`, beam identity for `beam(n)`, always `0` for `argmax`).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryEvent {
    /// Literal template text the interpreter appended to the trace
    /// (everything between holes, including `{recall}` substitutions).
    PromptChunk {
        /// Hypothesis the text belongs to.
        path: u32,
        /// The appended text (never empty).
        text: String,
    },
    /// Decoding of hole `var` started on `path`.
    VariableStart {
        /// Hypothesis the hole belongs to.
        path: u32,
        /// The hole variable name.
        var: String,
    },
    /// One decoded token of an in-progress hole.
    TokenDelta {
        /// Hypothesis the token belongs to.
        path: u32,
        /// The hole being decoded.
        var: String,
        /// The token's exact text.
        text: String,
        /// The token's log-probability under the masked distribution.
        log_prob: f64,
    },
    /// Hole `var` finished; `value` is the authoritative final text (for
    /// a `distribute` hole there are no deltas, only this event).
    VariableDone {
        /// Hypothesis the hole belongs to.
        path: u32,
        /// The hole variable name.
        var: String,
        /// The complete hole value. When token deltas were emitted their
        /// concatenation equals this string.
        value: String,
        /// The hypothesis' cumulative log-probability after this hole
        /// (bit-exact: reassembly uses it as the run's `log_prob`).
        score: f64,
    },
    /// Beam search cloned `parent` into a new hypothesis `child`.
    /// Emitted *before* the parent's token delta for the same step, so
    /// the child inherits exactly the parent's pre-delta state.
    BeamFork {
        /// The surviving original hypothesis.
        parent: u32,
        /// The freshly minted hypothesis id.
        child: u32,
    },
    /// Hypothesis `path` was discarded (constraint dead end, numerically
    /// impossible, or truncated by beam width).
    BeamPrune {
        /// The discarded hypothesis.
        path: u32,
    },
    /// A `subquery(...)` call on `parent` launched a child query whose
    /// events stream under the fresh hypothesis id `child` (always
    /// `>= SUBQUERY_PATH_BASE`, so nested ids never collide with the
    /// parent's own sample/beam paths).
    SubqueryStart {
        /// The hypothesis that called `subquery(...)`.
        parent: u32,
        /// The child query's root path id.
        child: u32,
        /// Nesting depth of the child (the root query is depth 0).
        depth: u32,
    },
    /// The child query streamed under `path` finished; `ok` tells
    /// whether it completed or failed. The child's terminal
    /// `Done`/`Error`/`Usage` events stay internal — this event is the
    /// child's terminal marker in the parent stream.
    SubqueryDone {
        /// The child query's root path id.
        path: u32,
        /// Whether the child completed successfully.
        ok: bool,
    },
    /// The `distribute` clause's normalised distribution over its
    /// support values.
    Distribution {
        /// `(value, probability)` pairs in support order.
        support: Vec<(String, f64)>,
    },
    /// Cost counters at the end of the run (the paper's §6 metrics, from
    /// the runtime's meter).
    Usage {
        /// Forward passes issued.
        model_queries: u64,
        /// Decoder iterations.
        decoder_calls: u64,
        /// Billable prompt+completion tokens.
        billable_tokens: u64,
    },
    /// Terminal: the query completed. `ranking` lists surviving paths
    /// best-first — the order of `QueryResult::runs`.
    Done {
        /// Surviving hypothesis ids, best first.
        ranking: Vec<u32>,
    },
    /// Terminal: the query failed after the events streamed so far.
    Error {
        /// Rendered error message.
        message: String,
    },
}

impl QueryEvent {
    /// The hypothesis this event belongs to, when it has one.
    pub fn path(&self) -> Option<u32> {
        match self {
            QueryEvent::PromptChunk { path, .. }
            | QueryEvent::VariableStart { path, .. }
            | QueryEvent::TokenDelta { path, .. }
            | QueryEvent::VariableDone { path, .. }
            | QueryEvent::BeamPrune { path }
            | QueryEvent::SubqueryDone { path, .. } => Some(*path),
            QueryEvent::BeamFork { child, .. } | QueryEvent::SubqueryStart { child, .. } => {
                Some(*child)
            }
            _ => None,
        }
    }

    /// Whether this is a terminal event ([`Done`](QueryEvent::Done) or
    /// [`Error`](QueryEvent::Error)).
    pub fn is_terminal(&self) -> bool {
        matches!(self, QueryEvent::Done { .. } | QueryEvent::Error { .. })
    }
}

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

/// A malformed line in the streaming wire protocol, or a stream that
/// violates the event grammar during reassembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What was wrong.
    pub message: String,
}

impl WireError {
    fn new(message: impl Into<String>) -> Self {
        WireError {
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream protocol error: {}", self.message)
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for crate::Error {
    fn from(e: WireError) -> Self {
        crate::Error::Model {
            message: e.to_string(),
        }
    }
}

/// Escapes arbitrary text into a single whitespace-free token so event
/// lines can be split on spaces: `\\`, `\n`, `\r`, `\t` and space get
/// backslash escapes (space as `\s`), and the empty string encodes as
/// `\e`.
fn escape(s: &str) -> String {
    if s.is_empty() {
        return "\\e".to_owned();
    }
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            ' ' => out.push_str("\\s"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, WireError> {
    if s == "\\e" {
        return Ok(String::new());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('s') => out.push(' '),
            other => {
                return Err(WireError::new(format!(
                    "bad escape `\\{}`",
                    other.map(String::from).unwrap_or_default()
                )))
            }
        }
    }
    Ok(out)
}

/// Exact-bits hex encoding for `f64` (same convention as the SCORE
/// frame's logits): round-trips every value including ±0, subnormals
/// and infinities.
fn f64_to_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn f64_from_hex(s: &str) -> Result<f64, WireError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| WireError::new(format!("bad f64 bits `{s}`")))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, WireError> {
    s.parse()
        .map_err(|_| WireError::new(format!("bad {what} `{s}`")))
}

impl QueryEvent {
    /// Serialises the event as a single line (no trailing newline) of
    /// space-separated tokens; text fields are escaped, floats are
    /// exact-bits hex. [`from_wire`](Self::from_wire) inverts it.
    pub fn to_wire(&self) -> String {
        match self {
            QueryEvent::PromptChunk { path, text } => {
                format!("prompt {path} {}", escape(text))
            }
            QueryEvent::VariableStart { path, var } => {
                format!("varstart {path} {}", escape(var))
            }
            QueryEvent::TokenDelta {
                path,
                var,
                text,
                log_prob,
            } => format!(
                "delta {path} {} {} {}",
                escape(var),
                f64_to_hex(*log_prob),
                escape(text)
            ),
            QueryEvent::VariableDone {
                path,
                var,
                value,
                score,
            } => format!(
                "vardone {path} {} {} {}",
                escape(var),
                f64_to_hex(*score),
                escape(value)
            ),
            QueryEvent::BeamFork { parent, child } => format!("fork {parent} {child}"),
            QueryEvent::BeamPrune { path } => format!("prune {path}"),
            QueryEvent::SubqueryStart {
                parent,
                child,
                depth,
            } => format!("subq {parent} {child} {depth}"),
            QueryEvent::SubqueryDone { path, ok } => {
                format!("subqdone {path} {}", u8::from(*ok))
            }
            QueryEvent::Distribution { support } => {
                let mut line = format!("dist {}", support.len());
                for (value, p) in support {
                    line.push(' ');
                    line.push_str(&f64_to_hex(*p));
                    line.push(' ');
                    line.push_str(&escape(value));
                }
                line
            }
            QueryEvent::Usage {
                model_queries,
                decoder_calls,
                billable_tokens,
            } => format!("usage {model_queries} {decoder_calls} {billable_tokens}"),
            QueryEvent::Done { ranking } => {
                let mut line = format!("done {}", ranking.len());
                for p in ranking {
                    line.push(' ');
                    line.push_str(&p.to_string());
                }
                line
            }
            QueryEvent::Error { message } => format!("error {}", escape(message)),
        }
    }

    /// Parses a line produced by [`to_wire`](Self::to_wire).
    pub fn from_wire(line: &str) -> Result<QueryEvent, WireError> {
        let mut parts = line.split_whitespace();
        let tag = parts
            .next()
            .ok_or_else(|| WireError::new("empty event line"))?;
        let mut field = |what: &str| {
            parts
                .next()
                .ok_or_else(|| WireError::new(format!("missing {what} in `{tag}` event")))
        };
        let ev = match tag {
            "prompt" => QueryEvent::PromptChunk {
                path: parse_num(field("path")?, "path")?,
                text: unescape(field("text")?)?,
            },
            "varstart" => QueryEvent::VariableStart {
                path: parse_num(field("path")?, "path")?,
                var: unescape(field("var")?)?,
            },
            "delta" => QueryEvent::TokenDelta {
                path: parse_num(field("path")?, "path")?,
                var: unescape(field("var")?)?,
                log_prob: f64_from_hex(field("log_prob")?)?,
                text: unescape(field("text")?)?,
            },
            "vardone" => QueryEvent::VariableDone {
                path: parse_num(field("path")?, "path")?,
                var: unescape(field("var")?)?,
                score: f64_from_hex(field("score")?)?,
                value: unescape(field("value")?)?,
            },
            "fork" => QueryEvent::BeamFork {
                parent: parse_num(field("parent")?, "path")?,
                child: parse_num(field("child")?, "path")?,
            },
            "prune" => QueryEvent::BeamPrune {
                path: parse_num(field("path")?, "path")?,
            },
            "subq" => QueryEvent::SubqueryStart {
                parent: parse_num(field("parent")?, "path")?,
                child: parse_num(field("child")?, "path")?,
                depth: parse_num(field("depth")?, "depth")?,
            },
            "subqdone" => QueryEvent::SubqueryDone {
                path: parse_num(field("path")?, "path")?,
                ok: match field("ok")? {
                    "1" => true,
                    "0" => false,
                    other => return Err(WireError::new(format!("bad ok flag `{other}`"))),
                },
            },
            "dist" => {
                let n: usize = parse_num(field("count")?, "count")?;
                let mut support = Vec::with_capacity(n);
                for _ in 0..n {
                    let p = f64_from_hex(field("probability")?)?;
                    let value = unescape(field("value")?)?;
                    support.push((value, p));
                }
                QueryEvent::Distribution { support }
            }
            "usage" => QueryEvent::Usage {
                model_queries: parse_num(field("model_queries")?, "count")?,
                decoder_calls: parse_num(field("decoder_calls")?, "count")?,
                billable_tokens: parse_num(field("billable_tokens")?, "count")?,
            },
            "done" => {
                let n: usize = parse_num(field("count")?, "count")?;
                let mut ranking = Vec::with_capacity(n);
                for _ in 0..n {
                    ranking.push(parse_num(field("path")?, "path")?);
                }
                QueryEvent::Done { ranking }
            }
            "error" => QueryEvent::Error {
                message: unescape(field("message")?)?,
            },
            other => return Err(WireError::new(format!("unknown event tag `{other}`"))),
        };
        if parts.next().is_some() {
            return Err(WireError::new(format!("trailing fields in `{tag}` event")));
        }
        Ok(ev)
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Receives query events as they happen. Implementations must be cheap
/// and non-blocking — they run inside the decode loop.
pub trait EventSink: Send + Sync {
    /// Observe one event.
    fn emit(&self, event: QueryEvent);

    /// Whether the consumer has abandoned the stream. Checked by the
    /// decode loop between tokens; returning `true` makes the run stop
    /// with [`Error::Cancelled`](crate::Error::Cancelled).
    fn cancelled(&self) -> bool {
        false
    }
}

/// The handle threaded through [`DecodeOptions`](crate::DecodeOptions):
/// either inactive (the default — every emit is a no-op costing one
/// branch) or a shared [`EventSink`] plus the current `path` tag.
///
/// Cloning shares the sink; [`with_path`](StreamSink::with_path) retags
/// a clone for another hypothesis.
#[derive(Clone, Default)]
pub struct StreamSink {
    inner: Option<Arc<dyn EventSink>>,
    path: u32,
}

impl fmt::Debug for StreamSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamSink")
            .field("active", &self.inner.is_some())
            .field("path", &self.path)
            .finish()
    }
}

impl StreamSink {
    /// The inactive sink: all emits are no-ops, `cancelled()` is always
    /// `false`. This is `Default`, so non-streaming callers pay nothing.
    pub fn none() -> Self {
        StreamSink::default()
    }

    /// Wraps a custom sink, starting at path `0`.
    pub fn new(sink: Arc<dyn EventSink>) -> Self {
        StreamSink {
            inner: Some(sink),
            path: 0,
        }
    }

    /// A sink delivering events over an unbounded channel, plus the
    /// receiving end and the cancellation token. Dropping the receiver
    /// cancels the stream (the next emit notices the closed channel).
    pub fn channel() -> (Self, mpsc::Receiver<QueryEvent>, CancelToken) {
        let (tx, rx) = mpsc::channel();
        let token = CancelToken::new();
        let sink = StreamSink::new(Arc::new(ChannelSink {
            tx,
            token: token.clone(),
        }));
        (sink, rx, token)
    }

    /// A sink buffering every event in memory (for tests and offline
    /// reassembly), plus the shared buffer.
    pub fn collector() -> (Self, Arc<CollectorSink>) {
        let collector = Arc::new(CollectorSink::default());
        (StreamSink::new(Arc::clone(&collector) as _), collector)
    }

    /// A sink invoking `f` on every event (e.g. printing tokens live).
    pub fn callback(f: impl Fn(&QueryEvent) + Send + Sync + 'static) -> Self {
        StreamSink::new(Arc::new(CallbackSink { f: Box::new(f) }))
    }

    /// Whether events go anywhere. Callers may skip building expensive
    /// event payloads when inactive.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// The hypothesis id this handle tags its events with.
    pub fn path(&self) -> u32 {
        self.path
    }

    /// A clone of this handle tagged for hypothesis `path`.
    pub fn with_path(&self, path: u32) -> Self {
        StreamSink {
            inner: self.inner.clone(),
            path,
        }
    }

    /// Whether the consumer has abandoned the stream.
    pub fn cancelled(&self) -> bool {
        self.inner.as_ref().is_some_and(|s| s.cancelled())
    }

    /// Emits a fully-built event (used for path-explicit events like
    /// forks; the helpers below tag with this handle's own path).
    pub fn emit(&self, event: QueryEvent) {
        if let Some(sink) = &self.inner {
            sink.emit(event);
        }
    }

    /// Emits a [`QueryEvent::PromptChunk`] unless `text` is empty.
    pub fn prompt_chunk(&self, text: &str) {
        if self.inner.is_some() && !text.is_empty() {
            self.emit(QueryEvent::PromptChunk {
                path: self.path,
                text: text.to_owned(),
            });
        }
    }

    /// Emits a [`QueryEvent::VariableStart`].
    pub fn variable_start(&self, var: &str) {
        if self.inner.is_some() {
            self.emit(QueryEvent::VariableStart {
                path: self.path,
                var: var.to_owned(),
            });
        }
    }

    /// Emits a [`QueryEvent::TokenDelta`].
    pub fn token_delta(&self, var: &str, text: &str, log_prob: f64) {
        if self.inner.is_some() {
            self.emit(QueryEvent::TokenDelta {
                path: self.path,
                var: var.to_owned(),
                text: text.to_owned(),
                log_prob,
            });
        }
    }

    /// Emits a [`QueryEvent::VariableDone`].
    pub fn variable_done(&self, var: &str, value: &str, score: f64) {
        if self.inner.is_some() {
            self.emit(QueryEvent::VariableDone {
                path: self.path,
                var: var.to_owned(),
                value: value.to_owned(),
                score,
            });
        }
    }
}

struct ChannelSink {
    tx: mpsc::Sender<QueryEvent>,
    token: CancelToken,
}

impl EventSink for ChannelSink {
    fn emit(&self, event: QueryEvent) {
        // A closed channel means the consumer dropped its receiver:
        // treat it as cancellation so the producer stops decoding.
        if self.tx.send(event).is_err() {
            self.token.cancel();
        }
    }

    fn cancelled(&self) -> bool {
        self.token.is_cancelled()
    }
}

/// An in-memory event buffer (see [`StreamSink::collector`]).
#[derive(Default)]
pub struct CollectorSink {
    events: Mutex<Vec<QueryEvent>>,
}

impl CollectorSink {
    /// A copy of every event observed so far.
    pub fn events(&self) -> Vec<QueryEvent> {
        self.events.lock().expect("collector poisoned").clone()
    }

    /// Drains and returns the buffered events.
    pub fn take(&self) -> Vec<QueryEvent> {
        std::mem::take(&mut *self.events.lock().expect("collector poisoned"))
    }
}

impl EventSink for CollectorSink {
    fn emit(&self, event: QueryEvent) {
        self.events.lock().expect("collector poisoned").push(event);
    }
}

struct CallbackSink {
    #[allow(clippy::type_complexity)]
    f: Box<dyn Fn(&QueryEvent) + Send + Sync>,
}

impl EventSink for CallbackSink {
    fn emit(&self, event: QueryEvent) {
        (self.f)(&event);
    }
}

// ---------------------------------------------------------------------------
// Reassembly
// ---------------------------------------------------------------------------

/// One rebuilt hypothesis: the mirror of [`QueryRun`](crate::QueryRun).
#[derive(Debug, Clone, PartialEq)]
pub struct ReassembledRun {
    /// The hypothesis id the run was streamed under.
    pub path: u32,
    /// The full interaction trace (template text + hole values).
    pub trace: String,
    /// `(var, value)` pairs in decode order.
    pub holes: Vec<(String, String)>,
    /// Cumulative log-probability (bit-exact vs the non-streamed run).
    pub log_prob: f64,
}

/// One rebuilt nested `subquery(...)` run from the parent's stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ReassembledSubquery {
    /// The hypothesis that launched the subquery.
    pub parent: u32,
    /// Nesting depth (the root query is depth 0).
    pub depth: u32,
    /// Whether the child completed successfully.
    pub ok: bool,
    /// The child's root run, rebuilt from its nested events.
    pub run: ReassembledRun,
}

/// The rebuilt result of a streamed query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReassembledQuery {
    /// Surviving runs, best-first (the [`QueryEvent::Done`] ranking).
    pub runs: Vec<ReassembledRun>,
    /// Nested subquery runs in completion order (a parent's
    /// [`QueryEvent::SubqueryDone`] moves the child here, keeping
    /// `runs` and the `Done` ranking purely about the parent).
    pub subqueries: Vec<ReassembledSubquery>,
    /// The `distribute` clause's distribution, when the query had one.
    pub distribution: Option<Vec<(String, f64)>>,
    /// `(model_queries, decoder_calls, billable_tokens)` from the
    /// [`QueryEvent::Usage`] event.
    pub usage: Option<(u64, u64, u64)>,
    /// The terminal error message, if the stream ended in
    /// [`QueryEvent::Error`].
    pub error: Option<String>,
}

#[derive(Debug, Clone, Default)]
struct PartialVar {
    var: String,
    text: String,
    deltas: usize,
}

#[derive(Debug, Clone, Default)]
struct PathState {
    trace: String,
    holes: Vec<(String, String)>,
    score: f64,
    cur: Option<PartialVar>,
    born: u64,
}

/// Rebuilds query results from an event stream, enforcing the event
/// grammar (deltas only inside an open variable, forks from live paths,
/// delta concatenation matching the final value).
///
/// # Example
///
/// ```
/// use lmql::stream::{QueryEvent, Reassembler};
///
/// let mut r = Reassembler::new();
/// for ev in [
///     QueryEvent::PromptChunk { path: 0, text: "Q:".into() },
///     QueryEvent::VariableStart { path: 0, var: "A".into() },
///     QueryEvent::TokenDelta { path: 0, var: "A".into(), text: " hi".into(), log_prob: -0.5 },
///     QueryEvent::VariableDone { path: 0, var: "A".into(), value: " hi".into(), score: -0.5 },
///     QueryEvent::Done { ranking: vec![0] },
/// ] {
///     r.apply(&ev).unwrap();
/// }
/// let out = r.finish();
/// assert_eq!(out.runs[0].trace, "Q: hi");
/// ```
#[derive(Debug, Default)]
pub struct Reassembler {
    paths: BTreeMap<u32, PathState>,
    /// Open subqueries: child root path -> (parent path, depth).
    subquery_meta: BTreeMap<u32, (u32, u32)>,
    subqueries: Vec<ReassembledSubquery>,
    ranking: Option<Vec<u32>>,
    distribution: Option<Vec<(String, f64)>>,
    usage: Option<(u64, u64, u64)>,
    error: Option<String>,
    seq: u64,
}

impl Reassembler {
    /// An empty reassembler.
    pub fn new() -> Self {
        Reassembler::default()
    }

    /// Rebuilds a full result from a complete event sequence.
    pub fn from_events<'a>(
        events: impl IntoIterator<Item = &'a QueryEvent>,
    ) -> Result<ReassembledQuery, WireError> {
        let mut r = Reassembler::new();
        for ev in events {
            r.apply(ev)?;
        }
        Ok(r.finish())
    }

    fn path_mut(&mut self, path: u32) -> &mut PathState {
        let seq = &mut self.seq;
        self.paths.entry(path).or_insert_with(|| {
            let born = *seq;
            *seq += 1;
            PathState {
                born,
                ..PathState::default()
            }
        })
    }

    /// Applies one event, failing on grammar violations.
    pub fn apply(&mut self, event: &QueryEvent) -> Result<(), WireError> {
        match event {
            QueryEvent::PromptChunk { path, text } => {
                self.path_mut(*path).trace.push_str(text);
            }
            QueryEvent::VariableStart { path, var } => {
                let st = self.path_mut(*path);
                if let Some(open) = &st.cur {
                    return Err(WireError::new(format!(
                        "variable `{var}` started while `{}` is open on path {path}",
                        open.var
                    )));
                }
                st.cur = Some(PartialVar {
                    var: var.clone(),
                    ..PartialVar::default()
                });
            }
            QueryEvent::TokenDelta {
                path, var, text, ..
            } => {
                let st = self.path_mut(*path);
                match &mut st.cur {
                    Some(open) if open.var == *var => {
                        open.text.push_str(text);
                        open.deltas += 1;
                    }
                    Some(open) => {
                        return Err(WireError::new(format!(
                            "delta for `{var}` inside open variable `{}` on path {path}",
                            open.var
                        )))
                    }
                    None => {
                        return Err(WireError::new(format!(
                            "delta for `{var}` with no open variable on path {path}"
                        )))
                    }
                }
            }
            QueryEvent::VariableDone {
                path,
                var,
                value,
                score,
            } => {
                let st = self.path_mut(*path);
                let open = st.cur.take().ok_or_else(|| {
                    WireError::new(format!(
                        "`{var}` finished with no open variable on path {path}"
                    ))
                })?;
                if open.var != *var {
                    return Err(WireError::new(format!(
                        "`{var}` finished while `{}` is open on path {path}",
                        open.var
                    )));
                }
                if open.deltas > 0 && open.text != *value {
                    return Err(WireError::new(format!(
                        "deltas for `{var}` reassemble to {:?} but final value is {value:?}",
                        open.text
                    )));
                }
                st.trace.push_str(value);
                st.holes.push((var.clone(), value.clone()));
                st.score = *score;
            }
            QueryEvent::BeamFork { parent, child } => {
                let mut cloned = self
                    .paths
                    .get(parent)
                    .ok_or_else(|| WireError::new(format!("fork from unknown path {parent}")))?
                    .clone();
                cloned.born = self.seq;
                self.seq += 1;
                if self.paths.insert(*child, cloned).is_some() {
                    return Err(WireError::new(format!("fork into live path {child}")));
                }
            }
            QueryEvent::BeamPrune { path } => {
                self.paths
                    .remove(path)
                    .ok_or_else(|| WireError::new(format!("prune of unknown path {path}")))?;
            }
            QueryEvent::SubqueryStart {
                parent,
                child,
                depth,
            } => {
                if *child < SUBQUERY_PATH_BASE {
                    return Err(WireError::new(format!(
                        "subquery child path {child} below the nested-path base"
                    )));
                }
                if self
                    .subquery_meta
                    .insert(*child, (*parent, *depth))
                    .is_some()
                {
                    return Err(WireError::new(format!(
                        "subquery started twice under path {child}"
                    )));
                }
                self.path_mut(*child);
            }
            QueryEvent::SubqueryDone { path, ok } => {
                let (parent, depth) = self.subquery_meta.remove(path).ok_or_else(|| {
                    WireError::new(format!("subquery done for unknown child {path}"))
                })?;
                let st = self.paths.remove(path).unwrap_or_default();
                self.subqueries.push(ReassembledSubquery {
                    parent,
                    depth,
                    ok: *ok,
                    run: ReassembledRun {
                        path: *path,
                        trace: st.trace,
                        holes: st.holes,
                        log_prob: st.score,
                    },
                });
            }
            QueryEvent::Distribution { support } => {
                self.distribution = Some(support.clone());
            }
            QueryEvent::Usage {
                model_queries,
                decoder_calls,
                billable_tokens,
            } => {
                self.usage = Some((*model_queries, *decoder_calls, *billable_tokens));
            }
            QueryEvent::Done { ranking } => {
                self.ranking = Some(ranking.clone());
            }
            QueryEvent::Error { message } => {
                self.error = Some(message.clone());
            }
        }
        Ok(())
    }

    /// Finalises reassembly. Runs come out in [`QueryEvent::Done`]
    /// ranking order when the stream completed, otherwise in creation
    /// order (a cancelled or failed stream still yields its partial
    /// state).
    pub fn finish(mut self) -> ReassembledQuery {
        let order: Vec<u32> = match &self.ranking {
            Some(ranking) => ranking.clone(),
            None => {
                // Subquery-internal paths (>= the nested base) never
                // belong in the parent's run list, even on a stream cut
                // short before their SubqueryDone.
                let mut alive: Vec<(u64, u32)> = self
                    .paths
                    .iter()
                    .filter(|(p, _)| **p < SUBQUERY_PATH_BASE)
                    .map(|(p, st)| (st.born, *p))
                    .collect();
                alive.sort_unstable();
                alive.into_iter().map(|(_, p)| p).collect()
            }
        };
        let runs = order
            .into_iter()
            .filter_map(|path| {
                self.paths.remove(&path).map(|st| ReassembledRun {
                    path,
                    trace: st.trace,
                    holes: st.holes,
                    log_prob: st.score,
                })
            })
            .collect();
        ReassembledQuery {
            runs,
            subqueries: self.subqueries,
            distribution: self.distribution,
            usage: self.usage,
            error: self.error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ev: QueryEvent) {
        let line = ev.to_wire();
        assert!(!line.contains('\n'), "wire lines are single lines: {line}");
        let back = QueryEvent::from_wire(&line).expect(&line);
        assert_eq!(back, ev, "roundtrip of {line}");
    }

    #[test]
    fn wire_roundtrips_every_variant() {
        roundtrip(QueryEvent::PromptChunk {
            path: 3,
            text: "a b\nc\\d\te — ü".into(),
        });
        roundtrip(QueryEvent::VariableStart {
            path: 0,
            var: "ANSWER".into(),
        });
        roundtrip(QueryEvent::TokenDelta {
            path: 1,
            var: "X".into(),
            text: " ".into(),
            log_prob: -1.25e-3,
        });
        roundtrip(QueryEvent::VariableDone {
            path: 1,
            var: "X".into(),
            value: String::new(),
            score: f64::NEG_INFINITY,
        });
        roundtrip(QueryEvent::BeamFork {
            parent: 0,
            child: 7,
        });
        roundtrip(QueryEvent::BeamPrune { path: 7 });
        roundtrip(QueryEvent::SubqueryStart {
            parent: 0,
            child: 65536,
            depth: 1,
        });
        roundtrip(QueryEvent::SubqueryDone {
            path: 65536,
            ok: true,
        });
        roundtrip(QueryEvent::SubqueryDone {
            path: 65537,
            ok: false,
        });
        roundtrip(QueryEvent::Distribution {
            support: vec![("pos itive".into(), 0.75), ("neg\native".into(), 0.25)],
        });
        roundtrip(QueryEvent::Usage {
            model_queries: 10,
            decoder_calls: 20,
            billable_tokens: 30,
        });
        roundtrip(QueryEvent::Done {
            ranking: vec![2, 0, 1],
        });
        roundtrip(QueryEvent::Error {
            message: "model failure: boom".into(),
        });
    }

    #[test]
    fn wire_rejects_garbage() {
        assert!(QueryEvent::from_wire("").is_err());
        assert!(QueryEvent::from_wire("nonsense 1 2").is_err());
        assert!(QueryEvent::from_wire("prompt x text").is_err());
        assert!(QueryEvent::from_wire("delta 0 X zz text").is_err());
        assert!(QueryEvent::from_wire("prompt 0 a b").is_err(), "trailing");
        assert!(QueryEvent::from_wire("prompt 0 bad\\q").is_err());
    }

    #[test]
    fn reassembles_fork_and_prune() {
        let mut r = Reassembler::new();
        let events = [
            QueryEvent::PromptChunk {
                path: 0,
                text: "Say:".into(),
            },
            QueryEvent::VariableStart {
                path: 0,
                var: "A".into(),
            },
            // Fork happens before the parent's delta: child 1 inherits
            // the pre-delta state.
            QueryEvent::BeamFork {
                parent: 0,
                child: 1,
            },
            QueryEvent::TokenDelta {
                path: 0,
                var: "A".into(),
                text: " yes".into(),
                log_prob: -0.1,
            },
            QueryEvent::TokenDelta {
                path: 1,
                var: "A".into(),
                text: " no".into(),
                log_prob: -0.9,
            },
            QueryEvent::VariableDone {
                path: 0,
                var: "A".into(),
                value: " yes".into(),
                score: -0.1,
            },
            QueryEvent::VariableDone {
                path: 1,
                var: "A".into(),
                value: " no".into(),
                score: -0.9,
            },
            QueryEvent::BeamPrune { path: 1 },
            QueryEvent::Done { ranking: vec![0] },
        ];
        for ev in &events {
            r.apply(ev).unwrap();
        }
        let out = r.finish();
        assert_eq!(out.runs.len(), 1);
        assert_eq!(out.runs[0].trace, "Say: yes");
        assert_eq!(out.runs[0].holes, vec![("A".into(), " yes".into())]);
        assert_eq!(out.runs[0].log_prob, -0.1);
    }

    #[test]
    fn reassembly_rejects_grammar_violations() {
        let mut r = Reassembler::new();
        assert!(r
            .apply(&QueryEvent::TokenDelta {
                path: 0,
                var: "A".into(),
                text: "x".into(),
                log_prob: 0.0,
            })
            .is_err());
        let mut r = Reassembler::new();
        r.apply(&QueryEvent::VariableStart {
            path: 0,
            var: "A".into(),
        })
        .unwrap();
        r.apply(&QueryEvent::TokenDelta {
            path: 0,
            var: "A".into(),
            text: "x".into(),
            log_prob: 0.0,
        })
        .unwrap();
        let err = r
            .apply(&QueryEvent::VariableDone {
                path: 0,
                var: "A".into(),
                value: "different".into(),
                score: 0.0,
            })
            .unwrap_err();
        assert!(err.message.contains("reassemble"), "{err}");
        assert!(Reassembler::new()
            .apply(&QueryEvent::BeamFork {
                parent: 9,
                child: 10
            })
            .is_err());
    }

    #[test]
    fn distribute_hole_needs_no_deltas() {
        let mut r = Reassembler::new();
        r.apply(&QueryEvent::VariableStart {
            path: 0,
            var: "CLS".into(),
        })
        .unwrap();
        r.apply(&QueryEvent::VariableDone {
            path: 0,
            var: "CLS".into(),
            value: "positive".into(),
            score: 0.0,
        })
        .unwrap();
        let out = r.finish();
        assert_eq!(out.runs[0].trace, "positive");
    }

    #[test]
    fn reassembles_nested_subquery_into_its_own_list() {
        let child = SUBQUERY_PATH_BASE;
        let mut r = Reassembler::new();
        for ev in [
            QueryEvent::PromptChunk {
                path: 0,
                text: "Plan: ".into(),
            },
            QueryEvent::SubqueryStart {
                parent: 0,
                child,
                depth: 1,
            },
            QueryEvent::PromptChunk {
                path: child,
                text: "Step:".into(),
            },
            QueryEvent::VariableStart {
                path: child,
                var: "S".into(),
            },
            QueryEvent::VariableDone {
                path: child,
                var: "S".into(),
                value: " pack".into(),
                score: -0.25,
            },
            QueryEvent::SubqueryDone {
                path: child,
                ok: true,
            },
            QueryEvent::VariableStart {
                path: 0,
                var: "OUT".into(),
            },
            QueryEvent::VariableDone {
                path: 0,
                var: "OUT".into(),
                value: "done".into(),
                score: -1.0,
            },
            QueryEvent::Done { ranking: vec![0] },
        ] {
            r.apply(&ev).unwrap();
        }
        let out = r.finish();
        assert_eq!(out.runs.len(), 1, "subquery paths stay out of runs");
        assert_eq!(out.runs[0].trace, "Plan: done");
        assert_eq!(out.subqueries.len(), 1);
        let sub = &out.subqueries[0];
        assert_eq!((sub.parent, sub.depth, sub.ok), (0, 1, true));
        assert_eq!(sub.run.path, child);
        assert_eq!(sub.run.trace, "Step: pack");
        assert_eq!(sub.run.holes, vec![("S".into(), " pack".into())]);
        assert_eq!(sub.run.log_prob, -0.25);
    }

    #[test]
    fn unfinished_subquery_paths_stay_out_of_runs() {
        let child = SUBQUERY_PATH_BASE + 3;
        let mut r = Reassembler::new();
        r.apply(&QueryEvent::PromptChunk {
            path: 0,
            text: "Q".into(),
        })
        .unwrap();
        r.apply(&QueryEvent::SubqueryStart {
            parent: 0,
            child,
            depth: 1,
        })
        .unwrap();
        r.apply(&QueryEvent::PromptChunk {
            path: child,
            text: "partial".into(),
        })
        .unwrap();
        // Stream cut short (cancelled): no SubqueryDone, no Done.
        let out = r.finish();
        assert_eq!(out.runs.len(), 1);
        assert_eq!(out.runs[0].path, 0);
        assert!(out.subqueries.is_empty());
    }

    #[test]
    fn reassembly_rejects_subquery_grammar_violations() {
        let mut r = Reassembler::new();
        assert!(
            r.apply(&QueryEvent::SubqueryStart {
                parent: 0,
                child: 4,
                depth: 1
            })
            .is_err(),
            "child id below the nested-path base"
        );
        assert!(
            Reassembler::new()
                .apply(&QueryEvent::SubqueryDone {
                    path: SUBQUERY_PATH_BASE,
                    ok: true
                })
                .is_err(),
            "done without start"
        );
    }

    #[test]
    fn channel_sink_cancels_when_receiver_drops() {
        let (sink, rx, token) = StreamSink::channel();
        sink.prompt_chunk("hi");
        assert_eq!(rx.recv().ok().map(|e| e.is_terminal()), Some(false));
        drop(rx);
        assert!(!token.is_cancelled(), "not before the next emit");
        sink.prompt_chunk("more");
        assert!(sink.cancelled());
        assert!(token.is_cancelled());
    }

    #[test]
    fn inactive_sink_is_free_and_never_cancelled() {
        let sink = StreamSink::none();
        assert!(!sink.is_active());
        assert!(!sink.cancelled());
        sink.prompt_chunk("ignored");
        sink.variable_done("X", "v", 0.0);
    }

    #[test]
    fn with_path_retags() {
        let (sink, collector) = StreamSink::collector();
        sink.with_path(4).variable_start("V");
        assert_eq!(
            collector.events(),
            vec![QueryEvent::VariableStart {
                path: 4,
                var: "V".into()
            }]
        );
    }
}
