//! The paper's Alg. 3: *naive decoding with constraints* — generate
//! freely, validate only at sequence end, and backtrack on violation.
//!
//! §5 introduces this strawman to motivate eager masking: "navigating the
//! search space of sequences using backtracking is computationally
//! expensive … every token that is generated and later dismissed incurs a
//! significant computational or financial cost." This module implements it
//! faithfully (with a practical branching bound) so tests and benchmarks
//! can measure exactly that cost against [`decode_hole`](crate::decode_hole).

use crate::constraints::{eval_final, CustomOps, EvalCtx};
use crate::{Error, Result, Value};
use lmql_lm::LanguageModel;
use lmql_syntax::ast::Expr;
use lmql_tokenizer::Bpe;
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration for the backtracking search.
#[derive(Debug, Clone)]
pub struct NaiveOptions {
    /// Softmax temperature.
    pub temperature: f64,
    /// Maximum value length in tokens (search depth).
    pub max_tokens: usize,
    /// How many highest-probability candidates to try per position before
    /// backtracking further (Alg. 3 tries the whole vocabulary; a bound
    /// keeps worst cases finite without changing the success cases).
    pub branching: usize,
    /// Hard budget on model queries; exceeded ⇒ failure.
    pub max_queries: usize,
}

impl Default for NaiveOptions {
    fn default() -> Self {
        NaiveOptions {
            temperature: 1.0,
            max_tokens: 48,
            branching: 8,
            max_queries: 20_000,
        }
    }
}

/// What the backtracking search produced.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveOutcome {
    /// The first constraint-satisfying value found (highest-probability
    /// first search order), if any.
    pub value: Option<String>,
    /// Model queries spent, including all backtracked branches.
    pub model_queries: usize,
    /// Number of backtracking steps taken.
    pub backtracks: usize,
}

/// Decodes a hole value by generate-then-check with backtracking (Alg. 3).
///
/// # Errors
///
/// Returns [`Error::NoValidContinuation`] only for malformed inputs; an
/// exhausted search or budget yields `Ok` with `value: None` so callers
/// can inspect the cost counters.
#[allow(clippy::too_many_arguments)]
pub fn decode_hole_naive<L: LanguageModel + ?Sized>(
    lm: &L,
    bpe: &Arc<Bpe>,
    where_expr: Option<&Expr>,
    scope: &HashMap<String, Value>,
    trace: &str,
    var: &str,
    options: &NaiveOptions,
) -> Result<NaiveOutcome> {
    let eos = bpe.vocab().eos();
    let custom = CustomOps::new();
    let check = |value: &str| -> bool {
        let Some(expr) = where_expr else { return true };
        let fv = eval_final(
            expr,
            &EvalCtx {
                scope,
                var,
                value,
                var_final: true,
                custom: Some(&custom),
            },
        );
        fv.truthy() != Some(false)
    };
    let stop_phrases: Vec<String> = where_expr
        .map(|e| crate::constraints::collect_stop_phrases(e, var))
        .unwrap_or_default();

    let mut queries = 0usize;
    let mut backtracks = 0usize;
    // DFS stack: the candidate tokens (best first) remaining at each depth.
    let mut value = String::new();
    let mut stack: Vec<Vec<lmql_tokenizer::TokenId>> = Vec::new();
    let mut lengths: Vec<usize> = Vec::new(); // value length before each depth

    loop {
        if queries >= options.max_queries {
            return Ok(NaiveOutcome {
                value: None,
                model_queries: queries,
                backtracks,
            });
        }

        // A stopping phrase ends the hole (check, else backtrack).
        let stopped = stop_phrases.iter().any(|s| value.ends_with(s.as_str()));
        if stopped && check(&value) {
            return Ok(NaiveOutcome {
                value: Some(value),
                model_queries: queries,
                backtracks,
            });
        }

        if !stopped && stack.len() < options.max_tokens {
            // Expand: query the model, order candidates by probability.
            let context = bpe.encode(&format!("{trace}{value}"));
            queries += 1;
            let dist = lm.score(&context).softmax(options.temperature);
            let candidates: Vec<lmql_tokenizer::TokenId> = dist
                .top_k(options.branching)
                .into_iter()
                .filter(|(_, p)| *p > 0.0)
                .map(|(t, _)| t)
                .rev() // pop() takes from the back: best last
                .collect();
            lengths.push(value.len());
            stack.push(candidates);
        }

        // Take the next candidate at the deepest open position. Before
        // applying a sibling candidate, the value is rewound to the
        // frame's base (undoing the previously tried token).
        loop {
            let Some(frame) = stack.last_mut() else {
                return Ok(NaiveOutcome {
                    value: None,
                    model_queries: queries,
                    backtracks,
                });
            };
            let base = *lengths.last().expect("stack and lengths move together");
            match frame.pop() {
                Some(t) if t == eos => {
                    // Sequence ends at this frame's base: validate it.
                    value.truncate(base);
                    if check(&value) {
                        return Ok(NaiveOutcome {
                            value: Some(value),
                            model_queries: queries,
                            backtracks,
                        });
                    }
                    backtracks += 1;
                    // try the next candidate at this depth
                }
                Some(t) => {
                    value.truncate(base);
                    value.push_str(bpe.vocab().token_str(t));
                    break;
                }
                None => {
                    // Exhausted this depth: undo and go up.
                    stack.pop();
                    lengths.pop();
                    value.truncate(base);
                    backtracks += 1;
                }
            }
        }
    }
}

/// Convenience wrapper when the constraint is known to be satisfiable:
/// unwraps the value or reports failure as an error.
#[allow(clippy::too_many_arguments)]
pub fn decode_hole_naive_strict<L: LanguageModel + ?Sized>(
    lm: &L,
    bpe: &Arc<Bpe>,
    where_expr: Option<&Expr>,
    scope: &HashMap<String, Value>,
    trace: &str,
    var: &str,
    options: &NaiveOptions,
) -> Result<(String, NaiveOutcome)> {
    let outcome = decode_hole_naive(lm, bpe, where_expr, scope, trace, var, options)?;
    match &outcome.value {
        Some(v) => Ok((v.clone(), outcome.clone())),
        None => Err(Error::NoValidContinuation {
            var: var.to_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{MaskEngine, Masker};
    use crate::decode::{decode_hole, DecodeOptions, Pick};
    use lmql_lm::{Episode, MeteredLm, ScriptedLm, UsageMeter};
    use lmql_syntax::parse_expr;

    fn setup(script: &str) -> (Arc<Bpe>, ScriptedLm) {
        let bpe = Arc::new(Bpe::char_level(""));
        let lm = ScriptedLm::new(Arc::clone(&bpe), [Episode::plain("P:", script)]);
        (bpe, lm)
    }

    #[test]
    fn finds_unconstrained_script() {
        let (bpe, lm) = setup(" ok.");
        let e = parse_expr("stops_at(X, \".\")").unwrap();
        let out = decode_hole_naive(
            &lm,
            &bpe,
            Some(&e),
            &HashMap::new(),
            "P:",
            "X",
            &NaiveOptions::default(),
        )
        .unwrap();
        assert_eq!(out.value.as_deref(), Some(" ok."));
        assert_eq!(out.backtracks, 0);
    }

    #[test]
    fn backtracks_to_satisfy_membership() {
        // The model prefers " maybe" but only " no" is admissible; the
        // naive search must wander through thousands of dead branches to
        // find it (Alg. 3 iterates the whole vocabulary per position, so
        // the branching bound is lifted here).
        let (bpe, lm) = setup(" maybe");
        let e = parse_expr("X in [\" no\"]").unwrap();
        let out = decode_hole_naive(
            &lm,
            &bpe,
            Some(&e),
            &HashMap::new(),
            "P:",
            "X",
            &NaiveOptions {
                max_tokens: 4,
                branching: 200,
                max_queries: 500_000,
                ..NaiveOptions::default()
            },
        )
        .unwrap();
        assert_eq!(out.value.as_deref(), Some(" no"));
        assert!(out.backtracks > 10, "expected backtracking: {out:?}");
        assert!(out.model_queries > 100, "expected many wasted queries");
    }

    #[test]
    fn masked_decoding_is_cheaper_than_naive() {
        // §5's motivating comparison, measured.
        let (bpe, lm) = setup(" maybe");
        let e = parse_expr("X in [\" no\"]").unwrap();
        let scope = HashMap::new();

        let naive = decode_hole_naive(
            &lm,
            &bpe,
            Some(&e),
            &scope,
            "P:",
            "X",
            &NaiveOptions {
                max_tokens: 4,
                branching: 200,
                max_queries: 500_000,
                ..NaiveOptions::default()
            },
        )
        .unwrap();

        let meter = UsageMeter::new();
        let metered = MeteredLm::new(&lm, meter.clone());
        let mut masker = Masker::new(MaskEngine::Symbolic, bpe.clone());
        let masked = decode_hole(
            &metered,
            &bpe,
            &mut masker,
            Some(&e),
            &scope,
            "P:",
            "X",
            &mut Pick::argmax(),
            &DecodeOptions::default(),
        )
        .unwrap();

        assert_eq!(masked.value, " no");
        let masked_queries = meter.snapshot().model_queries as usize;
        assert!(
            masked_queries < naive.model_queries,
            "masked {masked_queries} vs naive {}",
            naive.model_queries
        );
    }

    #[test]
    fn budget_exhaustion_reports_cost() {
        let (bpe, lm) = setup(" rambling forever and ever");
        // Unsatisfiable: the value must equal something the model will
        // never produce and nothing stops the search early.
        let e = parse_expr("X == \"zzzzqqqq\"").unwrap();
        let out = decode_hole_naive(
            &lm,
            &bpe,
            Some(&e),
            &HashMap::new(),
            "P:",
            "X",
            &NaiveOptions {
                max_tokens: 4,
                max_queries: 300,
                ..NaiveOptions::default()
            },
        )
        .unwrap();
        assert_eq!(out.value, None);
        assert!(out.model_queries > 0);
    }
}
