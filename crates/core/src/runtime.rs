//! The top-level query runner: parse → compile → execute → results.

use crate::beam::run_beam_search;
use crate::constraints::{eval_expr, AutomataCache, CustomOp, CustomOps, MaskMemo, Masker};
use crate::debug::{DebugTrace, HoleTrace, StopReason};
use crate::decode::{decode_hole_traced, DecodeOptions, Pick};
use crate::interp::{Externals, HoleRecord, Step, VmState};
use crate::stream::{QueryEvent, StreamSink};
use crate::{compile_source, Error, Program, QueryRequest, Result, Value};
use lmql_lm::{CachedLm, LanguageModel, MeteredLm, RetryLm, UsageMeter};
use lmql_tokenizer::{Bpe, TokenId};
use std::collections::HashMap;
use std::sync::Arc;

/// One completed execution of a query (one sample / one beam).
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// The full interaction trace (prompt text with hole values filled).
    pub trace: String,
    /// Final variable scope, including all hole variables.
    pub variables: HashMap<String, Value>,
    /// Cumulative log-probability of the decoded tokens.
    pub log_prob: f64,
    /// Where each hole value sits in the trace, in decode order.
    pub hole_records: Vec<HoleRecord>,
}

impl QueryRun {
    /// String value of a variable, if present and a string.
    pub fn var_str(&self, name: &str) -> Option<&str> {
        self.variables.get(name).and_then(Value::as_str)
    }
}

/// The result of running a query: `n` interaction traces (1 for argmax)
/// and, for queries with a `distribute` clause, the measured distribution.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Completed runs, best first.
    pub runs: Vec<QueryRun>,
    /// `distribute` clause output: support values (prompt-rendered) with
    /// their normalised probabilities, in support order.
    pub distribution: Option<Vec<(String, f64)>>,
}

impl QueryResult {
    /// The best run.
    ///
    /// # Panics
    ///
    /// Never panics for results returned by [`Runtime::run`]: there is
    /// always at least one run.
    pub fn best(&self) -> &QueryRun {
        &self.runs[0]
    }

    /// The highest-probability value of the distribution, if one was
    /// computed.
    pub fn top_distribution_value(&self) -> Option<&str> {
        let dist = self.distribution.as_ref()?;
        dist.iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("probabilities are never NaN"))
            .map(|(v, _)| v.as_str())
    }
}

/// Executes LMQL queries against a language model.
///
/// # Example
///
/// ```
/// use lmql::Runtime;
/// use lmql_lm::{Episode, ScriptedLm};
/// use lmql_tokenizer::Bpe;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), lmql::Error> {
/// let bpe = Arc::new(Bpe::char_level(""));
/// let lm = Arc::new(ScriptedLm::new(
///     Arc::clone(&bpe),
///     [lmql_lm::Episode::plain("Say hi:", " hello.")],
/// ));
/// let runtime = Runtime::new(lm, bpe);
/// let result = runtime.run(r#"
/// argmax
///     "Say hi:[GREETING]"
/// from "scripted"
/// where stops_at(GREETING, ".")
/// "#)?;
/// assert_eq!(result.best().var_str("GREETING"), Some(" hello."));
/// # Ok(())
/// # }
/// ```
pub struct Runtime {
    lm: Arc<dyn LanguageModel>,
    bpe: Arc<Bpe>,
    externals: Externals,
    custom_ops: CustomOps,
    bindings: Vec<(String, Value)>,
    meter: UsageMeter,
    options: DecodeOptions,
    mask_memo: Option<Arc<MaskMemo>>,
    automata_cache: Option<Arc<AutomataCache>>,
    metrics: Option<lmql_obs::Registry>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("options", &self.options)
            .field("bindings", &self.bindings)
            .finish_non_exhaustive()
    }
}

impl Runtime {
    /// A runtime over a model and its tokenizer.
    ///
    /// # Panics
    ///
    /// Panics if the model's vocabulary size does not match the
    /// tokenizer's (they must be the same vocabulary).
    pub fn new(lm: Arc<dyn LanguageModel>, bpe: Arc<Bpe>) -> Self {
        assert_eq!(
            lm.vocab().len(),
            bpe.vocab().len(),
            "model and tokenizer vocabulary mismatch"
        );
        Runtime {
            lm,
            bpe,
            externals: Externals::new(),
            custom_ops: CustomOps::new(),
            bindings: Vec::new(),
            meter: UsageMeter::new(),
            options: DecodeOptions::default(),
            mask_memo: None,
            automata_cache: None,
            metrics: None,
        }
    }

    /// Replaces the decoding options.
    pub fn with_options(mut self, options: DecodeOptions) -> Self {
        self.options = options;
        self
    }

    /// Mutable access to the decoding options.
    pub fn options_mut(&mut self) -> &mut DecodeOptions {
        &mut self.options
    }

    /// The usage meter recording §6 metrics for every run.
    pub fn meter(&self) -> &UsageMeter {
        &self.meter
    }

    /// Installs a structured trace recorder. Every subsequent run records
    /// parse/compile, per-hole decode, mask computation, FollowMap
    /// evaluation and batch-dispatch spans into it. The default tracer is
    /// disabled and free.
    pub fn set_tracer(&mut self, tracer: lmql_obs::Tracer) {
        self.options.tracer = tracer;
    }

    /// Installs a shared mask memo (see [`MaskMemo`]). Without one, each
    /// run's masker creates a private memo per
    /// [`MaskConfig`](crate::constraints::MaskConfig); a shared memo
    /// additionally carries mask reuse across runs and across runtimes
    /// that mask over the same tokenizer (the engine does this for its
    /// per-query runtimes).
    pub fn set_mask_memo(&mut self, memo: Arc<MaskMemo>) {
        self.mask_memo = Some(memo);
    }

    /// Installs a shared constraint-automata cache (see
    /// [`AutomataCache`]). Without one, each run's masker lazily creates
    /// a private cache; a shared cache carries compiled automata and
    /// their per-state masks across runs and across runtimes that mask
    /// over the same tokenizer (the engine does this for its per-query
    /// runtimes).
    pub fn set_automata_cache(&mut self, cache: Arc<AutomataCache>) {
        self.automata_cache = Some(cache);
    }

    /// Installs a metrics registry: every subsequent run reports
    /// `mask.cache.hit`, `mask.cache.miss` and
    /// `mask.scan.parallel_chunks` counters into it.
    pub fn set_metrics_registry(&mut self, registry: lmql_obs::Registry) {
        self.metrics = Some(registry);
    }

    /// The installed trace recorder (disabled unless [`Self::set_tracer`]
    /// was called).
    pub fn tracer(&self) -> &lmql_obs::Tracer {
        &self.options.tracer
    }

    /// Registers an external function callable as `module.func(args)`
    /// (after `import module` in the query).
    pub fn register_external<F>(&mut self, module: &str, func: &str, f: F)
    where
        F: Fn(&[Value]) -> std::result::Result<Value, String> + Send + Sync + 'static,
    {
        self.externals.register(module, func, f);
    }

    /// Registers a user-defined constraint operator (Appendix A.1),
    /// callable from `where` clauses as `name(args…)`.
    ///
    /// # Panics
    ///
    /// Panics if the name collides with a built-in function.
    pub fn register_constraint_op(&mut self, name: &str, op: Arc<dyn CustomOp>) {
        self.custom_ops.register(name, op);
    }

    /// Binds a query argument (visible as a variable in the query body,
    /// like `OPTIONS` in the paper's Fig. 10).
    pub fn bind(&mut self, name: &str, value: Value) {
        self.bindings.retain(|(n, _)| n != name);
        self.bindings.push((name.to_owned(), value));
    }

    /// Removes all query arguments.
    pub fn clear_bindings(&mut self) {
        self.bindings.clear();
    }

    /// Parses, compiles and runs LMQL source.
    ///
    /// # Errors
    ///
    /// Syntax, compile, evaluation and decoding errors.
    pub fn run(&self, source: &str) -> Result<QueryResult> {
        let program = {
            let _span = self.tracer().span("query", "parse_compile");
            compile_source(source)?
        };
        self.run_program(&program)
    }

    /// Like [`Runtime::run`], additionally recording a per-step decode
    /// trace for the debugger (Appendix A.3). Tracing covers `argmax` and
    /// `sample` runs; beam search returns an empty trace.
    ///
    /// # Errors
    ///
    /// See [`Runtime::run`].
    pub fn run_traced(&self, source: &str) -> Result<(QueryResult, DebugTrace)> {
        let program = {
            let _span = self.tracer().span("query", "parse_compile");
            compile_source(source)?
        };
        let mut debug = DebugTrace::default();
        let result = self.run_program_inner(&program, Some(&mut debug))?;
        Ok((result, debug))
    }

    /// Runs a pre-compiled program.
    ///
    /// # Errors
    ///
    /// See [`Runtime::run`].
    pub fn run_program(&self, program: &Program) -> Result<QueryResult> {
        self.run_program_inner(program, None)
    }

    /// Like [`Runtime::run`], streaming [`QueryEvent`]s into `sink` as
    /// the query executes (DESIGN.md §11). The returned result is the
    /// same as [`Runtime::run`]'s — the stream is an *additional* view,
    /// and reassembling it reproduces the result byte-identically.
    ///
    /// # Errors
    ///
    /// See [`Runtime::run`]; additionally [`Error::Cancelled`] when the
    /// sink reports cancellation mid-run.
    pub fn run_streamed(&self, source: &str, sink: StreamSink) -> Result<QueryResult> {
        self.execute(&QueryRequest::new(source).stream(sink))
    }

    /// Executes a [`QueryRequest`]: the consolidated entry point behind
    /// which [`Runtime::run`] and friends are thin shims. Request
    /// settings override this runtime's defaults; unset fields inherit
    /// them.
    ///
    /// # Errors
    ///
    /// See [`Runtime::run`].
    pub fn execute(&self, request: &QueryRequest) -> Result<QueryResult> {
        let options = request.apply_to(&self.options);
        let program = {
            let _span = options.tracer.span("query", "parse_compile");
            compile_source(request.source())?
        };
        // A per-request retry policy wraps the model for this call only.
        let lm: Arc<dyn LanguageModel> = match request.retry_policy() {
            Some(policy) => Arc::new(RetryLm::new(Arc::clone(&self.lm), policy)),
            None => Arc::clone(&self.lm),
        };
        let bindings: Vec<(String, Value)> = if request.bindings().is_empty() {
            self.bindings.clone()
        } else {
            let mut merged = self.bindings.clone();
            for (name, value) in request.bindings() {
                merged.retain(|(n, _)| n != name);
                merged.push((name.clone(), value.clone()));
            }
            merged
        };
        self.run_program_full(&program, &lm, &options, &bindings, None)
    }

    fn run_program_inner(
        &self,
        program: &Program,
        debug: Option<&mut DebugTrace>,
    ) -> Result<QueryResult> {
        self.run_program_full(program, &self.lm, &self.options, &self.bindings, debug)
    }

    /// The full execution path: dispatches on the decoder and, when the
    /// options carry an active stream sink, brackets the run with the
    /// terminal events (`Usage` + `Done` on success, `Error` on failure).
    fn run_program_full(
        &self,
        program: &Program,
        lm: &Arc<dyn LanguageModel>,
        options: &DecodeOptions,
        bindings: &[(String, Value)],
        debug: Option<&mut DebugTrace>,
    ) -> Result<QueryResult> {
        let sink = options.sink.clone();
        let outcome = self.run_program_dispatch(program, lm, options, bindings, debug);
        if sink.is_active() {
            match &outcome {
                Ok((_, ranking)) => {
                    let u = self.meter.snapshot();
                    sink.emit(QueryEvent::Usage {
                        model_queries: u.model_queries,
                        decoder_calls: u.decoder_calls,
                        billable_tokens: u.billable_tokens,
                    });
                    sink.emit(QueryEvent::Done {
                        ranking: ranking.clone(),
                    });
                }
                Err(e) => sink.emit(QueryEvent::Error {
                    message: e.to_string(),
                }),
            }
        }
        outcome.map(|(result, _)| result)
    }

    /// Runs the decoder, returning the result plus the surviving path
    /// ids best-first (the streaming `Done` ranking; `runs[i]` was
    /// streamed under path `ranking[i]`).
    fn run_program_dispatch(
        &self,
        program: &Program,
        lm: &Arc<dyn LanguageModel>,
        options: &DecodeOptions,
        bindings: &[(String, Value)],
        mut debug: Option<&mut DebugTrace>,
    ) -> Result<(QueryResult, Vec<u32>)> {
        // One shared score cache per run: lockstep samples and beams that
        // revisit identical contexts pay for the model only once, and
        // cache hits are not billed as model queries.
        if let Some(w) = &program.where_clause {
            self.validate_where(w)?;
        }
        let lm = CachedLm::new(MeteredLm::new(Arc::clone(lm), self.meter.clone()));
        let mut masker = Masker::new(options.engine, Arc::clone(&self.bpe) as _)
            .with_custom_ops(self.custom_ops.clone())
            .with_tracer(options.tracer.clone())
            .with_config(options.mask);
        if let Some(memo) = &self.mask_memo {
            masker = masker.with_memo(Arc::clone(memo));
        }
        if let Some(cache) = &self.automata_cache {
            masker = masker.with_automata_cache(Arc::clone(cache));
        }
        if let Some(registry) = &self.metrics {
            masker = masker.with_metrics(registry);
        }
        let _query_span = options
            .tracer
            .span_lazy("query", || format!("run:{}", program.decoder.name));

        match program.decoder.name.as_str() {
            "argmax" => {
                let run = self.run_single(
                    program,
                    &lm,
                    &mut masker,
                    Pick::argmax(),
                    options,
                    bindings,
                    0,
                    debug.take(),
                )?;
                Ok((run, vec![0]))
            }
            "sample" => {
                let n = program.decoder.int_param("n", 1).max(1) as usize;
                let mut runs: Vec<(u32, QueryRun)> = Vec::with_capacity(n);
                let mut distribution = None;
                for i in 0..n {
                    let r = self.run_single(
                        program,
                        &lm,
                        &mut masker,
                        Pick::sample(options.seed.wrapping_add(i as u64)),
                        options,
                        bindings,
                        i as u32,
                        debug.as_deref_mut(),
                    )?;
                    distribution = distribution.or(r.distribution);
                    runs.extend(r.runs.into_iter().map(|run| (i as u32, run)));
                }
                runs.sort_by(|a, b| {
                    b.1.log_prob
                        .partial_cmp(&a.1.log_prob)
                        .expect("log probs are never NaN")
                });
                let ranking: Vec<u32> = runs.iter().map(|(p, _)| *p).collect();
                let runs: Vec<QueryRun> = runs.into_iter().map(|(_, r)| r).collect();
                Ok((QueryResult { runs, distribution }, ranking))
            }
            "beam" => {
                let n = program.decoder.int_param("n", 1).max(1) as usize;
                let mut opts = options.clone().with_decoder_params(&program.decoder);
                opts.sink = options.sink.with_path(0);
                let beams = run_beam_search(
                    &lm,
                    &self.bpe,
                    &mut masker,
                    program,
                    &self.externals,
                    bindings,
                    n,
                    &opts,
                )?;
                let ranking: Vec<u32> = beams.iter().map(|b| b.path).collect();
                let runs: Vec<QueryRun> = beams
                    .into_iter()
                    .map(|b| QueryRun {
                        trace: b.vm.trace().to_string(),
                        variables: b.vm.scope().clone(),
                        log_prob: b.log_prob,
                        hole_records: b.vm.hole_records().to_vec(),
                    })
                    .collect();
                self.meter
                    .record_decoder_call(self.bpe.token_count(&runs[0].trace) as u64);
                Ok((
                    QueryResult {
                        runs,
                        distribution: None,
                    },
                    ranking,
                ))
            }
            other => Err(Error::compile(
                format!("unknown decoder `{other}` (expected argmax, sample or beam)"),
                program.decoder.span,
            )),
        }
    }

    /// Runs one execution path (argmax or one sample), streamed under
    /// hypothesis id `path` when the options carry an active sink.
    #[allow(clippy::too_many_arguments)]
    fn run_single<L: LanguageModel>(
        &self,
        program: &Program,
        lm: &L,
        masker: &mut Masker,
        mut pick: Pick,
        options: &DecodeOptions,
        bindings: &[(String, Value)],
        path: u32,
        mut debug: Option<&mut DebugTrace>,
    ) -> Result<QueryResult> {
        let mut opts = options.clone().with_decoder_params(&program.decoder);
        opts.sink = options.sink.with_path(path);
        let sink = opts.sink.clone();

        let mut vm = VmState::new(bindings.iter().cloned());
        let mut log_prob = 0.0;
        let mut distribution: Option<Vec<(String, f64)>> = None;
        // Streaming protocol: trace bytes up to `emitted` have been
        // streamed (template text as PromptChunk, hole values via
        // VariableDone), so each suspension emits exactly the template
        // delta the interpreter appended since the last hole.
        let mut emitted = 0usize;
        // Scratch for materialising the rope trace wherever contiguous
        // bytes are needed (tokenisation, constraint evaluation). Reused
        // across holes; the per-token step loop never touches it.
        let mut trace_buf = String::new();

        loop {
            match vm.run(program, &self.externals)? {
                Step::Done => {
                    if sink.is_active() {
                        // prompt_chunk drops empty text, so materialising
                        // only under an active sink keeps the event
                        // stream byte-identical.
                        vm.trace().write_suffix(emitted, &mut trace_buf);
                        sink.prompt_chunk(&trace_buf);
                    }
                    break;
                }
                Step::NeedHole(req) => {
                    if sink.cancelled() {
                        return Err(Error::Cancelled);
                    }
                    if sink.is_active() {
                        vm.trace().write_suffix(emitted, &mut trace_buf);
                        sink.prompt_chunk(&trace_buf);
                    }
                    sink.variable_start(&req.var);
                    let is_distribute = program
                        .distribute
                        .as_ref()
                        .is_some_and(|d| d.var == req.var);
                    if is_distribute {
                        let d = program.distribute.as_ref().expect("checked above");
                        vm.trace().write_into(&mut trace_buf);
                        let dist =
                            self.compute_distribution(lm, &trace_buf, d, vm.scope(), &opts)?;
                        let best = dist
                            .iter()
                            .max_by(|a, b| {
                                a.1.partial_cmp(&b.1).expect("probabilities are never NaN")
                            })
                            .map(|(v, _)| v.clone())
                            .ok_or_else(|| Error::eval("distribute support is empty", d.span))?;
                        if let Some(d) = debug.as_deref_mut() {
                            d.holes.push(HoleTrace {
                                var: req.var.clone(),
                                value: best.clone(),
                                steps: Vec::new(),
                                stopped_by: StopReason::Distribution,
                            });
                        }
                        if sink.is_active() {
                            sink.emit(QueryEvent::Distribution {
                                support: dist.clone(),
                            });
                        }
                        sink.variable_done(&req.var, &best, log_prob);
                        distribution = Some(dist);
                        vm.provide_hole(best);
                        emitted = vm.trace().len();
                    } else {
                        if distribution.is_some() {
                            let d = program.distribute.as_ref().expect("distribution set");
                            return Err(Error::compile(
                                format!(
                                    "distribute variable `{}` must be the last hole of the query",
                                    d.var
                                ),
                                d.span,
                            ));
                        }
                        let mut steps = debug.as_deref_mut().map(|_| Vec::new());
                        vm.trace().write_into(&mut trace_buf);
                        let decoded = decode_hole_traced(
                            lm,
                            &self.bpe,
                            masker,
                            program.where_clause.as_ref(),
                            vm.scope(),
                            &trace_buf,
                            &req.var,
                            &mut pick,
                            &opts,
                            steps.as_mut(),
                        )?;
                        if let Some(d) = debug.as_deref_mut() {
                            d.holes.push(HoleTrace {
                                var: req.var.clone(),
                                value: decoded.value.clone(),
                                steps: steps.unwrap_or_default(),
                                stopped_by: decoded.stopped_by,
                            });
                        }
                        log_prob += decoded.log_prob;
                        sink.variable_done(&req.var, &decoded.value, log_prob);
                        vm.provide_hole(decoded.value);
                        emitted = vm.trace().len();
                    }
                }
            }
        }

        // LMQL decodes the whole scripted interaction in one decoder run:
        // one decoder call billing the final trace once (§6 metrics; cf.
        // the ReAct case study's single decoder call).
        vm.trace().write_into(&mut trace_buf);
        self.meter
            .record_decoder_call(self.bpe.token_count(&trace_buf) as u64);

        Ok(QueryResult {
            runs: vec![QueryRun {
                trace: trace_buf,
                variables: vm.scope().clone(),
                log_prob,
                hole_records: vm.hole_records().to_vec(),
            }],
            distribution,
        })
    }

    /// Rejects `where` clauses calling functions that are neither
    /// built-in nor registered custom operators (a misspelled constraint
    /// would otherwise silently evaluate as *undetermined* and prune
    /// nothing).
    fn validate_where(&self, expr: &lmql_syntax::ast::Expr) -> Result<()> {
        use lmql_syntax::ast::Expr as E;
        match expr {
            E::Call { func, args, span } => {
                if let E::Name { name, .. } = func.as_ref() {
                    if !crate::builtins::BUILTIN_FUNCTIONS.contains(&name.as_str())
                        && !self.custom_ops.contains(name)
                    {
                        return Err(Error::compile(
                            format!(
                                "unknown constraint function `{name}` (register it with \
                                 Runtime::register_constraint_op)"
                            ),
                            *span,
                        ));
                    }
                }
                args.iter().try_for_each(|a| self.validate_where(a))
            }
            E::BoolOp { operands, .. } => operands.iter().try_for_each(|o| self.validate_where(o)),
            E::Not { operand, .. } | E::Neg { operand, .. } => self.validate_where(operand),
            E::Compare { left, right, .. } | E::BinOp { left, right, .. } => {
                self.validate_where(left)?;
                self.validate_where(right)
            }
            E::List { items, .. } => items.iter().try_for_each(|i| self.validate_where(i)),
            E::Index { obj, index, .. } => {
                self.validate_where(obj)?;
                self.validate_where(index)
            }
            E::Slice { obj, lo, hi, .. } => {
                self.validate_where(obj)?;
                if let Some(lo) = lo {
                    self.validate_where(lo)?;
                }
                if let Some(hi) = hi {
                    self.validate_where(hi)?;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Scores every support value as a continuation of the trace and
    /// normalises into a distribution (the `distribute` clause, §3).
    fn compute_distribution<L: LanguageModel>(
        &self,
        lm: &L,
        trace: &str,
        d: &lmql_syntax::ast::Distribute,
        scope: &HashMap<String, Value>,
        options: &DecodeOptions,
    ) -> Result<Vec<(String, f64)>> {
        let support = eval_expr(&d.support, scope, &self.externals)?;
        let values: Vec<String> = match support {
            Value::List(items) => items.iter().map(Value::to_prompt_string).collect(),
            other => {
                return Err(Error::eval(
                    format!(
                        "distribute support must be a list, got {}",
                        other.type_name()
                    ),
                    d.span,
                ))
            }
        };
        if values.is_empty() {
            return Err(Error::eval("distribute support is empty", d.span));
        }

        let mut dist_span = options.tracer.span("query", "distribute");
        dist_span.arg("support", values.len() as u64);
        let log_probs = self.score_continuations(lm, trace, &values, options)?;
        drop(dist_span);
        for v in &values {
            // Each scored value starts its own decoding loop: one decoder
            // call billing prompt + continuation (§6 metrics).
            self.meter
                .record_decoder_call(self.bpe.token_count(&format!("{trace}{v}")) as u64);
        }

        // Softmax over the sequence log-probabilities.
        let max = log_probs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = log_probs.iter().map(|lp| (lp - max).exp()).collect();
        let z: f64 = exps.iter().sum();
        Ok(values
            .into_iter()
            .zip(exps)
            .map(|(v, e)| (v, e / z))
            .collect())
    }

    /// Log-probability of each `text` as a continuation of `trace`,
    /// scored token by token.
    ///
    /// Unlike hole decoding, every context to score is known before any
    /// scoring happens (the support values are fixed), so all of them —
    /// across all values — go to the model as one batch.
    fn score_continuations<L: LanguageModel>(
        &self,
        lm: &L,
        trace: &str,
        texts: &[String],
        options: &DecodeOptions,
    ) -> Result<Vec<f64>> {
        let base = self.bpe.encode(trace);
        // The boundary token may re-tokenise; score from the first
        // divergence between the two encodings.
        let plans: Vec<(Vec<TokenId>, usize)> = texts
            .iter()
            .map(|text| {
                let full = self.bpe.encode(&format!("{trace}{text}"));
                let common = base.iter().zip(&full).take_while(|(a, b)| a == b).count();
                (full, common)
            })
            .collect();
        let contexts: Vec<&[TokenId]> = plans
            .iter()
            .flat_map(|(full, common)| (*common..full.len()).map(move |i| &full[..i]))
            .collect();
        let mut scored = {
            let mut span = options.tracer.span("batch", "dispatch");
            span.arg("contexts", contexts.len() as u64);
            lm.try_score_batch(&contexts).into_iter()
        };
        plans
            .iter()
            .map(|(full, common)| {
                let mut lp = 0.0;
                for &t in &full[*common..] {
                    let logits = scored.next().expect("one score per context")?;
                    lp += logits.softmax(1.0).log_prob(t);
                }
                Ok(lp)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmql_lm::{Branch, Episode, ScriptedLm};

    fn runtime(episodes: Vec<Episode>) -> Runtime {
        let bpe = Arc::new(Bpe::char_level(""));
        let lm = Arc::new(ScriptedLm::new(Arc::clone(&bpe), episodes));
        Runtime::new(lm, bpe)
    }

    #[test]
    fn argmax_end_to_end() {
        let rt = runtime(vec![Episode::plain("Q: hi\nA:", " hello.")]);
        let result = rt
            .run("argmax\n    \"Q: hi\\nA:[ANSWER]\"\nfrom \"m\"\nwhere stops_at(ANSWER, \".\")\n")
            .unwrap();
        assert_eq!(result.best().var_str("ANSWER"), Some(" hello."));
        assert_eq!(result.best().trace, "Q: hi\nA: hello.");
        let u = rt.meter().snapshot();
        assert_eq!(u.decoder_calls, 1);
        assert!(u.model_queries > 0);
        assert!(u.billable_tokens > 0);
    }

    #[test]
    fn sample_returns_n_runs() {
        let rt = runtime(vec![Episode::plain("P:", " out")]);
        let result = rt.run("sample(n=3)\n    \"P:[X]\"\nfrom \"m\"\n").unwrap();
        assert_eq!(result.runs.len(), 3);
        assert_eq!(rt.meter().snapshot().decoder_calls, 3);
    }

    #[test]
    fn distribute_measures_distribution() {
        let rt = runtime(vec![Episode {
            trigger: "best:".to_owned(),
            script: " alpha".to_owned(),
            digressions: vec![],
            branches: vec![Branch {
                at: 0,
                text: " beta".to_owned(),
                weight: 11.4,
            }],
        }]);
        let result = rt
            .run(
                "argmax\n    \"best:[CHOICE]\"\nfrom \"m\"\ndistribute CHOICE in [\" alpha\", \" beta\", \" gamma\"]\n",
            )
            .unwrap();
        let dist = result.distribution.as_ref().unwrap();
        assert_eq!(dist.len(), 3);
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(result.top_distribution_value(), Some(" alpha"));
        let beta = dist.iter().find(|(v, _)| v == " beta").unwrap().1;
        let gamma = dist.iter().find(|(v, _)| v == " gamma").unwrap().1;
        assert!(beta > gamma, "branch weight gives beta real mass");
        // trace completed with the argmax choice
        assert_eq!(result.best().trace, "best: alpha");
        // decoder calls: 1 for the run + 3 for the scored values
        assert_eq!(rt.meter().snapshot().decoder_calls, 4);
    }

    #[test]
    fn query_arguments_bind() {
        let mut rt = runtime(vec![Episode::plain("items: a, b\npick:", " a")]);
        rt.bind("OPTIONS", Value::Str("a, b".into()));
        let result = rt
            .run("argmax\n    \"items: {OPTIONS}\\npick:[C]\"\nfrom \"m\"\n")
            .unwrap();
        assert!(result.best().trace.starts_with("items: a, b"));
    }

    #[test]
    fn externals_in_query() {
        let mut rt = runtime(vec![Episode::plain("calc:", " 2*3")]);
        rt.register_external("calculator", "run", |args| {
            let s = args[0].as_str().ok_or("expected str")?;
            let parts: Vec<&str> = s.trim().split('*').collect();
            let a: i64 = parts[0].parse().map_err(|_| "bad int")?;
            let b: i64 = parts[1].parse().map_err(|_| "bad int")?;
            Ok(Value::Int(a * b))
        });
        let result = rt
            .run(
                "import calculator\nargmax\n    \"calc:[EXPR]\"\n    r = calculator.run(EXPR)\n    \" = {r}\"\nfrom \"m\"\nwhere stops_at(EXPR, \"3\")\n",
            )
            .unwrap();
        assert_eq!(result.best().trace, "calc: 2*3 = 6");
    }

    #[test]
    fn unknown_decoder_is_error() {
        let rt = runtime(vec![Episode::plain("x", "y")]);
        let err = rt.run("magic\n    \"[X]\"\nfrom \"m\"\n").unwrap_err();
        assert!(err.to_string().contains("unknown decoder"));
    }

    #[test]
    fn distribute_must_be_last_hole() {
        let rt = runtime(vec![Episode::plain("t:", " a b")]);
        let err = rt
            .run("argmax\n    \"t:[D] then [MORE]\"\nfrom \"m\"\ndistribute D in [\" a\"]\n")
            .unwrap_err();
        assert!(err.to_string().contains("last hole"));
    }

    #[test]
    fn tracer_records_hole_and_mask_spans() {
        let mut rt = runtime(vec![Episode::plain("Q: hi\nA:", " hello.")]);
        rt.set_tracer(lmql_obs::Tracer::manual());
        let result = rt
            .run("argmax\n    \"Q: hi\\nA:[ANSWER]\"\nfrom \"m\"\nwhere stops_at(ANSWER, \".\")\n")
            .unwrap();
        assert_eq!(result.best().var_str("ANSWER"), Some(" hello."));
        let events = rt.tracer().events();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"parse_compile"));
        assert!(names.contains(&"hole:ANSWER"));
        assert!(names.contains(&"compute_mask"));
        assert!(names.contains(&"follow_eval"));
        assert!(names.contains(&"run:argmax"));
        // Manual clock makes the trace a pure function of the event
        // sequence: a second identical run records identical timings.
        let mut rt2 = runtime(vec![Episode::plain("Q: hi\nA:", " hello.")]);
        rt2.set_tracer(lmql_obs::Tracer::manual());
        rt2.run("argmax\n    \"Q: hi\\nA:[ANSWER]\"\nfrom \"m\"\nwhere stops_at(ANSWER, \".\")\n")
            .unwrap();
        assert_eq!(events, rt2.tracer().events());
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let rt = runtime(vec![Episode::plain("P:", " out")]);
        rt.run("argmax\n    \"P:[X]\"\nfrom \"m\"\n").unwrap();
        assert!(!rt.tracer().is_enabled());
        assert!(rt.tracer().events().is_empty());
    }

    #[test]
    fn loop_with_holes_fig1b_shape() {
        let rt = runtime(vec![Episode::plain(
            "A list of things not to forget when travelling:\n-",
            " keys\n- passport\nThe most important of these is keys.",
        )]);
        let result = rt
            .run(
                r#"
argmax
    "A list of things not to forget when travelling:\n"
    things = []
    for i in range(2):
        "-[THING]"
        things.append(THING)
    "The most important of these is[ITEM]"
from "m"
where stops_at(THING, "\n") and stops_at(ITEM, ".")
"#,
            )
            .unwrap();
        let things = result.best().variables.get("things").unwrap();
        assert_eq!(
            things,
            &Value::List(vec![" keys\n".into(), " passport\n".into()])
        );
        assert_eq!(result.best().var_str("ITEM"), Some(" keys."));
        assert!(result
            .best()
            .trace
            .ends_with("The most important of these is keys."));
    }
}
