//! The top-level query runner: parse → compile → execute → results.

use crate::beam::run_beam_search;
use crate::constraints::{eval_expr, AutomataCache, CustomOp, CustomOps, MaskMemo, Masker};
use crate::debug::{DebugTrace, HoleTrace, StopReason};
use crate::decode::{decode_hole_traced, DecodeOptions, DecodedValue, Pick};
use crate::interp::{Externals, HoleRecord, Step, VmState};
use crate::program::Instr;
use crate::stream::{EventSink, QueryEvent, StreamSink};
use crate::tool::{FnTool, Tool, ToolRegistry};
use crate::{compile_source, Error, Program, QueryRequest, Result, Value};
use lmql_lm::{CachedLm, LanguageModel, MeteredLm, RetryLm, UsageMeter};
use lmql_tokenizer::{Bpe, TokenId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

/// One completed execution of a query (one sample / one beam).
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// The full interaction trace (prompt text with hole values filled).
    pub trace: String,
    /// Final variable scope, including all hole variables.
    pub variables: HashMap<String, Value>,
    /// Cumulative log-probability of the decoded tokens.
    pub log_prob: f64,
    /// Where each hole value sits in the trace, in decode order.
    pub hole_records: Vec<HoleRecord>,
}

impl QueryRun {
    /// String value of a variable, if present and a string.
    pub fn var_str(&self, name: &str) -> Option<&str> {
        self.variables.get(name).and_then(Value::as_str)
    }
}

/// The result of running a query: `n` interaction traces (1 for argmax)
/// and, for queries with a `distribute` clause, the measured distribution.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Completed runs, best first.
    pub runs: Vec<QueryRun>,
    /// `distribute` clause output: support values (prompt-rendered) with
    /// their normalised probabilities, in support order.
    pub distribution: Option<Vec<(String, f64)>>,
}

impl QueryResult {
    /// The best run.
    ///
    /// # Panics
    ///
    /// Never panics for results returned by [`Runtime::run`]: there is
    /// always at least one run.
    pub fn best(&self) -> &QueryRun {
        &self.runs[0]
    }

    /// The highest-probability value of the distribution, if one was
    /// computed.
    pub fn top_distribution_value(&self) -> Option<&str> {
        let dist = self.distribution.as_ref()?;
        dist.iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("probabilities are never NaN"))
            .map(|(v, _)| v.as_str())
    }
}

/// Limits on the `subquery(...)` tree a running query may spawn
/// (DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubqueryLimits {
    /// Maximum nesting depth: the root query runs at depth 0, and a
    /// query at depth `d` may spawn children only while
    /// `d < max_depth`. `0` disables `subquery(...)` entirely.
    pub max_depth: u32,
    /// Cumulative token budget for the whole subquery tree (every token
    /// decoded by any descendant counts). When it runs out, in-flight
    /// children stop cooperatively at their next token boundary and new
    /// spawns are rejected. `None` means unlimited.
    pub max_tokens: Option<u64>,
}

impl Default for SubqueryLimits {
    fn default() -> Self {
        SubqueryLimits {
            max_depth: 4,
            max_tokens: None,
        }
    }
}

// Child stream paths are allocated from this base upward, so they never
// collide with the parent run's own hypothesis ids (samples and beam
// forks mint small consecutive ids) and so nested subquery sinks can
// recognise an already-globalised path and pass it through unmapped.
use crate::stream::SUBQUERY_PATH_BASE;

/// Executes LMQL queries against a language model.
///
/// # Example
///
/// ```
/// use lmql::Runtime;
/// use lmql_lm::{Episode, ScriptedLm};
/// use lmql_tokenizer::Bpe;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), lmql::Error> {
/// let bpe = Arc::new(Bpe::char_level(""));
/// let lm = Arc::new(ScriptedLm::new(
///     Arc::clone(&bpe),
///     [lmql_lm::Episode::plain("Say hi:", " hello.")],
/// ));
/// let runtime = Runtime::new(lm, bpe);
/// let result = runtime.run(r#"
/// argmax
///     "Say hi:[GREETING]"
/// from "scripted"
/// where stops_at(GREETING, ".")
/// "#)?;
/// assert_eq!(result.best().var_str("GREETING"), Some(" hello."));
/// # Ok(())
/// # }
/// ```
pub struct Runtime {
    lm: Arc<dyn LanguageModel>,
    bpe: Arc<Bpe>,
    externals: Externals,
    tools: ToolRegistry,
    custom_ops: CustomOps,
    bindings: Vec<(String, Value)>,
    meter: UsageMeter,
    options: DecodeOptions,
    mask_memo: Option<Arc<MaskMemo>>,
    automata_cache: Option<Arc<AutomataCache>>,
    metrics: Option<lmql_obs::Registry>,
    subqueries: SubqueryLimits,
    /// Set on the runtime a subquery call builds for its child: the
    /// shared tree state (budget, path allocator, …) plus the child's
    /// depth. `None` on user-constructed runtimes (the tree root).
    subquery_ctx: Option<(Arc<SubqueryShared>, u32)>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("options", &self.options)
            .field("bindings", &self.bindings)
            .finish_non_exhaustive()
    }
}

impl Runtime {
    /// A runtime over a model and its tokenizer.
    ///
    /// # Panics
    ///
    /// Panics if the model's vocabulary size does not match the
    /// tokenizer's (they must be the same vocabulary).
    pub fn new(lm: Arc<dyn LanguageModel>, bpe: Arc<Bpe>) -> Self {
        assert_eq!(
            lm.vocab().len(),
            bpe.vocab().len(),
            "model and tokenizer vocabulary mismatch"
        );
        Runtime {
            lm,
            bpe,
            externals: Externals::new(),
            tools: ToolRegistry::new(),
            custom_ops: CustomOps::new(),
            bindings: Vec::new(),
            meter: UsageMeter::new(),
            options: DecodeOptions::default(),
            mask_memo: None,
            automata_cache: None,
            metrics: None,
            subqueries: SubqueryLimits::default(),
            subquery_ctx: None,
        }
    }

    /// Replaces the decoding options.
    pub fn with_options(mut self, options: DecodeOptions) -> Self {
        self.options = options;
        self
    }

    /// Mutable access to the decoding options.
    pub fn options_mut(&mut self) -> &mut DecodeOptions {
        &mut self.options
    }

    /// The usage meter recording §6 metrics for every run.
    pub fn meter(&self) -> &UsageMeter {
        &self.meter
    }

    /// Installs a structured trace recorder. Every subsequent run records
    /// parse/compile, per-hole decode, mask computation, FollowMap
    /// evaluation and batch-dispatch spans into it. The default tracer is
    /// disabled and free.
    pub fn set_tracer(&mut self, tracer: lmql_obs::Tracer) {
        self.options.tracer = tracer;
    }

    /// Installs a shared mask memo (see [`MaskMemo`]). Without one, each
    /// run's masker creates a private memo per
    /// [`MaskConfig`](crate::constraints::MaskConfig); a shared memo
    /// additionally carries mask reuse across runs and across runtimes
    /// that mask over the same tokenizer (the engine does this for its
    /// per-query runtimes).
    pub fn set_mask_memo(&mut self, memo: Arc<MaskMemo>) {
        self.mask_memo = Some(memo);
    }

    /// Installs a shared constraint-automata cache (see
    /// [`AutomataCache`]). Without one, each run's masker lazily creates
    /// a private cache; a shared cache carries compiled automata and
    /// their per-state masks across runs and across runtimes that mask
    /// over the same tokenizer (the engine does this for its per-query
    /// runtimes).
    pub fn set_automata_cache(&mut self, cache: Arc<AutomataCache>) {
        self.automata_cache = Some(cache);
    }

    /// Installs a metrics registry: every subsequent run reports
    /// `mask.cache.hit`, `mask.cache.miss`,
    /// `mask.scan.parallel_chunks`, `holes.parallel` and
    /// `engine.subquery.*` counters into it.
    pub fn set_metrics_registry(&mut self, registry: lmql_obs::Registry) {
        self.metrics = Some(registry);
    }

    /// Replaces the limits on `subquery(...)` trees spawned by queries
    /// run on this runtime (DESIGN.md §14).
    pub fn set_subquery_limits(&mut self, limits: SubqueryLimits) {
        self.subqueries = limits;
    }

    /// The current `subquery(...)` limits.
    pub fn subquery_limits(&self) -> SubqueryLimits {
        self.subqueries
    }

    /// The installed trace recorder (disabled unless [`Self::set_tracer`]
    /// was called).
    pub fn tracer(&self) -> &lmql_obs::Tracer {
        &self.options.tracer
    }

    /// Registers an external function callable as `module.func(args)`
    /// (after `import module` in the query).
    ///
    /// **Deprecated** in favour of [`Runtime::register_tool`]: this is
    /// now a thin adapter that wraps the closure in an [`FnTool`] and
    /// registers it, so the call appears in [`Runtime::tools`] under the
    /// name `"module.func"` and is billed like any other tool. Kept for
    /// one release; prefer implementing [`Tool`] (or constructing an
    /// [`FnTool`] directly) so the capability carries a schema.
    pub fn register_external<F>(&mut self, module: &str, func: &str, f: F)
    where
        F: Fn(&[Value]) -> std::result::Result<Value, String> + Send + Sync + 'static,
    {
        self.register_tool(Arc::new(FnTool::new(module, func, f)));
    }

    /// Registers a first-class [`Tool`]: every function in its schema
    /// becomes callable as `module.func(args…)` (after `import module`
    /// in the query), with per-tool call accounting in
    /// [`Runtime::tools`]. Replaces any tool previously registered under
    /// the same [`Tool::name`].
    pub fn register_tool(&mut self, tool: Arc<dyn Tool>) {
        let single = ToolRegistry::new().with(tool);
        single.install(&mut self.externals);
        self.tools.merge(&single);
    }

    /// Installs a whole [`ToolRegistry`], replacing this runtime's
    /// registry (the engine seeds worker runtimes this way, so replicas
    /// and the parent share call counters). Functions of previously
    /// registered tools remain callable unless shadowed by a same-named
    /// `module.func` in `tools`.
    pub fn set_tools(&mut self, tools: ToolRegistry) {
        tools.install(&mut self.externals);
        self.tools = tools;
    }

    /// The registered tools and their call accounting.
    pub fn tools(&self) -> &ToolRegistry {
        &self.tools
    }

    /// Registers a user-defined constraint operator (Appendix A.1),
    /// callable from `where` clauses as `name(args…)`.
    ///
    /// # Panics
    ///
    /// Panics if the name collides with a built-in function.
    pub fn register_constraint_op(&mut self, name: &str, op: Arc<dyn CustomOp>) {
        self.custom_ops.register(name, op);
    }

    /// Binds a query argument (visible as a variable in the query body,
    /// like `OPTIONS` in the paper's Fig. 10).
    pub fn bind(&mut self, name: &str, value: Value) {
        self.bindings.retain(|(n, _)| n != name);
        self.bindings.push((name.to_owned(), value));
    }

    /// Removes all query arguments.
    pub fn clear_bindings(&mut self) {
        self.bindings.clear();
    }

    /// Parses, compiles and runs LMQL source.
    ///
    /// # Errors
    ///
    /// Syntax, compile, evaluation and decoding errors.
    pub fn run(&self, source: &str) -> Result<QueryResult> {
        let program = {
            let _span = self.tracer().span("query", "parse_compile");
            compile_source(source)?
        };
        self.run_program(&program)
    }

    /// Like [`Runtime::run`], additionally recording a per-step decode
    /// trace for the debugger (Appendix A.3). Tracing covers `argmax` and
    /// `sample` runs; beam search returns an empty trace.
    ///
    /// # Errors
    ///
    /// See [`Runtime::run`].
    pub fn run_traced(&self, source: &str) -> Result<(QueryResult, DebugTrace)> {
        let program = {
            let _span = self.tracer().span("query", "parse_compile");
            compile_source(source)?
        };
        let mut debug = DebugTrace::default();
        let result = self.run_program_inner(&program, Some(&mut debug))?;
        Ok((result, debug))
    }

    /// Runs a pre-compiled program.
    ///
    /// # Errors
    ///
    /// See [`Runtime::run`].
    pub fn run_program(&self, program: &Program) -> Result<QueryResult> {
        self.run_program_inner(program, None)
    }

    /// Like [`Runtime::run`], streaming [`QueryEvent`]s into `sink` as
    /// the query executes (DESIGN.md §11). The returned result is the
    /// same as [`Runtime::run`]'s — the stream is an *additional* view,
    /// and reassembling it reproduces the result byte-identically.
    ///
    /// # Errors
    ///
    /// See [`Runtime::run`]; additionally [`Error::Cancelled`] when the
    /// sink reports cancellation mid-run.
    pub fn run_streamed(&self, source: &str, sink: StreamSink) -> Result<QueryResult> {
        self.execute(&QueryRequest::new(source).stream(sink))
    }

    /// Executes a [`QueryRequest`]: the consolidated entry point behind
    /// which [`Runtime::run`] and friends are thin shims. Request
    /// settings override this runtime's defaults; unset fields inherit
    /// them.
    ///
    /// # Errors
    ///
    /// See [`Runtime::run`].
    pub fn execute(&self, request: &QueryRequest) -> Result<QueryResult> {
        let options = request.apply_to(&self.options);
        let program = {
            let _span = options.tracer.span("query", "parse_compile");
            compile_source(request.source())?
        };
        // A per-request retry policy wraps the model for this call only.
        let lm: Arc<dyn LanguageModel> = match request.retry_policy() {
            Some(policy) => Arc::new(RetryLm::new(Arc::clone(&self.lm), policy)),
            None => Arc::clone(&self.lm),
        };
        let bindings: Vec<(String, Value)> = if request.bindings().is_empty() {
            self.bindings.clone()
        } else {
            let mut merged = self.bindings.clone();
            for (name, value) in request.bindings() {
                merged.retain(|(n, _)| n != name);
                merged.push((name.clone(), value.clone()));
            }
            merged
        };
        if request.tool_registry().is_empty() {
            self.run_program_full(&program, &lm, &options, &bindings, None)
        } else {
            // Per-request tools: run on a scoped fork of this runtime
            // with the request's registry merged in, so the additions
            // are visible to this call only (subqueries included — the
            // fork's externals seed the subquery tree).
            let scoped = self.fork_with_tools(request.tool_registry());
            scoped.run_program_full(&program, &lm, &options, &bindings, None)
        }
    }

    /// A scoped fork of this runtime with `extra` tools merged in. All
    /// shared state (meter, memo, caches, metrics) is shared with the
    /// original; only the externals/tool surface differs.
    fn fork_with_tools(&self, extra: &ToolRegistry) -> Runtime {
        let mut externals = self.externals.clone();
        extra.install(&mut externals);
        let mut tools = self.tools.clone();
        tools.merge(extra);
        Runtime {
            lm: Arc::clone(&self.lm),
            bpe: Arc::clone(&self.bpe),
            externals,
            tools,
            custom_ops: self.custom_ops.clone(),
            bindings: self.bindings.clone(),
            meter: self.meter.clone(),
            options: self.options.clone(),
            mask_memo: self.mask_memo.clone(),
            automata_cache: self.automata_cache.clone(),
            metrics: self.metrics.clone(),
            subqueries: self.subqueries,
            subquery_ctx: self.subquery_ctx.clone(),
        }
    }

    fn run_program_inner(
        &self,
        program: &Program,
        debug: Option<&mut DebugTrace>,
    ) -> Result<QueryResult> {
        self.run_program_full(program, &self.lm, &self.options, &self.bindings, debug)
    }

    /// The full execution path: dispatches on the decoder and, when the
    /// options carry an active stream sink, brackets the run with the
    /// terminal events (`Usage` + `Done` on success, `Error` on failure).
    fn run_program_full(
        &self,
        program: &Program,
        lm: &Arc<dyn LanguageModel>,
        options: &DecodeOptions,
        bindings: &[(String, Value)],
        debug: Option<&mut DebugTrace>,
    ) -> Result<QueryResult> {
        let sink = options.sink.clone();
        let outcome = self.run_program_dispatch(program, lm, options, bindings, debug);
        if let Some(registry) = &self.metrics {
            if !self.tools.is_empty() {
                self.tools.report_metrics(registry);
            }
        }
        if sink.is_active() {
            match &outcome {
                Ok((_, ranking)) => {
                    let u = self.meter.snapshot();
                    sink.emit(QueryEvent::Usage {
                        model_queries: u.model_queries,
                        decoder_calls: u.decoder_calls,
                        billable_tokens: u.billable_tokens,
                    });
                    sink.emit(QueryEvent::Done {
                        ranking: ranking.clone(),
                    });
                }
                Err(e) => sink.emit(QueryEvent::Error {
                    message: e.to_string(),
                }),
            }
        }
        outcome.map(|(result, _)| result)
    }

    /// Runs the decoder, returning the result plus the surviving path
    /// ids best-first (the streaming `Done` ranking; `runs[i]` was
    /// streamed under path `ranking[i]`).
    fn run_program_dispatch(
        &self,
        program: &Program,
        lm: &Arc<dyn LanguageModel>,
        options: &DecodeOptions,
        bindings: &[(String, Value)],
        mut debug: Option<&mut DebugTrace>,
    ) -> Result<(QueryResult, Vec<u32>)> {
        // One shared score cache per run: lockstep samples and beams that
        // revisit identical contexts pay for the model only once, and
        // cache hits are not billed as model queries.
        if let Some(w) = &program.where_clause {
            self.validate_where(w)?;
        }
        // Subquery context: the tree-shared state (budget, path
        // allocator) is created at the root — a child runtime carries the
        // root's via `subquery_ctx` — and captures the *request-level*
        // model (retry wrapping and all) so children score like their
        // parent. Built before the per-run cache wrap: each child run
        // gets its own fresh CachedLm, exactly like an isolated run.
        let sub: Option<(Arc<SubqueryShared>, u32)> = if program_uses_subquery(program) {
            Some(match &self.subquery_ctx {
                Some((shared, depth)) => (Arc::clone(shared), *depth),
                None => (
                    Arc::new(SubqueryShared {
                        lm: Arc::clone(lm),
                        bpe: Arc::clone(&self.bpe),
                        externals: self.externals.clone(),
                        tools: self.tools.clone(),
                        custom_ops: self.custom_ops.clone(),
                        meter: self.meter.clone(),
                        options: {
                            let mut o = options.clone();
                            o.sink = StreamSink::none();
                            o
                        },
                        mask_memo: self.mask_memo.clone(),
                        automata_cache: self.automata_cache.clone(),
                        metrics: self.metrics.clone(),
                        limits: self.subqueries,
                        budget: self
                            .subqueries
                            .max_tokens
                            .map(|n| Arc::new(AtomicI64::new(n.min(i64::MAX as u64) as i64))),
                        path_alloc: Arc::new(AtomicU32::new(SUBQUERY_PATH_BASE)),
                    }),
                    0,
                ),
            })
        } else {
            None
        };
        let lm = CachedLm::new(MeteredLm::new(Arc::clone(lm), self.meter.clone()));
        let mut masker = self.make_masker(options);
        let _query_span = options
            .tracer
            .span_lazy("query", || format!("run:{}", program.decoder.name));

        match program.decoder.name.as_str() {
            "argmax" => {
                let run = self.run_single(
                    program,
                    &lm,
                    &mut masker,
                    Pick::argmax(),
                    options,
                    bindings,
                    0,
                    sub.as_ref(),
                    debug.take(),
                )?;
                Ok((run, vec![0]))
            }
            "sample" => {
                let n = program.decoder.int_param("n", 1).max(1) as usize;
                let mut runs: Vec<(u32, QueryRun)> = Vec::with_capacity(n);
                let mut distribution = None;
                for i in 0..n {
                    let r = self.run_single(
                        program,
                        &lm,
                        &mut masker,
                        Pick::sample(options.seed.wrapping_add(i as u64)),
                        options,
                        bindings,
                        i as u32,
                        sub.as_ref(),
                        debug.as_deref_mut(),
                    )?;
                    distribution = distribution.or(r.distribution);
                    runs.extend(r.runs.into_iter().map(|run| (i as u32, run)));
                }
                runs.sort_by(|a, b| {
                    b.1.log_prob
                        .partial_cmp(&a.1.log_prob)
                        .expect("log probs are never NaN")
                });
                let ranking: Vec<u32> = runs.iter().map(|(p, _)| *p).collect();
                let runs: Vec<QueryRun> = runs.into_iter().map(|(_, r)| r).collect();
                Ok((QueryResult { runs, distribution }, ranking))
            }
            "beam" => {
                let n = program.decoder.int_param("n", 1).max(1) as usize;
                let mut opts = options.clone().with_decoder_params(&program.decoder);
                opts.sink = options.sink.with_path(0);
                // Beams share one external registry; subqueries spawned
                // by beam statements report under the run's root path.
                let externals = self.effective_externals(sub.as_ref(), &opts.sink);
                let beams = run_beam_search(
                    &lm,
                    &self.bpe,
                    &mut masker,
                    program,
                    externals.as_ref(),
                    bindings,
                    n,
                    &opts,
                )?;
                let ranking: Vec<u32> = beams.iter().map(|b| b.path).collect();
                let runs: Vec<QueryRun> = beams
                    .into_iter()
                    .map(|b| QueryRun {
                        trace: b.vm.trace().to_string(),
                        variables: b.vm.scope().clone(),
                        log_prob: b.log_prob,
                        hole_records: b.vm.hole_records().to_vec(),
                    })
                    .collect();
                self.meter
                    .record_decoder_call(self.bpe.token_count(&runs[0].trace) as u64);
                Ok((
                    QueryResult {
                        runs,
                        distribution: None,
                    },
                    ranking,
                ))
            }
            other => Err(Error::compile(
                format!("unknown decoder `{other}` (expected argmax, sample or beam)"),
                program.decoder.span,
            )),
        }
    }

    /// Builds a masker configured like this runtime: engine, custom ops,
    /// tracer, mask tuning, plus any shared memo / automata cache /
    /// metrics registry. One per run normally; parallel hole decoding
    /// builds one per member thread (they share the memo and cache
    /// through the installed `Arc`s).
    fn make_masker(&self, options: &DecodeOptions) -> Masker {
        let mut masker = Masker::new(options.engine, Arc::clone(&self.bpe) as _)
            .with_custom_ops(self.custom_ops.clone())
            .with_tracer(options.tracer.clone())
            .with_config(options.mask);
        if let Some(memo) = &self.mask_memo {
            masker = masker.with_memo(Arc::clone(memo));
        }
        if let Some(cache) = &self.automata_cache {
            masker = masker.with_automata_cache(Arc::clone(cache));
        }
        if let Some(registry) = &self.metrics {
            masker = masker.with_metrics(registry);
        }
        masker
    }

    /// The externals a run executes against: the user-registered set,
    /// plus — when the program calls `subquery(...)` — the injected
    /// `__runtime.subquery` implementation bound to this run's sink (so
    /// nested events report under the caller's path id).
    fn effective_externals(
        &self,
        sub: Option<&(Arc<SubqueryShared>, u32)>,
        sink: &StreamSink,
    ) -> std::borrow::Cow<'_, Externals> {
        match sub {
            Some((shared, depth)) => {
                let mut externals = self.externals.clone();
                install_subquery(&mut externals, Arc::clone(shared), *depth, sink.clone());
                std::borrow::Cow::Owned(externals)
            }
            None => std::borrow::Cow::Borrowed(&self.externals),
        }
    }

    /// Runs one execution path (argmax or one sample), streamed under
    /// hypothesis id `path` when the options carry an active sink.
    #[allow(clippy::too_many_arguments)]
    fn run_single<L: LanguageModel + Sync>(
        &self,
        program: &Program,
        lm: &L,
        masker: &mut Masker,
        mut pick: Pick,
        options: &DecodeOptions,
        bindings: &[(String, Value)],
        path: u32,
        sub: Option<&(Arc<SubqueryShared>, u32)>,
        mut debug: Option<&mut DebugTrace>,
    ) -> Result<QueryResult> {
        let mut opts = options.clone().with_decoder_params(&program.decoder);
        opts.sink = options.sink.with_path(path);
        let sink = opts.sink.clone();
        let externals = self.effective_externals(sub, &sink);
        let externals = externals.as_ref();

        // Program-level parallelism (DESIGN.md §14): argmax only (a
        // sample threads one RNG through its holes in order), never under
        // the step debugger or an enabled tracer (span interleaving must
        // stay deterministic), and only when the analyzer finds a
        // multi-hole independent group. Buffered members are joined —
        // replayed through the exact sequential event protocol — when
        // the interpreter reaches them.
        let plan = if matches!(pick, Pick::Argmax)
            && opts.parallel_holes
            && debug.is_none()
            && !opts.tracer.is_enabled()
        {
            crate::parallel::plan_holes(program).filter(|p| p.max_group_len() > 1)
        } else {
            None
        };
        let mut pending: HashMap<String, PendingHole> = HashMap::new();

        let mut vm = VmState::new(bindings.iter().cloned());
        let mut log_prob = 0.0;
        let mut distribution: Option<Vec<(String, f64)>> = None;
        // Streaming protocol: trace bytes up to `emitted` have been
        // streamed (template text as PromptChunk, hole values via
        // VariableDone), so each suspension emits exactly the template
        // delta the interpreter appended since the last hole.
        let mut emitted = 0usize;
        // Scratch for materialising the rope trace wherever contiguous
        // bytes are needed (tokenisation, constraint evaluation). Reused
        // across holes; the per-token step loop never touches it.
        let mut trace_buf = String::new();

        loop {
            let step = match vm.run(program, externals) {
                Ok(step) => step,
                // Cancellation wins over whatever error the abort caused
                // (a cancelled subquery surfaces as an external-call
                // error; the canonical result of cancelling is
                // `Error::Cancelled`).
                Err(e) => {
                    if sink.cancelled() {
                        return Err(Error::Cancelled);
                    }
                    return Err(e);
                }
            };
            match step {
                Step::Done => {
                    if sink.is_active() {
                        // prompt_chunk drops empty text, so materialising
                        // only under an active sink keeps the event
                        // stream byte-identical.
                        vm.trace().write_suffix(emitted, &mut trace_buf);
                        sink.prompt_chunk(&trace_buf);
                    }
                    break;
                }
                Step::NeedHole(req) => {
                    if sink.cancelled() {
                        return Err(Error::Cancelled);
                    }
                    if sink.is_active() {
                        vm.trace().write_suffix(emitted, &mut trace_buf);
                        sink.prompt_chunk(&trace_buf);
                    }
                    sink.variable_start(&req.var);
                    let is_distribute = program
                        .distribute
                        .as_ref()
                        .is_some_and(|d| d.var == req.var);
                    if is_distribute {
                        let d = program.distribute.as_ref().expect("checked above");
                        vm.trace().write_into(&mut trace_buf);
                        let dist =
                            self.compute_distribution(lm, &trace_buf, d, vm.scope(), &opts)?;
                        let best = dist
                            .iter()
                            .max_by(|a, b| {
                                a.1.partial_cmp(&b.1).expect("probabilities are never NaN")
                            })
                            .map(|(v, _)| v.clone())
                            .ok_or_else(|| Error::eval("distribute support is empty", d.span))?;
                        if let Some(d) = debug.as_deref_mut() {
                            d.holes.push(HoleTrace {
                                var: req.var.clone(),
                                value: best.clone(),
                                steps: Vec::new(),
                                stopped_by: StopReason::Distribution,
                            });
                        }
                        if sink.is_active() {
                            sink.emit(QueryEvent::Distribution {
                                support: dist.clone(),
                            });
                        }
                        sink.variable_done(&req.var, &best, log_prob);
                        distribution = Some(dist);
                        vm.provide_hole(best);
                        emitted = vm.trace().len();
                    } else {
                        if distribution.is_some() {
                            let d = program.distribute.as_ref().expect("distribution set");
                            return Err(Error::compile(
                                format!(
                                    "distribute variable `{}` must be the last hole of the query",
                                    d.var
                                ),
                                d.span,
                            ));
                        }
                        if !pending.contains_key(&req.var) {
                            if let Some(plan) = &plan {
                                if let Some(members) = plan.parallel_suffix(&req.var) {
                                    self.decode_group(
                                        program,
                                        &vm,
                                        members,
                                        lm,
                                        &opts,
                                        externals,
                                        &mut pending,
                                    );
                                }
                            }
                        }
                        let decoded = match pending.remove(&req.var) {
                            Some(member) => {
                                // Join: replay this member's buffered
                                // token deltas at its sequential position
                                // (an error propagates after them, just
                                // as a live decode would).
                                for (text, lp) in &member.deltas {
                                    sink.token_delta(&req.var, text, *lp);
                                }
                                member.result?
                            }
                            None => {
                                let mut steps = debug.as_deref_mut().map(|_| Vec::new());
                                vm.trace().write_into(&mut trace_buf);
                                let decoded = decode_hole_traced(
                                    lm,
                                    &self.bpe,
                                    masker,
                                    program.where_clause.as_ref(),
                                    vm.scope(),
                                    &trace_buf,
                                    &req.var,
                                    &mut pick,
                                    &opts,
                                    steps.as_mut(),
                                )?;
                                if let Some(d) = debug.as_deref_mut() {
                                    d.holes.push(HoleTrace {
                                        var: req.var.clone(),
                                        value: decoded.value.clone(),
                                        steps: steps.unwrap_or_default(),
                                        stopped_by: decoded.stopped_by,
                                    });
                                }
                                decoded
                            }
                        };
                        log_prob += decoded.log_prob;
                        sink.variable_done(&req.var, &decoded.value, log_prob);
                        vm.provide_hole(decoded.value);
                        emitted = vm.trace().len();
                    }
                }
            }
        }

        // LMQL decodes the whole scripted interaction in one decoder run:
        // one decoder call billing the final trace once (§6 metrics; cf.
        // the ReAct case study's single decoder call).
        vm.trace().write_into(&mut trace_buf);
        self.meter
            .record_decoder_call(self.bpe.token_count(&trace_buf) as u64);

        Ok(QueryResult {
            runs: vec![QueryRun {
                trace: trace_buf,
                variables: vm.scope().clone(),
                log_prob,
                hole_records: vm.hole_records().to_vec(),
            }],
            distribution,
        })
    }

    /// Decodes the mutually independent holes `members` (a parallel
    /// group suffix starting at the current suspension) concurrently,
    /// buffering each member's outcome into `pending`.
    ///
    /// Each member's prompt context is gathered by cloning the suspended
    /// VM and resuming it with empty placeholder values: the context is
    /// then exactly the sequential one with unresolved sibling values
    /// omitted (the futures-join semantics of DESIGN.md §14), and its
    /// decode scope drops every group member's name so sibling-value
    /// conjuncts stay *undetermined* — the same state sequential
    /// decoding is in for holes not yet reached. If the speculative
    /// resume does anything unexpected (a statement errors on a
    /// placeholder, the next suspension isn't the expected member), the
    /// group is abandoned and `pending` stays empty — the caller falls
    /// back to plain sequential decoding.
    #[allow(clippy::too_many_arguments)]
    fn decode_group<L: LanguageModel + Sync>(
        &self,
        program: &Program,
        vm: &VmState,
        members: &[String],
        lm: &L,
        opts: &DecodeOptions,
        externals: &Externals,
        pending: &mut HashMap<String, PendingHole>,
    ) {
        // Gather phase: one (trace, scope) job per member, walked off a
        // speculative clone. The analyzer guarantees no external call
        // sits between members, so the resume re-runs only pure
        // statements (on the clone's scope — the real VM re-executes
        // them authoritatively at join time).
        let mut jobs: Vec<(String, String, HashMap<String, Value>)> =
            Vec::with_capacity(members.len());
        let mut clone = vm.clone();
        let mut buf = String::new();
        for (i, var) in members.iter().enumerate() {
            clone.trace().write_into(&mut buf);
            let mut scope = clone.scope().clone();
            for m in members {
                scope.remove(m.as_str());
            }
            jobs.push((var.clone(), buf.clone(), scope));
            if i + 1 < members.len() {
                clone.provide_hole(String::new());
                match clone.run(program, externals) {
                    Ok(Step::NeedHole(next)) if next.var == members[i + 1] => {}
                    _ => return,
                }
            }
        }

        let parent_sink = &opts.sink;
        let outcomes: Vec<(String, PendingHole)> = std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .iter()
                .map(|(var, trace, job_scope)| {
                    scope.spawn(move || {
                        let buffer = Arc::new(GroupBufferSink {
                            parent: parent_sink.clone(),
                            deltas: Mutex::new(Vec::new()),
                        });
                        let mut member_opts = opts.clone();
                        member_opts.sink = StreamSink::new(Arc::clone(&buffer) as _);
                        let mut masker = self.make_masker(opts);
                        let mut pick = Pick::argmax();
                        let result = decode_hole_traced(
                            lm,
                            &self.bpe,
                            &mut masker,
                            program.where_clause.as_ref(),
                            job_scope,
                            trace,
                            var,
                            &mut pick,
                            &member_opts,
                            None,
                        );
                        let deltas = std::mem::take(
                            &mut *buffer.deltas.lock().expect("delta buffer poisoned"),
                        );
                        (var.clone(), PendingHole { result, deltas })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        for (var, outcome) in outcomes {
            pending.insert(var, outcome);
        }
        if let Some(registry) = &self.metrics {
            registry.counter("holes.parallel").add(members.len() as u64);
        }
    }

    /// Rejects `where` clauses calling functions that are neither
    /// built-in nor registered custom operators (a misspelled constraint
    /// would otherwise silently evaluate as *undetermined* and prune
    /// nothing).
    fn validate_where(&self, expr: &lmql_syntax::ast::Expr) -> Result<()> {
        use lmql_syntax::ast::Expr as E;
        match expr {
            E::Call { func, args, span } => {
                if let E::Name { name, .. } = func.as_ref() {
                    if !crate::builtins::BUILTIN_FUNCTIONS.contains(&name.as_str())
                        && !self.custom_ops.contains(name)
                    {
                        return Err(Error::compile(
                            format!(
                                "unknown constraint function `{name}` (register it with \
                                 Runtime::register_constraint_op)"
                            ),
                            *span,
                        ));
                    }
                }
                args.iter().try_for_each(|a| self.validate_where(a))
            }
            E::BoolOp { operands, .. } => operands.iter().try_for_each(|o| self.validate_where(o)),
            E::Not { operand, .. } | E::Neg { operand, .. } => self.validate_where(operand),
            E::Compare { left, right, .. } | E::BinOp { left, right, .. } => {
                self.validate_where(left)?;
                self.validate_where(right)
            }
            E::List { items, .. } => items.iter().try_for_each(|i| self.validate_where(i)),
            E::Index { obj, index, .. } => {
                self.validate_where(obj)?;
                self.validate_where(index)
            }
            E::Slice { obj, lo, hi, .. } => {
                self.validate_where(obj)?;
                if let Some(lo) = lo {
                    self.validate_where(lo)?;
                }
                if let Some(hi) = hi {
                    self.validate_where(hi)?;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Scores every support value as a continuation of the trace and
    /// normalises into a distribution (the `distribute` clause, §3).
    fn compute_distribution<L: LanguageModel>(
        &self,
        lm: &L,
        trace: &str,
        d: &lmql_syntax::ast::Distribute,
        scope: &HashMap<String, Value>,
        options: &DecodeOptions,
    ) -> Result<Vec<(String, f64)>> {
        let support = eval_expr(&d.support, scope, &self.externals)?;
        let values: Vec<String> = match support {
            Value::List(items) => items.iter().map(Value::to_prompt_string).collect(),
            other => {
                return Err(Error::eval(
                    format!(
                        "distribute support must be a list, got {}",
                        other.type_name()
                    ),
                    d.span,
                ))
            }
        };
        if values.is_empty() {
            return Err(Error::eval("distribute support is empty", d.span));
        }

        let mut dist_span = options.tracer.span("query", "distribute");
        dist_span.arg("support", values.len() as u64);
        let log_probs = self.score_continuations(lm, trace, &values, options)?;
        drop(dist_span);
        for v in &values {
            // Each scored value starts its own decoding loop: one decoder
            // call billing prompt + continuation (§6 metrics).
            self.meter
                .record_decoder_call(self.bpe.token_count(&format!("{trace}{v}")) as u64);
        }

        // Softmax over the sequence log-probabilities.
        let max = log_probs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = log_probs.iter().map(|lp| (lp - max).exp()).collect();
        let z: f64 = exps.iter().sum();
        Ok(values
            .into_iter()
            .zip(exps)
            .map(|(v, e)| (v, e / z))
            .collect())
    }

    /// Log-probability of each `text` as a continuation of `trace`,
    /// scored token by token.
    ///
    /// Unlike hole decoding, every context to score is known before any
    /// scoring happens (the support values are fixed), so all of them —
    /// across all values — go to the model as one batch.
    fn score_continuations<L: LanguageModel>(
        &self,
        lm: &L,
        trace: &str,
        texts: &[String],
        options: &DecodeOptions,
    ) -> Result<Vec<f64>> {
        let base = self.bpe.encode(trace);
        // The boundary token may re-tokenise; score from the first
        // divergence between the two encodings.
        let plans: Vec<(Vec<TokenId>, usize)> = texts
            .iter()
            .map(|text| {
                let full = self.bpe.encode(&format!("{trace}{text}"));
                let common = base.iter().zip(&full).take_while(|(a, b)| a == b).count();
                (full, common)
            })
            .collect();
        let contexts: Vec<&[TokenId]> = plans
            .iter()
            .flat_map(|(full, common)| (*common..full.len()).map(move |i| &full[..i]))
            .collect();
        let mut scored = {
            let mut span = options.tracer.span("batch", "dispatch");
            span.arg("contexts", contexts.len() as u64);
            lm.try_score_batch(&contexts).into_iter()
        };
        plans
            .iter()
            .map(|(full, common)| {
                let mut lp = 0.0;
                for &t in &full[*common..] {
                    let logits = scored.next().expect("one score per context")?;
                    lp += logits.softmax(1.0).log_prob(t);
                }
                Ok(lp)
            })
            .collect()
    }
}

/// A parallel group member's buffered outcome, awaiting its join point.
struct PendingHole {
    result: Result<DecodedValue>,
    deltas: Vec<(String, f64)>,
}

/// The sink a parallel group member decodes against: token deltas are
/// buffered (for in-order replay at the join) instead of reaching the
/// stream out of program order, while cancellation still flows through
/// from the real sink so concurrent members stop cooperatively.
struct GroupBufferSink {
    parent: StreamSink,
    deltas: Mutex<Vec<(String, f64)>>,
}

impl EventSink for GroupBufferSink {
    fn emit(&self, event: QueryEvent) {
        if let QueryEvent::TokenDelta { text, log_prob, .. } = event {
            self.deltas
                .lock()
                .expect("delta buffer poisoned")
                .push((text, log_prob));
        }
    }

    fn cancelled(&self) -> bool {
        self.parent.cancelled()
    }
}

/// Whether the compiled program calls `subquery(...)` anywhere.
fn program_uses_subquery(program: &Program) -> bool {
    program.instrs.iter().any(|i| {
        matches!(i, Instr::CallExternal { module, func, .. }
            if module == "__runtime" && func == "subquery")
    })
}

/// State shared by every query in one `subquery(...)` tree: the
/// request-level model, the parent's caches and meter (usage rolls up),
/// the tree-wide token budget and the global child-path allocator.
struct SubqueryShared {
    lm: Arc<dyn LanguageModel>,
    bpe: Arc<Bpe>,
    externals: Externals,
    /// The root's tool registry: children inherit it (shared call
    /// counters), so tool accounting rolls up the subquery tree.
    tools: ToolRegistry,
    custom_ops: CustomOps,
    meter: UsageMeter,
    /// The root run's effective options with the sink cleared; each
    /// child gets these plus its own nested sink.
    options: DecodeOptions,
    mask_memo: Option<Arc<MaskMemo>>,
    automata_cache: Option<Arc<AutomataCache>>,
    metrics: Option<lmql_obs::Registry>,
    limits: SubqueryLimits,
    budget: Option<Arc<AtomicI64>>,
    path_alloc: Arc<AtomicU32>,
}

/// Registers the `__runtime.subquery` external for one execution path:
/// the closure is bound to the path's sink so nested events report under
/// the caller's path id.
fn install_subquery(
    externals: &mut Externals,
    shared: Arc<SubqueryShared>,
    depth: u32,
    sink: StreamSink,
) {
    externals.register("__runtime", "subquery", move |args| {
        run_subquery(&shared, depth, &sink, args)
    });
}

/// The `subquery(source[, var])` implementation: runs `source` as a
/// child query through the same engine stack, returning its best trace
/// (or the named variable's value). Enforces the tree's depth and token
/// budget limits, propagates cancellation down (the child's sink chains
/// `cancelled()` to the parent's), rolls usage up through the shared
/// meter, and nests the child's event stream into the parent's under a
/// freshly allocated child path id.
fn run_subquery(
    shared: &Arc<SubqueryShared>,
    depth: u32,
    parent_sink: &StreamSink,
    args: &[Value],
) -> std::result::Result<Value, String> {
    let source = args
        .first()
        .ok_or("subquery(source[, var]) takes an LMQL source string")?
        .as_str()
        .ok_or("subquery source must be a string")?;
    let want_var = match args.get(1) {
        None => None,
        Some(v) => Some(
            v.as_str()
                .ok_or("subquery variable name must be a string")?
                .to_owned(),
        ),
    };
    if args.len() > 2 {
        return Err("subquery takes at most 2 arguments (source, variable)".into());
    }
    if parent_sink.cancelled() {
        counter_inc(&shared.metrics, "engine.subquery.cancelled");
        return Err("subquery cancelled: parent query is cancelled".into());
    }
    if depth >= shared.limits.max_depth {
        counter_inc(&shared.metrics, "engine.subquery.depth_rejected");
        return Err(format!(
            "subquery depth limit ({}) exceeded",
            shared.limits.max_depth
        ));
    }
    if matches!(&shared.budget, Some(b) if b.load(Ordering::Relaxed) <= 0) {
        counter_inc(&shared.metrics, "engine.subquery.budget_exhausted");
        return Err("subquery token budget exhausted".into());
    }
    counter_inc(&shared.metrics, "engine.subquery.spawned");

    let child_root = shared.path_alloc.fetch_add(1, Ordering::Relaxed);
    parent_sink.emit(QueryEvent::SubqueryStart {
        parent: parent_sink.path(),
        child: child_root,
        depth: depth + 1,
    });
    let child_sink = StreamSink::new(Arc::new(SubquerySink {
        parent: parent_sink.clone(),
        budget: shared.budget.clone(),
        alloc: Arc::clone(&shared.path_alloc),
        map: Mutex::new(HashMap::from([(0u32, child_root)])),
    }));
    let child = Runtime {
        lm: Arc::clone(&shared.lm),
        bpe: Arc::clone(&shared.bpe),
        externals: shared.externals.clone(),
        tools: shared.tools.clone(),
        custom_ops: shared.custom_ops.clone(),
        bindings: Vec::new(),
        meter: shared.meter.clone(),
        options: {
            let mut o = shared.options.clone();
            o.sink = child_sink;
            o
        },
        mask_memo: shared.mask_memo.clone(),
        automata_cache: shared.automata_cache.clone(),
        metrics: shared.metrics.clone(),
        subqueries: shared.limits,
        subquery_ctx: Some((Arc::clone(shared), depth + 1)),
    };
    let outcome = child.run(source);
    parent_sink.emit(QueryEvent::SubqueryDone {
        path: child_root,
        ok: outcome.is_ok(),
    });
    match outcome {
        Ok(result) => match want_var {
            None => Ok(Value::Str(result.best().trace.clone())),
            Some(var) => result
                .best()
                .variables
                .get(&var)
                .cloned()
                .ok_or_else(|| format!("subquery completed but has no variable `{var}`")),
        },
        Err(e) => {
            if matches!(&shared.budget, Some(b) if b.load(Ordering::Relaxed) <= 0) {
                counter_inc(&shared.metrics, "engine.subquery.budget_exhausted");
                Err(format!("subquery token budget exhausted: {e}"))
            } else if parent_sink.cancelled() {
                counter_inc(&shared.metrics, "engine.subquery.cancelled");
                Err(format!("subquery cancelled: {e}"))
            } else {
                counter_inc(&shared.metrics, "engine.subquery.failed");
                Err(format!("subquery failed: {e}"))
            }
        }
    }
}

/// The sink a child query streams through: child-internal path ids are
/// remapped onto globally allocated ones (path `0` is the id announced
/// by `SubqueryStart`), token deltas burn the tree budget, terminal
/// bookkeeping events stay internal (the child's `Done` ranking must
/// not clobber the parent's, and usage rolls up through the shared
/// meter), and `cancelled()` chains to the parent so cancelling any
/// ancestor stops the whole tree cooperatively.
struct SubquerySink {
    parent: StreamSink,
    budget: Option<Arc<AtomicI64>>,
    alloc: Arc<AtomicU32>,
    map: Mutex<HashMap<u32, u32>>,
}

impl SubquerySink {
    fn map_path(&self, path: u32) -> u32 {
        if path >= SUBQUERY_PATH_BASE {
            // Already globalised by a deeper subquery sink.
            return path;
        }
        let mut map = self.map.lock().expect("subquery path map poisoned");
        *map.entry(path)
            .or_insert_with(|| self.alloc.fetch_add(1, Ordering::Relaxed))
    }
}

impl EventSink for SubquerySink {
    fn emit(&self, event: QueryEvent) {
        if let QueryEvent::TokenDelta { path, .. } = &event {
            // One budget unit per decoded token, counted once: deltas a
            // deeper sink already globalised were counted there.
            if *path < SUBQUERY_PATH_BASE {
                if let Some(budget) = &self.budget {
                    budget.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
        if !self.parent.is_active() {
            return;
        }
        let mapped = match event {
            QueryEvent::PromptChunk { path, text } => QueryEvent::PromptChunk {
                path: self.map_path(path),
                text,
            },
            QueryEvent::VariableStart { path, var } => QueryEvent::VariableStart {
                path: self.map_path(path),
                var,
            },
            QueryEvent::TokenDelta {
                path,
                var,
                text,
                log_prob,
            } => QueryEvent::TokenDelta {
                path: self.map_path(path),
                var,
                text,
                log_prob,
            },
            QueryEvent::VariableDone {
                path,
                var,
                value,
                score,
            } => QueryEvent::VariableDone {
                path: self.map_path(path),
                var,
                value,
                score,
            },
            QueryEvent::BeamFork { parent, child } => QueryEvent::BeamFork {
                parent: self.map_path(parent),
                child: self.map_path(child),
            },
            QueryEvent::BeamPrune { path } => QueryEvent::BeamPrune {
                path: self.map_path(path),
            },
            QueryEvent::SubqueryStart {
                parent,
                child,
                depth,
            } => QueryEvent::SubqueryStart {
                parent: self.map_path(parent),
                // Grandchild roots come from the shared allocator and
                // are already global.
                child,
                depth,
            },
            QueryEvent::SubqueryDone { path, ok } => QueryEvent::SubqueryDone { path, ok },
            QueryEvent::Distribution { .. }
            | QueryEvent::Usage { .. }
            | QueryEvent::Done { .. }
            | QueryEvent::Error { .. } => return,
        };
        self.parent.emit(mapped);
    }

    fn cancelled(&self) -> bool {
        self.parent.cancelled() || matches!(&self.budget, Some(b) if b.load(Ordering::Relaxed) <= 0)
    }
}

fn counter_inc(metrics: &Option<lmql_obs::Registry>, name: &str) {
    if let Some(registry) = metrics {
        registry.counter(name).inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmql_lm::{Branch, Episode, ScriptedLm};

    fn runtime(episodes: Vec<Episode>) -> Runtime {
        let bpe = Arc::new(Bpe::char_level(""));
        let lm = Arc::new(ScriptedLm::new(Arc::clone(&bpe), episodes));
        Runtime::new(lm, bpe)
    }

    #[test]
    fn argmax_end_to_end() {
        let rt = runtime(vec![Episode::plain("Q: hi\nA:", " hello.")]);
        let result = rt
            .run("argmax\n    \"Q: hi\\nA:[ANSWER]\"\nfrom \"m\"\nwhere stops_at(ANSWER, \".\")\n")
            .unwrap();
        assert_eq!(result.best().var_str("ANSWER"), Some(" hello."));
        assert_eq!(result.best().trace, "Q: hi\nA: hello.");
        let u = rt.meter().snapshot();
        assert_eq!(u.decoder_calls, 1);
        assert!(u.model_queries > 0);
        assert!(u.billable_tokens > 0);
    }

    #[test]
    fn sample_returns_n_runs() {
        let rt = runtime(vec![Episode::plain("P:", " out")]);
        let result = rt.run("sample(n=3)\n    \"P:[X]\"\nfrom \"m\"\n").unwrap();
        assert_eq!(result.runs.len(), 3);
        assert_eq!(rt.meter().snapshot().decoder_calls, 3);
    }

    #[test]
    fn distribute_measures_distribution() {
        let rt = runtime(vec![Episode {
            trigger: "best:".to_owned(),
            script: " alpha".to_owned(),
            digressions: vec![],
            branches: vec![Branch {
                at: 0,
                text: " beta".to_owned(),
                weight: 11.4,
            }],
        }]);
        let result = rt
            .run(
                "argmax\n    \"best:[CHOICE]\"\nfrom \"m\"\ndistribute CHOICE in [\" alpha\", \" beta\", \" gamma\"]\n",
            )
            .unwrap();
        let dist = result.distribution.as_ref().unwrap();
        assert_eq!(dist.len(), 3);
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(result.top_distribution_value(), Some(" alpha"));
        let beta = dist.iter().find(|(v, _)| v == " beta").unwrap().1;
        let gamma = dist.iter().find(|(v, _)| v == " gamma").unwrap().1;
        assert!(beta > gamma, "branch weight gives beta real mass");
        // trace completed with the argmax choice
        assert_eq!(result.best().trace, "best: alpha");
        // decoder calls: 1 for the run + 3 for the scored values
        assert_eq!(rt.meter().snapshot().decoder_calls, 4);
    }

    #[test]
    fn query_arguments_bind() {
        let mut rt = runtime(vec![Episode::plain("items: a, b\npick:", " a")]);
        rt.bind("OPTIONS", Value::Str("a, b".into()));
        let result = rt
            .run("argmax\n    \"items: {OPTIONS}\\npick:[C]\"\nfrom \"m\"\n")
            .unwrap();
        assert!(result.best().trace.starts_with("items: a, b"));
    }

    #[test]
    fn externals_in_query() {
        let mut rt = runtime(vec![Episode::plain("calc:", " 2*3")]);
        rt.register_external("calculator", "run", |args| {
            let s = args[0].as_str().ok_or("expected str")?;
            let parts: Vec<&str> = s.trim().split('*').collect();
            let a: i64 = parts[0].parse().map_err(|_| "bad int")?;
            let b: i64 = parts[1].parse().map_err(|_| "bad int")?;
            Ok(Value::Int(a * b))
        });
        let result = rt
            .run(
                "import calculator\nargmax\n    \"calc:[EXPR]\"\n    r = calculator.run(EXPR)\n    \" = {r}\"\nfrom \"m\"\nwhere stops_at(EXPR, \"3\")\n",
            )
            .unwrap();
        assert_eq!(result.best().trace, "calc: 2*3 = 6");
    }

    #[test]
    fn unknown_decoder_is_error() {
        let rt = runtime(vec![Episode::plain("x", "y")]);
        let err = rt.run("magic\n    \"[X]\"\nfrom \"m\"\n").unwrap_err();
        assert!(err.to_string().contains("unknown decoder"));
    }

    #[test]
    fn distribute_must_be_last_hole() {
        let rt = runtime(vec![Episode::plain("t:", " a b")]);
        let err = rt
            .run("argmax\n    \"t:[D] then [MORE]\"\nfrom \"m\"\ndistribute D in [\" a\"]\n")
            .unwrap_err();
        assert!(err.to_string().contains("last hole"));
    }

    #[test]
    fn tracer_records_hole_and_mask_spans() {
        let mut rt = runtime(vec![Episode::plain("Q: hi\nA:", " hello.")]);
        rt.set_tracer(lmql_obs::Tracer::manual());
        let result = rt
            .run("argmax\n    \"Q: hi\\nA:[ANSWER]\"\nfrom \"m\"\nwhere stops_at(ANSWER, \".\")\n")
            .unwrap();
        assert_eq!(result.best().var_str("ANSWER"), Some(" hello."));
        let events = rt.tracer().events();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"parse_compile"));
        assert!(names.contains(&"hole:ANSWER"));
        assert!(names.contains(&"compute_mask"));
        assert!(names.contains(&"follow_eval"));
        assert!(names.contains(&"run:argmax"));
        // Manual clock makes the trace a pure function of the event
        // sequence: a second identical run records identical timings.
        let mut rt2 = runtime(vec![Episode::plain("Q: hi\nA:", " hello.")]);
        rt2.set_tracer(lmql_obs::Tracer::manual());
        rt2.run("argmax\n    \"Q: hi\\nA:[ANSWER]\"\nfrom \"m\"\nwhere stops_at(ANSWER, \".\")\n")
            .unwrap();
        assert_eq!(events, rt2.tracer().events());
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let rt = runtime(vec![Episode::plain("P:", " out")]);
        rt.run("argmax\n    \"P:[X]\"\nfrom \"m\"\n").unwrap();
        assert!(!rt.tracer().is_enabled());
        assert!(rt.tracer().events().is_empty());
    }

    #[test]
    fn parallel_holes_match_sequential() {
        let episodes = || {
            vec![
                Episode::plain("A:", " one\n"),
                Episode::plain("B:", " two\n"),
            ]
        };
        let src = "argmax\n    \"A:[X]B:[Y]\"\nfrom \"m\"\nwhere stops_at(X, \"\\n\") and stops_at(Y, \"\\n\")\n";

        let registry = lmql_obs::Registry::new();
        let mut par = runtime(episodes());
        par.set_metrics_registry(registry.clone());
        let par_result = par.run(src).unwrap();

        let mut seq = runtime(episodes());
        seq.options_mut().parallel_holes = false;
        let seq_result = seq.run(src).unwrap();

        assert_eq!(par_result.best().trace, "A: one\nB: two\n");
        assert_eq!(par_result.best().trace, seq_result.best().trace);
        assert_eq!(par_result.best().variables, seq_result.best().variables);
        assert_eq!(par_result.best().log_prob, seq_result.best().log_prob);
        assert_eq!(
            par.meter().snapshot().decoder_calls,
            seq.meter().snapshot().decoder_calls
        );
        assert_eq!(
            registry.snapshot().counter("holes.parallel"),
            Some(2),
            "both independent holes decoded through the parallel group"
        );
    }

    #[test]
    fn subquery_end_to_end() {
        let rt = runtime(vec![
            Episode::plain("Q:", " hi\n"),
            Episode::plain("S:", " ok."),
        ]);
        let registry = lmql_obs::Registry::new();
        let mut rt = rt;
        rt.set_metrics_registry(registry.clone());
        let result = rt
            .run(
                r#"
argmax
    "Q:[A]"
    sub = subquery("argmax\n    \"S:[B]\"\nfrom \"m\"\nwhere stops_at(B, \".\")\n", "B")
    "sub={sub}"
from "m"
where stops_at(A, "\n")
"#,
            )
            .unwrap();
        assert_eq!(result.best().trace, "Q: hi\nsub= ok.");
        assert_eq!(
            registry.snapshot().counter("engine.subquery.spawned"),
            Some(1)
        );
        // Child usage rolls up into the parent's meter: one decoder call
        // for the parent run, one for the child.
        assert_eq!(rt.meter().snapshot().decoder_calls, 2);
    }

    #[test]
    fn subquery_depth_limit_rejects() {
        let mut rt = runtime(vec![Episode::plain("Q:", " hi\n")]);
        rt.set_subquery_limits(SubqueryLimits {
            max_depth: 0,
            max_tokens: None,
        });
        let err = rt
            .run(
                r#"
argmax
    "Q:[A]"
    sub = subquery("argmax\n    \"S:[B]\"\nfrom \"m\"\n")
from "m"
where stops_at(A, "\n")
"#,
            )
            .unwrap_err();
        assert!(err.to_string().contains("depth limit"), "{err}");
    }

    #[test]
    fn loop_with_holes_fig1b_shape() {
        let rt = runtime(vec![Episode::plain(
            "A list of things not to forget when travelling:\n-",
            " keys\n- passport\nThe most important of these is keys.",
        )]);
        let result = rt
            .run(
                r#"
argmax
    "A list of things not to forget when travelling:\n"
    things = []
    for i in range(2):
        "-[THING]"
        things.append(THING)
    "The most important of these is[ITEM]"
from "m"
where stops_at(THING, "\n") and stops_at(ITEM, ".")
"#,
            )
            .unwrap();
        let things = result.best().variables.get("things").unwrap();
        assert_eq!(
            things,
            &Value::List(vec![" keys\n".into(), " passport\n".into()])
        );
        assert_eq!(result.best().var_str("ITEM"), Some(" keys."));
        assert!(result
            .best()
            .trace
            .ends_with("The most important of these is keys."));
    }
}
