//! The compiled form of a query body: a flat instruction list for the
//! resumable VM.
//!
//! Compiling to instructions (rather than walking the AST recursively)
//! makes the interpreter state a plain, cloneable struct — a program
//! counter, a value stack and an iterator stack — which is what scripted
//! beam search needs to snapshot program state per beam (§4).

use crate::Value;
use lmql_syntax::ast::{BinOp, CmpOp, DecoderSpec, Distribute, Expr};
use lmql_syntax::Span;

/// One VM instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Push a constant.
    Const(Value),
    /// Push the value of a variable.
    Load(String, Span),
    /// Pop into a variable.
    Store(String),
    /// Discard the top of stack.
    Pop,
    /// Pop `n` values, push a list (in source order).
    MakeList(usize),
    /// Pop two, apply, push.
    BinOp(BinOp, Span),
    /// Pop two, compare, push bool.
    Compare(CmpOp, Span),
    /// Pop one, push logical negation.
    Not,
    /// Pop one, push arithmetic negation.
    Neg(Span),
    /// Pop index and object, push element.
    Index(Span),
    /// Pop bounds (those present) and object, push slice.
    Slice {
        has_lo: bool,
        has_hi: bool,
        span: Span,
    },
    /// Call a built-in function with `argc` stack arguments.
    CallBuiltin {
        name: String,
        argc: usize,
        span: Span,
    },
    /// Call a non-mutating method: object below `argc` arguments.
    CallMethod {
        name: String,
        argc: usize,
        span: Span,
    },
    /// Call a mutating list method on a variable (`xs.append(v)`),
    /// writing the updated list back to scope; pushes `None`.
    CallMutMethod {
        var: String,
        name: String,
        argc: usize,
        span: Span,
    },
    /// Call a user-registered external function (`module.func(args)`).
    CallExternal {
        module: String,
        func: String,
        argc: usize,
        span: Span,
    },
    /// Process a prompt template (Alg. 1): literals and recalls append to
    /// the trace; holes suspend the VM.
    Emit(PromptTemplate),
    /// Unconditional jump.
    Jump(usize),
    /// Pop; jump if falsy.
    JumpIfFalse(usize),
    /// Pop an iterable, push an iterator over its materialised items.
    IterNew(Span),
    /// Bind the next item to `var`, or pop the iterator and jump to
    /// `exit` when exhausted.
    IterNext { var: String, exit: usize },
    /// Pop the innermost iterator (used by `break`).
    PopIter,
    /// Pop `count` values; push their conjunction (`and: true`) or
    /// disjunction, using Python truthiness and returning the deciding
    /// operand's value.
    BoolFold { and: bool, count: usize },
    /// End of program.
    Halt,
}

/// A compiled prompt segment: recalls carry a parsed expression.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledSegment {
    /// Literal text, interned at compile time so every emission appends
    /// a trace chunk pointing at this shared allocation (no byte copy).
    Literal(std::sync::Arc<str>),
    /// A `[VAR]` hole.
    Hole(String),
    /// A `{expr}` substitution.
    Recall(Expr),
}

/// A prompt statement, pre-segmented and with recall expressions parsed.
#[derive(Debug, Clone, PartialEq)]
pub struct PromptTemplate {
    /// The segments of the top-level string.
    pub segments: Vec<CompiledSegment>,
    /// Source location of the string.
    pub span: Span,
}

/// A fully compiled query.
#[derive(Debug, Clone)]
pub struct Program {
    /// The instruction stream (ends with [`Instr::Halt`]).
    pub instrs: Vec<Instr>,
    /// Hole names in order of first static appearance.
    pub holes: Vec<String>,
    /// The model identifier from the `from` clause.
    pub model: String,
    /// The decoder clause.
    pub decoder: DecoderSpec,
    /// The `where` constraint, if any.
    pub where_clause: Option<Expr>,
    /// The `distribute` clause, if any.
    pub distribute: Option<Distribute>,
    /// Imported module names.
    pub imports: Vec<String>,
}

impl Program {
    /// `true` if `name` is one of the query's hole variables.
    pub fn is_hole(&self, name: &str) -> bool {
        self.holes.iter().any(|h| h == name)
    }
}
