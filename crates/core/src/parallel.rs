//! Hole-dependency analysis for program-level parallelism (DESIGN.md
//! §14).
//!
//! A query body decodes its `[VAR]` holes strictly in program order, but
//! many bodies give consecutive holes no data dependency on each other —
//! the holes are *futures* that can decode concurrently and join at
//! first use (APPL's model). This module computes which holes may safely
//! overlap: [`plan_holes`] walks the compiled instruction stream with an
//! abstract interpreter that tracks, for every value, the set of holes
//! whose decoded text could have flowed into it, then derives a
//! dependency edge for every def/use pair:
//!
//! - a `{recall}` whose expression reads a hole-tainted value makes every
//!   *later* hole depend on those holes (the recalled text is part of
//!   every later context);
//! - a `where`-clause conjunct whose scope values resolve to two or more
//!   holes chains them in program order (`stops_at(B, A)` must see `A`'s
//!   final value while decoding `B`);
//! - a conjunct that is not *completion-safe* (see below) serializes its
//!   holes against everything after them;
//! - an external call is a barrier: its result is tainted by every
//!   earlier hole, and every later hole depends on every earlier one
//!   (re-running a side-effectful call during speculative prompt
//!   construction would be observable, so groups never span one);
//! - a `distribute` variable depends on every earlier hole (its
//!   distribution scores the whole trace).
//!
//! Everything the abstract interpreter cannot model exactly — any
//! control flow — makes [`plan_holes`] return `None`, which the runtime
//! treats as "fully sequential". Loops and conditionals re-emit holes
//! dynamically, so a static DAG over them would be unsound; straight-line
//! bodies (the overwhelmingly common shape for multi-hole prompts) are
//! analyzed exactly.
//!
//! # Completion-safety
//!
//! Sequentially, a conjunct mentioning only hole `A` is still evaluated
//! while decoding every later hole, with `A`'s *final* value in scope. A
//! constrained decode can end with the conjunct violated (a budget stop
//! truncates `len(A) > 100` mid-flight), and the later hole's decode then
//! dead-ends immediately. A parallel sibling would instead see the
//! conjunct as undetermined (no `A` in scope) and happily decode. To keep
//! byte-identity including such failure paths, only conjuncts that are
//! *guaranteed true on any completed decode* leave later holes
//! parallelizable:
//!
//! - `stops_at(X, phrase)` — a stopping condition, FOLLOW-true on every
//!   prefix;
//! - `not ("lit" in X)` / `"lit" not in X` — the mask blocks completing
//!   the needle, so every decodable prefix satisfies it;
//! - `len(...) < k` / `len(...) <= k` (and mirrored `k > len(...)`) —
//!   the mask stops growth at the bound.
//!
//! Any other shape (`len > k`, `X in [...]`, `==`, custom ops, `or`
//! disjunctions) conservatively serializes its holes against all later
//! ones.

use crate::program::{CompiledSegment, Instr, Program};
use lmql_syntax::ast::{CmpOp, Expr};
use std::collections::{BTreeSet, HashMap};

/// The set of hole indices whose decoded text may have flowed into a
/// value. Ordered so dependency sets compare and iterate
/// deterministically.
type Taint = BTreeSet<usize>;

/// The result of dependency analysis: hole names in program order, the
/// direct dependencies of each hole (always earlier indices), and the
/// partition into *parallel groups* — maximal runs of consecutive holes
/// with no dependency edge inside the run. Groups execute in program
/// order; members of one group may decode concurrently.
#[derive(Debug, Clone, PartialEq)]
pub struct HolePlan {
    names: Vec<String>,
    deps: Vec<Taint>,
    /// Half-open `[start, end)` index ranges over `names`.
    groups: Vec<(usize, usize)>,
}

impl HolePlan {
    /// Hole names in program order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Direct dependencies (earlier hole indices) of hole `idx`.
    pub fn deps_of(&self, idx: usize) -> &BTreeSet<usize> {
        &self.deps[idx]
    }

    /// Index of `name` in program order.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// The parallel groups as half-open index ranges.
    pub fn groups(&self) -> &[(usize, usize)] {
        &self.groups
    }

    /// Size of the largest parallel group.
    pub fn max_group_len(&self) -> usize {
        self.groups.iter().map(|(s, e)| e - s).max().unwrap_or(0)
    }

    /// The members of `var`'s group from `var` to the group's end, when
    /// that suffix still holds two or more holes. This is what the
    /// runtime parallelizes on arriving at `var`: decoding may have
    /// fallen back to sequential for an earlier member, in which case the
    /// remaining suffix is still mutually independent.
    pub fn parallel_suffix(&self, var: &str) -> Option<&[String]> {
        let idx = self.index_of(var)?;
        let &(_, end) = self.groups.iter().find(|&&(s, e)| s <= idx && idx < e)?;
        if end - idx >= 2 {
            Some(&self.names[idx..end])
        } else {
            None
        }
    }
}

/// Analyzes `program` for hole dependencies. Returns `None` when the
/// body cannot be modelled exactly (any control flow, a hole emitted
/// twice, or a malformed stack), in which case decoding stays fully
/// sequential.
pub fn plan_holes(program: &Program) -> Option<HolePlan> {
    if program.instrs.iter().any(|i| {
        matches!(
            i,
            Instr::Jump(_)
                | Instr::JumpIfFalse(_)
                | Instr::IterNew(_)
                | Instr::IterNext { .. }
                | Instr::PopIter
        )
    }) {
        return None;
    }

    let mut names: Vec<String> = Vec::new();
    let mut deps: Vec<Taint> = Vec::new();
    let mut stack: Vec<Taint> = Vec::new();
    // Taint of each scope variable's *current* value (for recalls, which
    // read the live binding) and the union over *every* value the
    // variable ever held (for where-clause conjuncts, which are
    // re-evaluated at every hole and must account for reassignment).
    let mut taint: HashMap<String, Taint> = HashMap::new();
    let mut ever: HashMap<String, Taint> = HashMap::new();
    // Holes whose text has been recalled back into the trace: every
    // later hole's context contains it.
    let mut trace_taint = Taint::new();
    // Holes preceding any external call: later holes may not share a
    // group with them.
    let mut barrier = Taint::new();

    fn popn(stack: &mut Vec<Taint>, n: usize) -> Option<Taint> {
        let mut out = Taint::new();
        for _ in 0..n {
            out.extend(stack.pop()?);
        }
        Some(out)
    }

    for instr in &program.instrs {
        match instr {
            Instr::Const(_) => stack.push(Taint::new()),
            Instr::Load(name, _) => stack.push(taint.get(name).cloned().unwrap_or_default()),
            Instr::Store(name) => {
                let t = stack.pop()?;
                ever.entry(name.clone())
                    .or_default()
                    .extend(t.iter().copied());
                taint.insert(name.clone(), t);
            }
            Instr::Pop => {
                stack.pop()?;
            }
            Instr::MakeList(n) => {
                let t = popn(&mut stack, *n)?;
                stack.push(t);
            }
            Instr::BinOp(_, _) | Instr::Compare(_, _) | Instr::Index(_) => {
                let t = popn(&mut stack, 2)?;
                stack.push(t);
            }
            Instr::Not | Instr::Neg(_) => {
                let t = stack.pop()?;
                stack.push(t);
            }
            Instr::Slice { has_lo, has_hi, .. } => {
                let n = 1 + usize::from(*has_lo) + usize::from(*has_hi);
                let t = popn(&mut stack, n)?;
                stack.push(t);
            }
            Instr::CallBuiltin { argc, .. } => {
                let t = popn(&mut stack, *argc)?;
                stack.push(t);
            }
            Instr::CallMethod { argc, .. } => {
                let t = popn(&mut stack, argc + 1)?;
                stack.push(t);
            }
            Instr::CallMutMethod { var, argc, .. } => {
                let mut t = popn(&mut stack, *argc)?;
                t.extend(taint.get(var.as_str()).into_iter().flatten().copied());
                ever.entry(var.clone())
                    .or_default()
                    .extend(t.iter().copied());
                taint.insert(var.clone(), t);
                stack.push(Taint::new());
            }
            Instr::CallExternal { argc, .. } => {
                let mut t = popn(&mut stack, *argc)?;
                barrier.extend(0..names.len());
                t.extend(0..names.len());
                stack.push(t);
            }
            Instr::Emit(tpl) => {
                for seg in &tpl.segments {
                    match seg {
                        CompiledSegment::Literal(_) => {}
                        CompiledSegment::Hole(name) => {
                            if names.iter().any(|n| n == name) {
                                return None;
                            }
                            let idx = names.len();
                            let mut d = trace_taint.clone();
                            d.extend(barrier.iter().copied());
                            names.push(name.clone());
                            deps.push(d);
                            taint.insert(name.clone(), Taint::from([idx]));
                            ever.entry(name.clone()).or_default().insert(idx);
                        }
                        CompiledSegment::Recall(expr) => {
                            let mut read = Vec::new();
                            expr_names(expr, &mut read);
                            for n in read {
                                if let Some(t) = taint.get(n) {
                                    trace_taint.extend(t.iter().copied());
                                }
                            }
                        }
                    }
                }
            }
            Instr::BoolFold { count, .. } => {
                let t = popn(&mut stack, *count)?;
                stack.push(t);
            }
            Instr::Halt => break,
            Instr::Jump(_)
            | Instr::JumpIfFalse(_)
            | Instr::IterNew(_)
            | Instr::IterNext { .. }
            | Instr::PopIter => return None,
        }
    }

    // Where-clause couplings: the whole clause is evaluated while
    // decoding every hole, so conjuncts tie their holes together.
    if let Some(where_clause) = &program.where_clause {
        let mut leaves = Vec::new();
        conjuncts(where_clause, &mut leaves);
        for conjunct in leaves {
            let mut read = Vec::new();
            expr_names(conjunct, &mut read);
            let mut involved = Taint::new();
            for n in read {
                if let Some(t) = ever.get(n) {
                    involved.extend(t.iter().copied());
                }
            }
            let chain: Vec<usize> = involved.iter().copied().collect();
            for pair in chain.windows(2) {
                deps[pair[1]].insert(pair[0]);
            }
            if !conjunct_is_completion_safe(conjunct) {
                for &s in &involved {
                    for d in &mut deps[s + 1..] {
                        d.insert(s);
                    }
                }
            }
        }
    }

    // The distribute variable's distribution scores the full trace, so
    // it needs every earlier hole resolved.
    if let Some(dist) = &program.distribute {
        if let Some(idx) = names.iter().position(|n| n == &dist.var) {
            deps[idx].extend(0..idx);
        }
    }

    // Maximal prefix groups in program order: extend the current group
    // while the next hole depends on nothing inside it. Join order then
    // equals program order equals sequential decode order.
    let mut groups = Vec::new();
    let mut start = 0;
    for (i, dep) in deps.iter().enumerate() {
        if dep.iter().any(|&d| d >= start) {
            groups.push((start, i));
            start = i;
        }
    }
    if start < names.len() {
        groups.push((start, names.len()));
    }

    Some(HolePlan {
        names,
        deps,
        groups,
    })
}

/// Splits a where clause into its top-level `and` conjuncts (recursing
/// through nested `and`s). An `or` stays one opaque conjunct.
fn conjuncts<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::BoolOp {
        and: true,
        operands,
        ..
    } = expr
    {
        for op in operands {
            conjuncts(op, out);
        }
    } else {
        out.push(expr);
    }
}

/// Whether a conjunct is guaranteed satisfied by any *completed* decode
/// of the holes it constrains (see module docs). Conservative: unknown
/// shapes are unsafe.
fn conjunct_is_completion_safe(expr: &Expr) -> bool {
    match expr {
        Expr::Str { .. }
        | Expr::Int { .. }
        | Expr::Float { .. }
        | Expr::Bool { .. }
        | Expr::None { .. }
        | Expr::Name { .. } => true,
        Expr::Call { func, .. } => {
            matches!(&**func, Expr::Name { name, .. } if name == "stops_at")
        }
        Expr::Not { operand, .. } => matches!(&**operand, Expr::Compare { op: CmpOp::In, .. }),
        Expr::Compare {
            op: CmpOp::NotIn, ..
        } => true,
        Expr::Compare {
            op: CmpOp::Lt | CmpOp::Le,
            left,
            right,
            ..
        } => is_len_call(left) && matches!(&**right, Expr::Int { .. }),
        Expr::Compare {
            op: CmpOp::Gt | CmpOp::Ge,
            left,
            right,
            ..
        } => matches!(&**left, Expr::Int { .. }) && is_len_call(right),
        _ => false,
    }
}

fn is_len_call(expr: &Expr) -> bool {
    matches!(expr, Expr::Call { func, .. }
        if matches!(&**func, Expr::Name { name, .. } if name == "len"))
}

/// Collects every `Name` occurring in `expr`, including call targets
/// (harmlessly conservative: unknown names resolve to no taint).
fn expr_names<'e>(expr: &'e Expr, out: &mut Vec<&'e str>) {
    match expr {
        Expr::Str { .. }
        | Expr::Int { .. }
        | Expr::Float { .. }
        | Expr::Bool { .. }
        | Expr::None { .. } => {}
        Expr::Name { name, .. } => out.push(name),
        Expr::List { items, .. } => {
            for item in items {
                expr_names(item, out);
            }
        }
        Expr::Call { func, args, .. } => {
            expr_names(func, out);
            for arg in args {
                expr_names(arg, out);
            }
        }
        Expr::Attribute { obj, .. } => expr_names(obj, out),
        Expr::Index { obj, index, .. } => {
            expr_names(obj, out);
            expr_names(index, out);
        }
        Expr::Slice { obj, lo, hi, .. } => {
            expr_names(obj, out);
            if let Some(lo) = lo {
                expr_names(lo, out);
            }
            if let Some(hi) = hi {
                expr_names(hi, out);
            }
        }
        Expr::BinOp { left, right, .. } | Expr::Compare { left, right, .. } => {
            expr_names(left, out);
            expr_names(right, out);
        }
        Expr::BoolOp { operands, .. } => {
            for op in operands {
                expr_names(op, out);
            }
        }
        Expr::Not { operand, .. } | Expr::Neg { operand, .. } => {
            expr_names(operand, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;

    fn plan(source: &str) -> Option<HolePlan> {
        plan_holes(&compile_source(source).expect("test program compiles"))
    }

    #[test]
    fn independent_holes_share_a_group() {
        let p = plan("argmax\n    \"Q: [A]\\n\"\n    \"R: [B]\\n\"\nfrom \"m\"\n").unwrap();
        assert_eq!(p.names(), ["A", "B"]);
        assert_eq!(p.groups(), [(0, 2)]);
        assert_eq!(p.parallel_suffix("A").unwrap(), ["A", "B"]);
        assert_eq!(p.parallel_suffix("B"), None);
    }

    #[test]
    fn recall_creates_dependency() {
        let p = plan("argmax\n    \"Q: [A]\\n\"\n    \"again {A}: [B]\\n\"\nfrom \"m\"\n").unwrap();
        assert!(p.deps_of(1).contains(&0));
        assert_eq!(p.groups(), [(0, 1), (1, 2)]);
        assert_eq!(p.parallel_suffix("A"), None);
    }

    #[test]
    fn recall_through_local_creates_dependency() {
        let p = plan(
            "argmax\n    \"Q: [A]\\n\"\n    x = A + \"!\"\n    \"again {x}: [B]\\n\"\nfrom \"m\"\n",
        )
        .unwrap();
        assert!(p.deps_of(1).contains(&0));
        assert_eq!(p.groups(), [(0, 1), (1, 2)]);
    }

    #[test]
    fn where_value_reference_chains_holes() {
        let p = plan(
            "argmax\n    \"Q: [A]\\n\"\n    \"R: [B]\\n\"\nfrom \"m\"\nwhere\n    stops_at(A, \".\") and stops_at(B, A)\n",
        )
        .unwrap();
        assert!(p.deps_of(1).contains(&0));
        assert_eq!(p.groups(), [(0, 1), (1, 2)]);
    }

    #[test]
    fn safe_conjuncts_keep_holes_parallel() {
        // The jokes shape: per-hole stopping conditions and a len upper
        // bound never couple distinct holes.
        let p = plan(
            "argmax\n    \"Q: [A]\\n\"\n    \"R: [B]\\n\"\nfrom \"m\"\nwhere\n    stops_at(A, \".\") and stops_at(B, \".\") and len(A) < 40\n",
        )
        .unwrap();
        assert_eq!(p.groups(), [(0, 2)]);
    }

    #[test]
    fn unsafe_conjunct_serializes_later_holes() {
        // len(A) > 2 can be violated by a budget-truncated A, which
        // sequentially dead-ends B's decode — so B must wait for A.
        let p = plan(
            "argmax\n    \"Q: [A]\\n\"\n    \"R: [B]\\n\"\nfrom \"m\"\nwhere\n    len(A) > 2\n",
        )
        .unwrap();
        assert!(p.deps_of(1).contains(&0));
        assert_eq!(p.groups(), [(0, 1), (1, 2)]);
    }

    #[test]
    fn unsafe_conjunct_on_last_hole_is_free() {
        let p = plan(
            "argmax\n    \"Q: [A]\\n\"\n    \"R: [B]\\n\"\nfrom \"m\"\nwhere\n    len(B) > 2\n",
        )
        .unwrap();
        assert_eq!(p.groups(), [(0, 2)]);
    }

    #[test]
    fn control_flow_bails() {
        assert_eq!(
            plan("argmax\n    for i in [1, 2]:\n        \"Q: [A]\\n\"\nfrom \"m\"\n"),
            None
        );
    }

    #[test]
    fn external_call_is_a_barrier() {
        let p = plan(
            "import calc\nargmax\n    \"Q: [A]\\n\"\n    x = calc.run(\"2\")\n    \"R: [B]\\n\"\nfrom \"m\"\n",
        )
        .unwrap();
        assert!(p.deps_of(1).contains(&0));
        assert_eq!(p.groups(), [(0, 1), (1, 2)]);
    }

    #[test]
    fn distribute_depends_on_all_earlier_holes() {
        let p = plan(
            "argmax\n    \"Q: [A]\\n\"\n    \"R: [B]\\n\"\nfrom \"m\"\ndistribute\n    B over [\"x\", \"y\"]\n",
        )
        .unwrap();
        assert!(p.deps_of(1).contains(&0));
        assert_eq!(p.groups(), [(0, 1), (1, 2)]);
    }

    #[test]
    fn three_way_mix() {
        // A and B independent; C recalls A: groups are {A, B}, {C}.
        let p = plan(
            "argmax\n    \"Q: [A]\\n\"\n    \"R: [B]\\n\"\n    \"S {A}: [C]\\n\"\nfrom \"m\"\n",
        )
        .unwrap();
        assert_eq!(p.groups(), [(0, 2), (2, 3)]);
        assert_eq!(p.parallel_suffix("B"), None);
        assert_eq!(p.parallel_suffix("C"), None);
    }
}
