//! First-class tools (DESIGN.md §16).
//!
//! The paper's augmented-generation queries (§4: calculator arithmetic,
//! wiki-lookup ReAct) call *external functions* — pure, deterministic
//! host code invoked mid-query as `module.func(args)`. Earlier PRs wired
//! each one as an ad-hoc [`Runtime::register_external`] closure, so
//! every new capability was a runtime special case. This module redesigns
//! that surface: a [`Tool`] is a named, schema-described, deterministic
//! capability, and a [`ToolRegistry`] is the unit that travels — through
//! [`QueryRequest`](crate::QueryRequest), `EngineConfig`, the server,
//! and down into subqueries, which inherit the parent's registry.
//!
//! Design points:
//!
//! - **Tools lower onto the existing VM hook.** Installing a registry
//!   registers one [`Externals`] entry per exported function, so the
//!   interpreter's `CallExternal` path — and every layer built on it
//!   (FOLLOW evaluation, subquery inheritance, scripted beam forking) —
//!   is unchanged. A tool *is* the externals hook, plus identity,
//!   schema, and accounting.
//! - **Determinism is part of the contract.** [`Tool::invoke`] must be a
//!   pure function of its arguments (the paper's §4 assumption); the
//!   decoders replay and fork executions, so an impure tool would
//!   desynchronise beams.
//! - **Usage accounting is built in.** Every call through a registry
//!   bumps a per-tool counter shared by all clones of that registry —
//!   engine replicas and subquery children report into the same cells,
//!   so [`ToolRegistry::usage`] is a tree-wide rollup, and runtimes with
//!   a metrics registry export `tool.calls.<name>` counters.
//!
//! [`Runtime::register_external`]: crate::Runtime::register_external

use crate::interp::Externals;
use crate::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One callable function a tool exports, for documentation and
/// discovery; the VM calls it as `module.name(args…)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToolFunction {
    /// Function name within the tool's module namespace.
    pub name: String,
    /// Documented parameter names, in call order.
    pub params: Vec<String>,
    /// One-line description of what the function does.
    pub description: String,
}

/// The machine-readable surface of a [`Tool`]: the module name queries
/// import, a description, and the exported functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToolSchema {
    /// Module namespace: queries call `module.func(...)` after
    /// `import module`.
    pub module: String,
    /// One-line description of the capability.
    pub description: String,
    /// The functions this tool exports.
    pub functions: Vec<ToolFunction>,
}

impl ToolSchema {
    /// A schema for module `module` with no functions yet.
    pub fn new(module: impl Into<String>, description: impl Into<String>) -> Self {
        ToolSchema {
            module: module.into(),
            description: description.into(),
            functions: Vec::new(),
        }
    }

    /// Adds an exported function.
    pub fn function(
        mut self,
        name: impl Into<String>,
        params: &[&str],
        description: impl Into<String>,
    ) -> Self {
        self.functions.push(ToolFunction {
            name: name.into(),
            params: params.iter().map(|p| (*p).to_owned()).collect(),
            description: description.into(),
        });
        self
    }
}

/// A first-class tool: a named, schema-described, *deterministic*
/// capability callable from query bodies as `module.func(args…)`.
///
/// Implementations must be pure functions of their arguments — the
/// decoders clone and replay executions (scripted beam search forks the
/// VM at every step), so an invocation observed twice must return the
/// same value twice. Stateful or randomised tools belong behind a
/// deterministic façade (seeded, snapshot-read, or memoised).
pub trait Tool: Send + Sync {
    /// Unique registration key — normally the module name. Two tools
    /// with the same name cannot coexist in one registry (the later
    /// registration wins).
    fn name(&self) -> &str;

    /// The tool's schema: module namespace, description, exported
    /// functions.
    fn schema(&self) -> ToolSchema;

    /// Invokes exported function `func` with `args`. Must be
    /// deterministic; errors surface as
    /// [`Error::External`](crate::Error::External) in the query.
    fn invoke(&self, func: &str, args: &[Value]) -> std::result::Result<Value, String>;
}

/// A single-function [`Tool`] built from a closure — the adapter behind
/// the legacy [`Runtime::register_external`](crate::Runtime::register_external)
/// hook, and a convenient way to lift any pure `fn(&[Value])` into the
/// tool API without a dedicated type.
pub struct FnTool {
    name: String,
    schema: ToolSchema,
    func: String,
    f: crate::interp::ExternalFn,
}

impl FnTool {
    /// A tool exporting the single function `module.func`, backed by
    /// `f`. Its registration [`name`](Tool::name) is `"module.func"`, so
    /// several `FnTool`s can share a module namespace in one registry.
    pub fn new<F>(module: &str, func: &str, f: F) -> Self
    where
        F: Fn(&[Value]) -> std::result::Result<Value, String> + Send + Sync + 'static,
    {
        FnTool {
            name: format!("{module}.{func}"),
            schema: ToolSchema::new(module, format!("closure-backed external `{module}.{func}`"))
                .function(func, &[], "registered via FnTool"),
            func: func.to_owned(),
            f: Arc::new(f),
        }
    }
}

impl std::fmt::Debug for FnTool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnTool").field("name", &self.name).finish()
    }
}

impl Tool for FnTool {
    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&self) -> ToolSchema {
        self.schema.clone()
    }

    fn invoke(&self, func: &str, args: &[Value]) -> std::result::Result<Value, String> {
        if func != self.func {
            return Err(format!("FnTool `{}` has no function `{func}`", self.name));
        }
        (self.f)(args)
    }
}

/// One registered tool plus its shared call counter. Cloning shares the
/// counter, so replicas and subquery children bill the same cell.
#[derive(Clone)]
struct ToolEntry {
    tool: Arc<dyn Tool>,
    calls: Arc<AtomicU64>,
}

/// A set of [`Tool`]s keyed by [`Tool::name`], with per-tool call
/// accounting. This is the unit threaded through the stack: a runtime
/// holds one, `QueryRequest` can carry per-request additions,
/// `EngineConfig`/`ServerConfig` seed every worker runtime with one, and
/// subqueries inherit the parent's.
///
/// Cloning a registry shares the call counters (they are the accounting
/// identity of a registration), so [`usage`](ToolRegistry::usage) on the
/// original sees calls made through any clone.
#[derive(Clone, Default)]
pub struct ToolRegistry {
    entries: BTreeMap<String, ToolEntry>,
}

impl std::fmt::Debug for ToolRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.entries.keys().map(String::as_str).collect();
        f.debug_struct("ToolRegistry")
            .field("tools", &names)
            .finish()
    }
}

impl ToolRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `tool` under its [`name`](Tool::name), replacing any
    /// existing registration of that name (the replacement starts a
    /// fresh call counter).
    pub fn register(&mut self, tool: Arc<dyn Tool>) {
        self.entries.insert(
            tool.name().to_owned(),
            ToolEntry {
                tool,
                calls: Arc::new(AtomicU64::new(0)),
            },
        );
    }

    /// Builder-style [`register`](ToolRegistry::register).
    #[must_use]
    pub fn with(mut self, tool: Arc<dyn Tool>) -> Self {
        self.register(tool);
        self
    }

    /// Merges every registration from `other` into `self` (shared call
    /// counters and all); `other`'s entries win on name collision.
    pub fn merge(&mut self, other: &ToolRegistry) {
        for (name, entry) in &other.entries {
            self.entries.insert(name.clone(), entry.clone());
        }
    }

    /// The tool registered as `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn Tool>> {
        self.entries.get(name).map(|e| &e.tool)
    }

    /// Registered tool names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// The schemas of every registered tool, in name order — the
    /// discovery surface (servers can describe their tool set, prompts
    /// can render it).
    pub fn schemas(&self) -> Vec<ToolSchema> {
        self.entries.values().map(|e| e.tool.schema()).collect()
    }

    /// Whether no tools are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of registered tools.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Per-tool invocation counts `(name, calls)`, in name order.
    /// Counts are shared across clones: calls made by engine replicas or
    /// subquery children seeded from this registry are visible here.
    pub fn usage(&self) -> Vec<(String, u64)> {
        self.entries
            .iter()
            .map(|(name, e)| (name.clone(), e.calls.load(Ordering::Relaxed)))
            .collect()
    }

    /// Lowers the registry onto the VM's external-function hook:
    /// registers one [`Externals`] entry per exported function, each
    /// wrapped with this registry's call accounting. Later installs of
    /// the same `module.func` overwrite earlier ones, mirroring
    /// [`Externals::register`].
    pub fn install(&self, externals: &mut Externals) {
        for entry in self.entries.values() {
            let schema = entry.tool.schema();
            for f in &schema.functions {
                let tool = Arc::clone(&entry.tool);
                let calls = Arc::clone(&entry.calls);
                let func = f.name.clone();
                externals.register(&schema.module, &f.name, move |args| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    tool.invoke(&func, args)
                });
            }
        }
    }

    /// Reports per-tool call counts as `tool.calls.<name>` counters into
    /// `registry`. Counters are monotone cells: this sets each to the
    /// current rollup by adding the delta since the last report.
    pub fn report_metrics(&self, registry: &lmql_obs::Registry) {
        for (name, calls) in self.usage() {
            let counter = registry.counter(&format!("tool.calls.{name}"));
            let seen = counter.get();
            if calls > seen {
                counter.add(calls - seen);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;

    impl Tool for Echo {
        fn name(&self) -> &str {
            "echo"
        }

        fn schema(&self) -> ToolSchema {
            ToolSchema::new("echo", "echoes its argument")
                .function("say", &["text"], "returns its first argument")
                .function("shout", &["text"], "returns its first argument uppercased")
        }

        fn invoke(&self, func: &str, args: &[Value]) -> std::result::Result<Value, String> {
            let text = args
                .first()
                .and_then(Value::as_str)
                .ok_or("echo takes a string")?;
            match func {
                "say" => Ok(Value::Str(text.to_owned())),
                "shout" => Ok(Value::Str(text.to_uppercase())),
                other => Err(format!("echo has no function `{other}`")),
            }
        }
    }

    #[test]
    fn install_exposes_every_schema_function() {
        let registry = ToolRegistry::new().with(Arc::new(Echo));
        let mut externals = Externals::new();
        registry.install(&mut externals);
        let said = externals
            .call_public("echo", "say", &[Value::Str("hi".into())])
            .unwrap();
        assert_eq!(said, Value::Str("hi".into()));
        let shouted = externals
            .call_public("echo", "shout", &[Value::Str("hi".into())])
            .unwrap();
        assert_eq!(shouted, Value::Str("HI".into()));
    }

    #[test]
    fn usage_counts_calls_and_is_shared_across_clones() {
        let registry = ToolRegistry::new().with(Arc::new(Echo));
        let clone = registry.clone();
        let mut externals = Externals::new();
        clone.install(&mut externals);
        for _ in 0..3 {
            externals
                .call_public("echo", "say", &[Value::Str("x".into())])
                .unwrap();
        }
        assert_eq!(registry.usage(), vec![("echo".to_owned(), 3)]);
        assert_eq!(clone.usage(), vec![("echo".to_owned(), 3)]);
    }

    #[test]
    fn fn_tool_adapts_closures() {
        let tool = FnTool::new("m", "double", |args| {
            let n = args.first().and_then(Value::as_int).ok_or("want int")?;
            Ok(Value::Int(n * 2))
        });
        assert_eq!(tool.name(), "m.double");
        assert_eq!(tool.invoke("double", &[Value::Int(4)]), Ok(Value::Int(8)));
        assert!(tool.invoke("triple", &[]).is_err());

        let registry = ToolRegistry::new().with(Arc::new(tool));
        let mut externals = Externals::new();
        registry.install(&mut externals);
        let v = externals
            .call_public("m", "double", &[Value::Int(21)])
            .unwrap();
        assert_eq!(v, Value::Int(42));
    }

    #[test]
    fn register_replaces_by_name_and_merge_prefers_other() {
        let mut registry = ToolRegistry::new();
        registry.register(Arc::new(FnTool::new("m", "f", |_| Ok(Value::Int(1)))));
        let mut other = ToolRegistry::new();
        other.register(Arc::new(FnTool::new("m", "f", |_| Ok(Value::Int(2)))));
        registry.merge(&other);
        assert_eq!(registry.len(), 1);
        let mut externals = Externals::new();
        registry.install(&mut externals);
        assert_eq!(externals.call_public("m", "f", &[]).unwrap(), Value::Int(2));
    }

    #[test]
    fn report_metrics_exports_counters() {
        let registry = ToolRegistry::new().with(Arc::new(Echo));
        let mut externals = Externals::new();
        registry.install(&mut externals);
        externals
            .call_public("echo", "say", &[Value::Str("x".into())])
            .unwrap();
        let metrics = lmql_obs::Registry::new();
        registry.report_metrics(&metrics);
        assert_eq!(metrics.counter("tool.calls.echo").get(), 1);
        // Re-reporting without new calls does not double count.
        registry.report_metrics(&metrics);
        assert_eq!(metrics.counter("tool.calls.echo").get(), 1);
    }
}
