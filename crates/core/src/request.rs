//! The consolidated query entry point.
//!
//! Four PRs grew four parallel knob surfaces: decoding options on the
//! runtime, mask tuning inside them, retry policies wrapped around the
//! model, and now stream sinks. [`QueryRequest`] gathers all of them
//! behind one fluent builder so a caller configures *a query*, not four
//! layers: unset fields inherit the executing
//! [`Runtime`](crate::Runtime)'s defaults, set fields override them for
//! that call only. The older entry points (`Runtime::run`,
//! `run_program`, …) remain as thin shims over the same machinery.

use crate::constraints::{MaskConfig, MaskEngine};
use crate::stream::StreamSink;
use crate::tool::{Tool, ToolRegistry};
use crate::Value;
use lmql_lm::RetryPolicy;
use std::sync::Arc;
use std::time::Duration;

/// One query execution, fully described: source, decoding overrides,
/// mask tuning, retry/deadline policy, bindings and stream sink.
///
/// # Example
///
/// ```
/// use lmql::{QueryRequest, Runtime, Value};
/// use lmql_lm::{corpus, RetryPolicy};
/// use std::time::Duration;
///
/// # fn main() -> Result<(), lmql::Error> {
/// let runtime = Runtime::new(corpus::standard_ngram(), corpus::standard_bpe());
/// let request = QueryRequest::new(
///     "argmax\n    \"A list of things not to forget when travelling:\\n-[THING]\"\nfrom \"m\"\nwhere stops_at(THING, \"\\n\")\n",
/// )
/// .max_tokens(32)
/// .seed(7)
/// .retry(RetryPolicy::default())
/// .deadline(Duration::from_secs(5))
/// .bind("WHO", Value::Str("me".into()));
/// let result = runtime.execute(&request)?;
/// assert!(!result.best().trace.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QueryRequest {
    source: String,
    temperature: Option<f64>,
    max_tokens_per_hole: Option<usize>,
    seed: Option<u64>,
    engine: Option<MaskEngine>,
    mask: Option<MaskConfig>,
    no_repeat_ngram: Option<usize>,
    speculative: Option<bool>,
    parallel_holes: Option<bool>,
    tracer: Option<lmql_obs::Tracer>,
    retry: Option<RetryPolicy>,
    deadline: Option<Duration>,
    sink: Option<StreamSink>,
    bindings: Vec<(String, Value)>,
    tools: ToolRegistry,
}

impl QueryRequest {
    /// A request for `source` with every setting inherited from the
    /// executing runtime.
    pub fn new(source: impl Into<String>) -> Self {
        QueryRequest {
            source: source.into(),
            temperature: None,
            max_tokens_per_hole: None,
            seed: None,
            engine: None,
            mask: None,
            no_repeat_ngram: None,
            speculative: None,
            parallel_holes: None,
            tracer: None,
            retry: None,
            deadline: None,
            sink: None,
            bindings: Vec::new(),
            tools: ToolRegistry::new(),
        }
    }

    /// The LMQL source to execute.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Overrides the softmax temperature `τ`.
    pub fn temperature(mut self, temperature: f64) -> Self {
        self.temperature = Some(temperature);
        self
    }

    /// Overrides the per-hole token budget.
    pub fn max_tokens(mut self, max_tokens_per_hole: usize) -> Self {
        self.max_tokens_per_hole = Some(max_tokens_per_hole);
        self
    }

    /// Overrides the `sample` RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Overrides the mask-generation engine (§5).
    pub fn engine(mut self, engine: MaskEngine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Overrides the mask-generation tuning (memoization, parallel
    /// scans).
    pub fn mask(mut self, mask: MaskConfig) -> Self {
        self.mask = Some(mask);
        self
    }

    /// Overrides HuggingFace-style n-gram blocking (`0` disables).
    pub fn no_repeat_ngram(mut self, n: usize) -> Self {
        self.no_repeat_ngram = Some(n);
        self
    }

    /// Overrides speculative scoring (§4).
    pub fn speculative(mut self, speculative: bool) -> Self {
        self.speculative = Some(speculative);
        self
    }

    /// Overrides program-level hole parallelism (DESIGN.md §14).
    /// Results are byte-identical either way; `false` forces fully
    /// sequential decoding for bisection.
    pub fn parallel_holes(mut self, parallel: bool) -> Self {
        self.parallel_holes = Some(parallel);
        self
    }

    /// Installs a trace recorder for this request.
    pub fn tracer(mut self, tracer: lmql_obs::Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Wraps the model in a retry layer with `policy` for this request
    /// (transient faults absorbed with backoff, PR 3 semantics).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Sets a per-model-call deadline. Implies a retry layer: the
    /// deadline is the retry policy's budget, so a request with only a
    /// deadline gets the default policy with this budget.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Streams [`QueryEvent`](crate::QueryEvent)s into `sink` while the
    /// request executes.
    pub fn stream(mut self, sink: StreamSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Binds a query argument for this request (overrides a runtime
    /// binding of the same name).
    pub fn bind(mut self, name: impl Into<String>, value: Value) -> Self {
        let name = name.into();
        self.bindings.retain(|(n, _)| *n != name);
        self.bindings.push((name, value));
        self
    }

    /// This request's bindings (override the runtime's, by name).
    pub fn bindings(&self) -> &[(String, Value)] {
        &self.bindings
    }

    /// Registers a [`Tool`] for this request only: its functions are
    /// callable during this execution (subqueries included) without
    /// touching the runtime's registry.
    pub fn tool(mut self, tool: Arc<dyn Tool>) -> Self {
        self.tools.register(tool);
        self
    }

    /// Merges a whole [`ToolRegistry`] into this request (shared call
    /// counters — usage through this request is visible on `registry`).
    pub fn tools(mut self, registry: &ToolRegistry) -> Self {
        self.tools.merge(registry);
        self
    }

    /// The per-request tool registry (empty unless
    /// [`tool`](QueryRequest::tool)/[`tools`](QueryRequest::tools) was
    /// called).
    pub fn tool_registry(&self) -> &ToolRegistry {
        &self.tools
    }

    /// The effective retry policy: the explicit one, with the deadline
    /// folded in; a deadline alone implies the default policy.
    pub fn retry_policy(&self) -> Option<RetryPolicy> {
        match (&self.retry, self.deadline) {
            (Some(policy), deadline) => {
                let mut policy = *policy;
                if deadline.is_some() {
                    policy.deadline = deadline;
                }
                Some(policy)
            }
            (None, Some(deadline)) => Some(RetryPolicy {
                deadline: Some(deadline),
                ..RetryPolicy::default()
            }),
            (None, None) => None,
        }
    }

    /// Resolves the effective decode options: `base` (the runtime's
    /// defaults) with this request's overrides applied.
    pub fn apply_to(&self, base: &crate::DecodeOptions) -> crate::DecodeOptions {
        let mut options = base.clone();
        if let Some(t) = self.temperature {
            options.temperature = t;
        }
        if let Some(m) = self.max_tokens_per_hole {
            options.max_tokens_per_hole = m;
        }
        if let Some(s) = self.seed {
            options.seed = s;
        }
        if let Some(e) = self.engine {
            options.engine = e;
        }
        if let Some(m) = self.mask {
            options.mask = m;
        }
        if let Some(n) = self.no_repeat_ngram {
            options.no_repeat_ngram = n;
        }
        if let Some(s) = self.speculative {
            options.speculative = s;
        }
        if let Some(p) = self.parallel_holes {
            options.parallel_holes = p;
        }
        if let Some(t) = &self.tracer {
            options.tracer = t.clone();
        }
        if let Some(sink) = &self.sink {
            options.sink = sink.clone();
        }
        options
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DecodeOptions;

    #[test]
    fn unset_fields_inherit_base() {
        let base = DecodeOptions {
            temperature: 1.5,
            max_tokens_per_hole: 9,
            ..DecodeOptions::default()
        };
        let req = QueryRequest::new("argmax \"x\" from \"m\"");
        let opts = req.apply_to(&base);
        assert_eq!(opts.temperature, 1.5);
        assert_eq!(opts.max_tokens_per_hole, 9);
        assert!(req.retry_policy().is_none());
    }

    #[test]
    fn set_fields_override_base() {
        let base = DecodeOptions::default();
        let req = QueryRequest::new("q")
            .temperature(0.5)
            .max_tokens(3)
            .seed(42)
            .no_repeat_ngram(2)
            .speculative(true);
        let opts = req.apply_to(&base);
        assert_eq!(opts.temperature, 0.5);
        assert_eq!(opts.max_tokens_per_hole, 3);
        assert_eq!(opts.seed, 42);
        assert_eq!(opts.no_repeat_ngram, 2);
        assert!(opts.speculative);
    }

    #[test]
    fn deadline_implies_retry_policy() {
        let req = QueryRequest::new("q").deadline(Duration::from_millis(250));
        let policy = req.retry_policy().expect("deadline implies policy");
        assert_eq!(policy.deadline, Some(Duration::from_millis(250)));

        let req = QueryRequest::new("q")
            .retry(RetryPolicy {
                max_retries: 9,
                ..RetryPolicy::default()
            })
            .deadline(Duration::from_millis(100));
        let policy = req.retry_policy().unwrap();
        assert_eq!(policy.max_retries, 9);
        assert_eq!(policy.deadline, Some(Duration::from_millis(100)));
    }

    #[test]
    fn bind_replaces_same_name() {
        let req = QueryRequest::new("q")
            .bind("X", Value::Int(1))
            .bind("X", Value::Int(2));
        assert_eq!(req.bindings(), &[("X".to_owned(), Value::Int(2))]);
    }
}
