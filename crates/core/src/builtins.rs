//! Built-in functions (the paper's Fig. 8) and string/list methods.
//!
//! `words`, `sentences`, `len` and `int` also have FINAL/FOLLOW semantics in
//! the constraint engine (`constraints` module); the concrete evaluation
//! here is shared by the VM and by the constraint engine's value level.

use crate::{Error, Result, Value};
use lmql_syntax::Span;

/// Splits a string into words (whitespace-separated), the value-level
/// semantics of the `words` builtin.
pub fn words(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_owned).collect()
}

/// Splits a string into sentences, the value-level semantics of the
/// `sentences` builtin. A sentence ends at `.`, `!` or `?` (kept), with
/// surrounding whitespace trimmed.
pub fn sentences(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in s.chars() {
        cur.push(c);
        if matches!(c, '.' | '!' | '?') {
            let t = cur.trim();
            if !t.is_empty() {
                out.push(t.to_owned());
            }
            cur.clear();
        }
    }
    let t = cur.trim();
    if !t.is_empty() {
        out.push(t.to_owned());
    }
    out
}

/// `len` over strings (character count) and lists (element count).
pub fn len_of(v: &Value, span: Span) -> Result<i64> {
    match v {
        Value::Str(s) => Ok(s.chars().count() as i64),
        Value::List(l) => Ok(l.len() as i64),
        other => Err(Error::eval(
            format!("len() is not defined for {}", other.type_name()),
            span,
        )),
    }
}

/// `true` if `s` is exactly a (signed) integer literal `-?[0-9]+` — the
/// predicate behind the `int(VAR)` constraint. Strict on purpose (no
/// surrounding whitespace), so the FOLLOW fast path and the FINAL rules
/// agree token-for-token.
pub fn is_int_string(s: &str) -> bool {
    let digits = s.strip_prefix('-').unwrap_or(s);
    !digits.is_empty() && digits.chars().all(|c| c.is_ascii_digit())
}

/// Names that are built-in functions (callable in query bodies and
/// `where` clauses).
pub const BUILTIN_FUNCTIONS: &[&str] = &[
    "words",
    "sentences",
    "characters",
    "len",
    "int",
    "str",
    "range",
    "stops_at",
];

/// Calls a built-in function with concrete arguments (the VM's and the
/// constraint value level's shared implementation).
///
/// `stops_at` always evaluates to `True` at the value level: it is a
/// stopping condition, not a validity predicate (§3.1); its effect is
/// implemented by the decoder.
///
/// # Errors
///
/// Returns an evaluation error for arity or type mismatches.
pub fn call_builtin(name: &str, args: &[Value], span: Span) -> Result<Value> {
    let arity = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(Error::eval(
                format!("{name}() takes {n} argument(s), got {}", args.len()),
                span,
            ))
        }
    };
    let str_arg = |i: usize| -> Result<&str> {
        args[i].as_str().ok_or_else(|| {
            Error::eval(
                format!("{name}() expects a string, got {}", args[i].type_name()),
                span,
            )
        })
    };

    match name {
        "words" => {
            arity(1)?;
            Ok(Value::List(
                words(str_arg(0)?).into_iter().map(Value::Str).collect(),
            ))
        }
        "sentences" => {
            arity(1)?;
            Ok(Value::List(
                sentences(str_arg(0)?).into_iter().map(Value::Str).collect(),
            ))
        }
        "characters" => {
            // Identity at the value level: `len(characters(s))` counts
            // characters because `len` over strings already does.
            arity(1)?;
            Ok(Value::Str(str_arg(0)?.to_owned()))
        }
        "len" => {
            arity(1)?;
            Ok(Value::Int(len_of(&args[0], span)?))
        }
        "int" => {
            arity(1)?;
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(*i)),
                Value::Float(f) => Ok(Value::Int(*f as i64)),
                Value::Str(s) => s
                    .trim()
                    .parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| Error::eval(format!("int() cannot parse {s:?}"), span)),
                other => Err(Error::eval(
                    format!("int() is not defined for {}", other.type_name()),
                    span,
                )),
            }
        }
        "str" => {
            arity(1)?;
            Ok(Value::Str(args[0].to_prompt_string()))
        }
        "range" => match args {
            [Value::Int(n)] => Ok(Value::List((0..*n).map(Value::Int).collect())),
            [Value::Int(a), Value::Int(b)] => Ok(Value::List((*a..*b).map(Value::Int).collect())),
            _ => Err(Error::eval("range() expects 1 or 2 integers", span)),
        },
        "stops_at" => {
            arity(2)?;
            Ok(Value::Bool(true))
        }
        _ => Err(Error::eval(format!("unknown function `{name}`"), span)),
    }
}

/// Calls a non-mutating method on a value. Mutating methods (`append`)
/// are handled by the VM, which writes the updated value back to scope.
///
/// # Errors
///
/// Returns an evaluation error for unknown methods or type mismatches.
pub fn call_method(obj: &Value, name: &str, args: &[Value], span: Span) -> Result<Value> {
    let str_arg = |i: usize| -> Result<&str> {
        args.get(i)
            .and_then(Value::as_str)
            .ok_or_else(|| Error::eval(format!(".{name}() expects a string argument"), span))
    };
    match (obj, name) {
        (Value::Str(s), "split") => {
            let parts: Vec<Value> = if args.is_empty() {
                s.split_whitespace().map(Value::from).collect()
            } else {
                s.split(str_arg(0)?).map(Value::from).collect()
            };
            Ok(Value::List(parts))
        }
        (Value::Str(s), "strip") => Ok(Value::Str(s.trim().to_owned())),
        (Value::Str(s), "startswith") => Ok(Value::Bool(s.starts_with(str_arg(0)?))),
        (Value::Str(s), "endswith") => Ok(Value::Bool(s.ends_with(str_arg(0)?))),
        (Value::Str(s), "upper") => Ok(Value::Str(s.to_uppercase())),
        (Value::Str(s), "lower") => Ok(Value::Str(s.to_lowercase())),
        (Value::Str(s), "replace") => Ok(Value::Str(s.replace(str_arg(0)?, str_arg(1)?))),
        (Value::List(l), "index") => {
            let target = args
                .first()
                .ok_or_else(|| Error::eval(".index() expects one argument", span))?;
            l.iter()
                .position(|v| v.py_eq(target))
                .map(|i| Value::Int(i as i64))
                .ok_or_else(|| Error::eval("value not in list", span))
        }
        _ => Err(Error::eval(
            format!("unknown method `{}` on {}", name, obj.type_name()),
            span,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> Span {
        Span::default()
    }

    #[test]
    fn words_splits_whitespace() {
        assert_eq!(words("a  b\nc"), vec!["a", "b", "c"]);
        assert!(words("").is_empty());
    }

    #[test]
    fn sentences_keep_terminators() {
        assert_eq!(
            sentences("One. Two! Three? Four"),
            vec!["One.", "Two!", "Three?", "Four"]
        );
    }

    #[test]
    fn len_on_strings_and_lists() {
        assert_eq!(len_of(&Value::Str("abc".into()), sp()).unwrap(), 3);
        assert_eq!(len_of(&Value::List(vec![Value::Int(1)]), sp()).unwrap(), 1);
        assert!(len_of(&Value::Int(1), sp()).is_err());
    }

    #[test]
    fn int_string_predicate() {
        assert!(is_int_string("42"));
        assert!(is_int_string("-7"));
        assert!(
            !is_int_string(" -7 "),
            "predicate is strict about whitespace"
        );
        assert!(!is_int_string("4.2"));
        assert!(!is_int_string(""));
        assert!(!is_int_string("x1"));
    }

    #[test]
    fn builtin_range() {
        assert_eq!(
            call_builtin("range", &[Value::Int(3)], sp()).unwrap(),
            Value::List(vec![Value::Int(0), Value::Int(1), Value::Int(2)])
        );
        assert_eq!(
            call_builtin("range", &[Value::Int(2), Value::Int(4)], sp()).unwrap(),
            Value::List(vec![Value::Int(2), Value::Int(3)])
        );
    }

    #[test]
    fn builtin_int_parses() {
        assert_eq!(
            call_builtin("int", &[Value::Str("12".into())], sp()).unwrap(),
            Value::Int(12)
        );
        assert!(call_builtin("int", &[Value::Str("x".into())], sp()).is_err());
    }

    #[test]
    fn stops_at_is_true_at_value_level() {
        let v = call_builtin(
            "stops_at",
            &[Value::Str("a".into()), Value::Str("b".into())],
            sp(),
        )
        .unwrap();
        assert_eq!(v, Value::Bool(true));
    }

    #[test]
    fn string_methods() {
        let s = Value::Str("a, b, c".into());
        let parts = call_method(&s, "split", &[Value::Str(", ".into())], sp()).unwrap();
        assert_eq!(parts, Value::List(vec!["a".into(), "b".into(), "c".into()]));
        assert_eq!(
            call_method(&Value::Str(" x ".into()), "strip", &[], sp()).unwrap(),
            Value::Str("x".into())
        );
        assert_eq!(
            call_method(&s, "endswith", &[Value::Str("c".into())], sp()).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn unknown_method_errors() {
        assert!(call_method(&Value::Int(1), "split", &[], sp()).is_err());
    }
}
