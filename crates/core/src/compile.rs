//! Lowering from the parsed AST to VM instructions.

use crate::builtins::BUILTIN_FUNCTIONS;
use crate::program::{CompiledSegment, Instr, Program, PromptTemplate};
use crate::{Error, Result, Value};
use lmql_syntax::ast::{Expr, Query, Stmt};
use lmql_syntax::{hole_names, parse_expr, parse_prompt, parse_query, Segment, Span};

/// List methods that mutate their receiver in place.
const MUTATING_METHODS: &[&str] = &["append", "extend"];

/// Compiles LMQL source text into a [`Program`].
///
/// # Errors
///
/// Returns syntax errors from parsing and compile errors for static rule
/// violations (unknown functions, misplaced `distribute` variable, …).
pub fn compile_source(source: &str) -> Result<Program> {
    let query = parse_query(source)?;
    compile_query(&query)
}

/// Compiles a parsed query into a [`Program`].
///
/// # Errors
///
/// See [`compile_source`].
pub fn compile_query(query: &Query) -> Result<Program> {
    let mut c = Compiler {
        instrs: Vec::new(),
        holes: Vec::new(),
        loop_stack: Vec::new(),
        imports: query.imports.iter().map(|i| i.name.clone()).collect(),
    };
    c.stmts(&query.body)?;
    c.instrs.push(Instr::Halt);

    // Static checks on the distribute clause: the variable must be a hole
    // of the query (§3 requires it to be the *last* hole; with control
    // flow "last" is dynamic, so the runtime re-checks at execution time).
    if let Some(d) = &query.distribute {
        if !c.holes.iter().any(|h| h == &d.var) {
            return Err(Error::compile(
                format!("distribute variable `{}` is not a hole of the query", d.var),
                d.span,
            ));
        }
    }

    Ok(Program {
        instrs: c.instrs,
        holes: c.holes,
        model: query.model.clone(),
        decoder: query.decoder.clone(),
        where_clause: query.where_clause.clone(),
        distribute: query.distribute.clone(),
        imports: c.imports,
    })
}

struct LoopFrame {
    head: usize,
    /// Indices of `Jump`/`IterNext` placeholders to patch with the exit pc.
    exit_patches: Vec<usize>,
    /// `for` loops hold an iterator on the iterator stack; `while` loops
    /// do not, so `break` must only pop for the former.
    is_for: bool,
}

struct Compiler {
    instrs: Vec<Instr>,
    holes: Vec<String>,
    loop_stack: Vec<LoopFrame>,
    imports: Vec<String>,
}

impl Compiler {
    fn here(&self) -> usize {
        self.instrs.len()
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<()> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<()> {
        match stmt {
            Stmt::Prompt { raw, span } => {
                let segments = parse_prompt(raw, *span)?
                    .into_iter()
                    .map(|seg| {
                        Ok(match seg {
                            Segment::Literal(t) => CompiledSegment::Literal(lmql_arena::intern(&t)),
                            Segment::Hole(n) => CompiledSegment::Hole(n),
                            Segment::Recall(src) => {
                                // Validated by parse_prompt; parse to AST.
                                CompiledSegment::Recall(parse_expr(&src)?)
                            }
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                for name in hole_names(raw) {
                    if !self.holes.contains(&name) {
                        self.holes.push(name);
                    }
                }
                self.instrs.push(Instr::Emit(PromptTemplate {
                    segments,
                    span: *span,
                }));
                Ok(())
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                self.instrs.push(Instr::Pop);
                Ok(())
            }
            Stmt::Assign { name, value, .. } => {
                self.expr(value)?;
                self.instrs.push(Instr::Store(name.clone()));
                Ok(())
            }
            Stmt::For {
                var,
                iterable,
                body,
                span,
            } => {
                self.expr(iterable)?;
                self.instrs.push(Instr::IterNew(*span));
                let head = self.here();
                // exit patched later
                self.instrs.push(Instr::IterNext {
                    var: var.clone(),
                    exit: usize::MAX,
                });
                self.loop_stack.push(LoopFrame {
                    head,
                    exit_patches: vec![head],
                    is_for: true,
                });
                self.stmts(body)?;
                self.instrs.push(Instr::Jump(head));
                let exit = self.here();
                let frame = self.loop_stack.pop().expect("frame pushed above");
                for idx in frame.exit_patches {
                    match &mut self.instrs[idx] {
                        Instr::IterNext { exit: e, .. } | Instr::Jump(e) => *e = exit,
                        other => unreachable!("bad exit patch target {other:?}"),
                    }
                }
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                let head = self.here();
                self.expr(cond)?;
                let jf = self.here();
                self.instrs.push(Instr::JumpIfFalse(usize::MAX));
                self.loop_stack.push(LoopFrame {
                    head,
                    exit_patches: vec![],
                    is_for: false,
                });
                self.stmts(body)?;
                self.instrs.push(Instr::Jump(head));
                let exit = self.here();
                self.patch_jump(jf, exit);
                let frame = self.loop_stack.pop().expect("frame pushed above");
                for idx in frame.exit_patches {
                    match &mut self.instrs[idx] {
                        Instr::Jump(e) => *e = exit,
                        other => unreachable!("bad exit patch target {other:?}"),
                    }
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                self.expr(cond)?;
                let jf = self.here();
                self.instrs.push(Instr::JumpIfFalse(usize::MAX));
                self.stmts(then_body)?;
                if else_body.is_empty() {
                    let end = self.here();
                    self.patch_jump(jf, end);
                } else {
                    let jend = self.here();
                    self.instrs.push(Instr::Jump(usize::MAX));
                    let else_start = self.here();
                    self.patch_jump(jf, else_start);
                    self.stmts(else_body)?;
                    let end = self.here();
                    self.patch_jump(jend, end);
                }
                Ok(())
            }
            Stmt::Break(span) => {
                let Some(frame) = self.loop_stack.last() else {
                    return Err(Error::compile("`break` outside of a loop", *span));
                };
                if frame.is_for {
                    // Unwind the loop's iterator; `while` has none.
                    self.instrs.push(Instr::PopIter);
                }
                let j = self.here();
                self.instrs.push(Instr::Jump(usize::MAX));
                self.loop_stack
                    .last_mut()
                    .expect("checked non-empty")
                    .exit_patches
                    .push(j);
                Ok(())
            }
            Stmt::Continue(span) => {
                let head = self
                    .loop_stack
                    .last()
                    .ok_or_else(|| Error::compile("`continue` outside of a loop", *span))?
                    .head;
                self.instrs.push(Instr::Jump(head));
                Ok(())
            }
            Stmt::Pass(_) => Ok(()),
        }
    }

    fn patch_jump(&mut self, idx: usize, target: usize) {
        match &mut self.instrs[idx] {
            Instr::Jump(t) | Instr::JumpIfFalse(t) => *t = target,
            other => unreachable!("bad jump patch target {other:?}"),
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<()> {
        match e {
            Expr::Str { value, .. } => {
                self.instrs.push(Instr::Const(Value::Str(value.clone())));
            }
            Expr::Int { value, .. } => {
                self.instrs.push(Instr::Const(Value::Int(*value)));
            }
            Expr::Float { value, .. } => {
                self.instrs.push(Instr::Const(Value::Float(*value)));
            }
            Expr::Bool { value, .. } => {
                self.instrs.push(Instr::Const(Value::Bool(*value)));
            }
            Expr::None { .. } => {
                self.instrs.push(Instr::Const(Value::None));
            }
            Expr::Name { name, span } => {
                self.instrs.push(Instr::Load(name.clone(), *span));
            }
            Expr::List { items, .. } => {
                for item in items {
                    self.expr(item)?;
                }
                self.instrs.push(Instr::MakeList(items.len()));
            }
            Expr::Call { func, args, span } => self.call(func, args, *span)?,
            Expr::Attribute { span, .. } => {
                return Err(Error::compile(
                    "attribute access is only supported as a call target",
                    *span,
                ));
            }
            Expr::Index { obj, index, span } => {
                self.expr(obj)?;
                self.expr(index)?;
                self.instrs.push(Instr::Index(*span));
            }
            Expr::Slice { obj, lo, hi, span } => {
                self.expr(obj)?;
                if let Some(lo) = lo {
                    self.expr(lo)?;
                }
                if let Some(hi) = hi {
                    self.expr(hi)?;
                }
                self.instrs.push(Instr::Slice {
                    has_lo: lo.is_some(),
                    has_hi: hi.is_some(),
                    span: *span,
                });
            }
            Expr::BinOp {
                op,
                left,
                right,
                span,
            } => {
                self.expr(left)?;
                self.expr(right)?;
                self.instrs.push(Instr::BinOp(*op, *span));
            }
            Expr::Compare {
                op,
                left,
                right,
                span,
            } => {
                self.expr(left)?;
                self.expr(right)?;
                self.instrs.push(Instr::Compare(*op, *span));
            }
            Expr::BoolOp { and, operands, .. } => {
                for o in operands {
                    self.expr(o)?;
                }
                self.instrs.push(Instr::BoolFold {
                    and: *and,
                    count: operands.len(),
                });
            }
            Expr::Not { operand, .. } => {
                self.expr(operand)?;
                self.instrs.push(Instr::Not);
            }
            Expr::Neg { operand, span } => {
                self.expr(operand)?;
                self.instrs.push(Instr::Neg(*span));
            }
        }
        Ok(())
    }

    fn call(&mut self, func: &Expr, args: &[Expr], span: Span) -> Result<()> {
        match func {
            Expr::Name { name, .. } => {
                // `subquery(source[, var])` is a runtime capability, not
                // a value builtin: it launches a child query through the
                // engine (DESIGN.md §14), so it compiles to an external
                // call the runtime pre-registers under `__runtime`.
                if name == "subquery" {
                    if args.is_empty() || args.len() > 2 {
                        return Err(Error::compile(
                            "subquery(source[, variable]) takes 1 or 2 arguments",
                            span,
                        ));
                    }
                    for a in args {
                        self.expr(a)?;
                    }
                    self.instrs.push(Instr::CallExternal {
                        module: "__runtime".to_owned(),
                        func: "subquery".to_owned(),
                        argc: args.len(),
                        span,
                    });
                    return Ok(());
                }
                if !BUILTIN_FUNCTIONS.contains(&name.as_str()) {
                    return Err(Error::compile(
                        format!(
                            "unknown function `{name}` (user-defined functions are not \
                             allowed in query bodies; register externals via a module)"
                        ),
                        span,
                    ));
                }
                for a in args {
                    self.expr(a)?;
                }
                self.instrs.push(Instr::CallBuiltin {
                    name: name.clone(),
                    argc: args.len(),
                    span,
                });
                Ok(())
            }
            Expr::Attribute { obj, name, .. } => {
                // module.func(...) for imported modules
                if let Expr::Name { name: base, .. } = obj.as_ref() {
                    if self.imports.contains(base) {
                        for a in args {
                            self.expr(a)?;
                        }
                        self.instrs.push(Instr::CallExternal {
                            module: base.clone(),
                            func: name.clone(),
                            argc: args.len(),
                            span,
                        });
                        return Ok(());
                    }
                    if MUTATING_METHODS.contains(&name.as_str()) {
                        for a in args {
                            self.expr(a)?;
                        }
                        self.instrs.push(Instr::CallMutMethod {
                            var: base.clone(),
                            name: name.clone(),
                            argc: args.len(),
                            span,
                        });
                        return Ok(());
                    }
                }
                if MUTATING_METHODS.contains(&name.as_str()) {
                    return Err(Error::compile(
                        format!("`.{name}()` requires a plain variable receiver"),
                        span,
                    ));
                }
                self.expr(obj)?;
                for a in args {
                    self.expr(a)?;
                }
                self.instrs.push(Instr::CallMethod {
                    name: name.clone(),
                    argc: args.len(),
                    span,
                });
                Ok(())
            }
            other => Err(Error::compile(
                "call target must be a function or method name",
                other.span(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_fig1b() {
        let p = compile_source(
            r#"
argmax
    "A list of things not to forget when travelling:\n"
    things = []
    for i in range(2):
        "- [THING]\n"
        things.append(THING)
    "The most important of these is [ITEM]."
from "gpt-j-6B"
where len(words(THING)) <= 2
distribute ITEM in things
"#,
        )
        .unwrap();
        assert_eq!(p.holes, vec!["THING", "ITEM"]);
        assert!(matches!(p.instrs.last(), Some(Instr::Halt)));
        assert!(p
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::CallMutMethod { name, .. } if name == "append")));
    }

    #[test]
    fn distribute_var_must_be_hole() {
        let err =
            compile_source("argmax\n    \"[X]\"\nfrom \"m\"\ndistribute Y in [1]\n").unwrap_err();
        assert!(matches!(err, Error::Compile { .. }));
    }

    #[test]
    fn unknown_function_rejected() {
        let err = compile_source("argmax\n    foo(1)\nfrom \"m\"\n").unwrap_err();
        assert!(err.to_string().contains("unknown function"));
    }

    #[test]
    fn break_outside_loop_rejected() {
        let err = compile_source("argmax\n    break\nfrom \"m\"\n").unwrap_err();
        assert!(err.to_string().contains("break"));
    }

    #[test]
    fn external_calls_need_import() {
        // without the import, wiki.search is a method call on an unknown
        // variable — it compiles to CallMethod and fails at runtime, but
        // with the import it compiles to CallExternal.
        let p = compile_source("import wiki\nargmax\n    x = wiki.search(\"q\")\nfrom \"m\"\n")
            .unwrap();
        assert!(p
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::CallExternal { module, .. } if module == "wiki")));
    }

    #[test]
    fn loop_jumps_patched() {
        let p = compile_source(
            "argmax\n    for i in range(3):\n        if i == 1: break\nfrom \"m\"\n",
        )
        .unwrap();
        for instr in &p.instrs {
            match instr {
                Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::IterNext { exit: t, .. } => {
                    assert!(*t <= p.instrs.len(), "unpatched jump {t}");
                }
                _ => {}
            }
        }
    }
}
