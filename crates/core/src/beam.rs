//! Scripted beam search (§4): beam search jointly over holes *and* query
//! control flow.
//!
//! Each beam owns a full VM snapshot, so different beams may take
//! different control-flow paths (e.g. a ReAct beam that decodes `Act`
//! branches into the lookup arm while a `Tho` beam does not). Discarded
//! beams are pruned and never extended further.

use crate::constraints::{fingerprint_scope_full, MaskOutcome, Masker};
use crate::decode::DecodeOptions;
use crate::interp::{Externals, Step, VmState};
use crate::stream::{QueryEvent, StreamSink};
use crate::{Error, Program, Result, Value};
use lmql_lm::LanguageModel;
use lmql_tokenizer::{Bpe, TokenId, TokenSet};
use std::collections::HashMap;
use std::sync::Arc;

/// Safety cap on beam-search iterations (tokens per beam across the whole
/// query).
const MAX_TOTAL_STEPS: usize = 100_000;

#[derive(Debug, Clone)]
struct Beam {
    vm: VmState,
    /// Hole currently being decoded, with its partial value.
    hole: Option<(String, String)>,
    /// Token context `uv` for the current hole (prompt tokens + picked
    /// tokens); rebuilt when the VM advances past template text.
    context: Vec<lmql_tokenizer::TokenId>,
    /// Tokens generated into the current hole.
    hole_tokens: usize,
    /// Cumulative log-probability of all chosen tokens.
    log_prob: f64,
    /// Streaming hypothesis id: stable for this beam's lifetime; forks
    /// mint fresh ids for every clone but the first.
    path: u32,
    done: bool,
}

/// A live beam's fate for one search step, decided before any scoring so
/// the step's forward passes can go out as one batch.
#[derive(Debug)]
enum Planned {
    /// Already finished; carried through unchanged.
    Done(Beam),
    /// The hole ends here (stop condition, exhausted mask, budget).
    Finish(Beam),
    /// Extend by one token under this mask.
    Extend { beam: Beam, mask: TokenSet },
    /// The automaton proved exactly one admissible continuation (and no
    /// EOS): extend without scoring (fast-forward, DESIGN.md §12). The
    /// scored path would see a singleton mask renormalise to probability
    /// exactly 1.0 — one pick, no forks, log-prob delta 0 — so skipping
    /// the batch entry leaves scores and events byte-identical.
    Forced { beam: Beam, token: TokenId },
}

/// A finished beam: its VM (trace, scope, hole records) and score.
#[derive(Debug, Clone)]
pub struct FinishedBeam {
    /// The completed execution.
    pub vm: VmState,
    /// Cumulative log-probability.
    pub log_prob: f64,
    /// The streaming hypothesis id this beam's events were tagged with.
    pub path: u32,
}

/// Runs scripted beam search with `n` beams over a compiled program.
///
/// Returns up to `n` finished executions, best first.
///
/// # Errors
///
/// Fails when every beam dies on constraint dead ends, or on evaluation
/// errors inside the query body.
#[allow(clippy::too_many_arguments)]
pub fn run_beam_search<L: LanguageModel + ?Sized>(
    lm: &L,
    bpe: &Arc<Bpe>,
    masker: &mut Masker,
    program: &Program,
    externals: &Externals,
    bindings: &[(String, Value)],
    n: usize,
    options: &DecodeOptions,
) -> Result<Vec<FinishedBeam>> {
    assert!(n >= 1, "beam width must be at least 1");
    if program.distribute.is_some() {
        return Err(Error::compile(
            "distribute clauses are not supported with beam decoding; use argmax or sample",
            lmql_syntax::Span::default(),
        ));
    }

    let tracer = options.tracer.clone();
    let sink = &options.sink;
    let eos = bpe.vocab().eos();
    let mut init = Beam {
        vm: VmState::new(bindings.iter().cloned()),
        hole: None,
        context: Vec::new(),
        hole_tokens: 0,
        log_prob: 0.0,
        path: sink.path(),
        done: false,
    };
    advance(&mut init, program, externals, bpe, sink)?;
    let mut beams = vec![init];
    // Fresh hypothesis ids for forked beams, starting past the root.
    let mut next_path: u32 = sink.path() + 1;
    // Per-step mask dedup: beams that have not diverged in (scope, hole,
    // value) — e.g. right after a fork, before their values differ — share
    // one mask computation. Keyed on the full scope hash because beams may
    // follow different control-flow paths with different scopes.
    let mut step_masks: HashMap<(u64, String, String), (MaskOutcome, Option<TokenId>)> =
        HashMap::new();

    for _ in 0..MAX_TOTAL_STEPS {
        if beams.iter().all(|b| b.done) {
            break;
        }
        if sink.cancelled() {
            return Err(Error::Cancelled);
        }
        // Pass 1: compute every live beam's mask and classify it, so all
        // contexts that need scores this step are known up front.
        step_masks.clear();
        let mut planned: Vec<Planned> = Vec::with_capacity(beams.len());
        for beam in beams.drain(..) {
            if beam.done {
                planned.push(Planned::Done(beam));
                continue;
            }
            let (var, value) = beam.hole.clone().expect("active beam has a hole");
            let key = (fingerprint_scope_full(beam.vm.scope()), var, value);
            let (outcome, forced) = match step_masks.get(&key) {
                Some(hit) => hit.clone(),
                None => {
                    let o = masker.compute(
                        program.where_clause.as_ref(),
                        beam.vm.scope(),
                        &key.1,
                        &key.2,
                    );
                    let f = masker.forced_token(&o);
                    step_masks.insert(key, (o.clone(), f));
                    (o, f)
                }
            };

            if outcome.must_stop
                || (outcome.allowed.is_empty() && outcome.eos_allowed)
                || beam.hole_tokens >= options.max_tokens_per_hole
            {
                planned.push(Planned::Finish(beam));
                masker.recycle(outcome);
                continue;
            }
            if outcome.is_dead_end() {
                tracer.instant_with("beam", "prune", || {
                    vec![("reason".to_owned(), "dead_end".into())]
                });
                sink.emit(QueryEvent::BeamPrune { path: beam.path });
                masker.recycle(outcome);
                continue; // prune this beam
            }
            if let Some(token) = forced {
                planned.push(Planned::Forced { beam, token });
                masker.recycle(outcome);
                continue;
            }
            let mut mask = masker.pooled_copy(&outcome.allowed);
            if outcome.eos_allowed {
                mask.insert(eos);
            }
            planned.push(Planned::Extend { beam, mask });
            masker.recycle(outcome);
        }

        // One batched forward pass covers the whole step — through a
        // batching backend this is a single dispatch instead of one per
        // beam (and bit-identical either way, see `score_batch`).
        let contexts: Vec<&[TokenId]> = planned
            .iter()
            .filter_map(|p| match p {
                Planned::Extend { beam, .. } => Some(beam.context.as_slice()),
                _ => None,
            })
            .collect();
        let mut scored = {
            let mut span = tracer.span("batch", "dispatch");
            span.arg("contexts", contexts.len() as u64);
            lm.try_score_batch(&contexts).into_iter()
        };

        // Pass 2: expand in the original beam order.
        let mut candidates: Vec<Beam> = Vec::new();
        for plan in planned {
            match plan {
                Planned::Done(beam) => candidates.push(beam),
                Planned::Finish(mut beam) => {
                    finish_hole(&mut beam, program, externals, bpe, sink)?;
                    candidates.push(beam);
                }
                Planned::Forced { mut beam, token } => {
                    masker.note_fast_forward(1);
                    let (var, v) = beam.hole.as_mut().expect("active beam has a hole");
                    let text = bpe.vocab().token_str(token);
                    sink.with_path(beam.path).token_delta(var, text, 0.0);
                    v.push_str(text);
                    beam.context.push(token);
                    beam.hole_tokens += 1;
                    candidates.push(beam);
                }
                Planned::Extend { beam, mask } => {
                    let logits = scored.next().expect("one score per extending beam")?;
                    let dist = logits.softmax(options.temperature);
                    let masked = dist.masked(&mask);
                    masker.recycle_mask(mask);
                    let Some(masked) = masked else {
                        tracer.instant_with("beam", "prune", || {
                            vec![("reason".to_owned(), "numerically_dead".into())]
                        });
                        sink.emit(QueryEvent::BeamPrune { path: beam.path });
                        continue; // numerically dead: prune
                    };
                    let picks: Vec<(TokenId, f64)> = masked
                        .top_k(n)
                        .into_iter()
                        .filter(|(_, p)| *p > 0.0)
                        .collect();
                    // Path identity: the first pick continues the parent's
                    // path, every other pick is a fork with a fresh id.
                    // Forks are announced *before* the parent's token delta
                    // for this step, so a streamed child always inherits
                    // exactly the parent's pre-delta state.
                    let mut ids: Vec<u32> = Vec::with_capacity(picks.len());
                    for j in 0..picks.len() {
                        if j == 0 {
                            ids.push(beam.path);
                        } else {
                            let child = next_path;
                            next_path += 1;
                            ids.push(child);
                            sink.emit(QueryEvent::BeamFork {
                                parent: beam.path,
                                child,
                            });
                        }
                    }
                    for (&(t, p), &id) in picks.iter().zip(&ids) {
                        let mut b = beam.clone();
                        b.path = id;
                        b.log_prob += p.ln();
                        if t == eos {
                            finish_hole(&mut b, program, externals, bpe, sink)?;
                        } else {
                            let (var, v) = b.hole.as_mut().expect("active beam has a hole");
                            let text = bpe.vocab().token_str(t);
                            sink.with_path(id).token_delta(var, text, p.ln());
                            v.push_str(text);
                            b.context.push(t);
                            b.hole_tokens += 1;
                        }
                        candidates.push(b);
                    }
                    if picks.len() > 1 {
                        let forks = picks.len() as u64;
                        tracer.instant_with("beam", "fork", || {
                            vec![("branches".to_owned(), forks.into())]
                        });
                    }
                }
            }
        }
        // Retire this step's deduped outcomes into the masker's scratch
        // pool so the next step's computations reuse their bitsets.
        for (_, (o, _)) in step_masks.drain() {
            masker.recycle(o);
        }
        if candidates.is_empty() {
            return Err(Error::NoValidContinuation {
                var: "<beam search>".to_owned(),
            });
        }
        candidates.sort_by(|a, b| {
            b.log_prob
                .partial_cmp(&a.log_prob)
                .expect("log probs are never NaN")
        });
        if candidates.len() > n {
            let dropped = (candidates.len() - n) as u64;
            tracer.instant_with("beam", "prune", || {
                vec![
                    ("reason".to_owned(), "beam_width".into()),
                    ("dropped".to_owned(), dropped.into()),
                ]
            });
            for b in &candidates[n..] {
                sink.emit(QueryEvent::BeamPrune { path: b.path });
            }
        }
        candidates.truncate(n);
        beams = candidates;
    }

    let mut finished: Vec<FinishedBeam> = beams
        .into_iter()
        .filter(|b| b.done)
        .map(|b| FinishedBeam {
            vm: b.vm,
            log_prob: b.log_prob,
            path: b.path,
        })
        .collect();
    if finished.is_empty() {
        return Err(Error::NoValidContinuation {
            var: "<beam search>".to_owned(),
        });
    }
    finished.sort_by(|a, b| {
        b.log_prob
            .partial_cmp(&a.log_prob)
            .expect("log probs are never NaN")
    });
    Ok(finished)
}

/// Completes the current hole with its accumulated value and runs the VM
/// to the next hole (or completion). Emits the hole's `VariableDone`
/// (score = the beam's cumulative log-prob) before the value lands in the
/// trace, so a streamed hypothesis is always value-complete before its
/// next prompt chunk.
fn finish_hole(
    beam: &mut Beam,
    program: &Program,
    externals: &Externals,
    bpe: &Arc<Bpe>,
    sink: &StreamSink,
) -> Result<()> {
    let (var, value) = beam
        .hole
        .take()
        .expect("finish_hole without an active hole");
    sink.with_path(beam.path)
        .variable_done(&var, &value, beam.log_prob);
    beam.vm.provide_hole(value);
    beam.hole_tokens = 0;
    advance(beam, program, externals, bpe, sink)
}

/// Runs the VM until the next hole or completion, re-encoding the token
/// context to cover the template text the VM just emitted. Template text
/// appended by this run streams out as a `PromptChunk` for this beam.
fn advance(
    beam: &mut Beam,
    program: &Program,
    externals: &Externals,
    bpe: &Arc<Bpe>,
    sink: &StreamSink,
) -> Result<()> {
    let before = beam.vm.trace().len();
    let step = beam.vm.run(program, externals)?;
    let path_sink = sink.with_path(beam.path);
    if path_sink.is_active() {
        // prompt_chunk drops empty text, so materialising only when a
        // sink listens leaves the event stream byte-identical.
        path_sink.prompt_chunk(&beam.vm.trace().suffix_string(before));
    }
    match step {
        Step::NeedHole(req) => {
            sink.with_path(beam.path).variable_start(&req.var);
            beam.hole = Some((req.var, String::new()));
            beam.context = bpe.encode(&beam.vm.trace().to_string());
        }
        Step::Done => {
            beam.done = true;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_source;
    use crate::constraints::MaskEngine;
    use lmql_lm::{Episode, ScriptedLm};

    #[test]
    fn beam_search_completes_simple_query() {
        let bpe = Arc::new(Bpe::char_level(""));
        let lm = ScriptedLm::new(Arc::clone(&bpe), [Episode::plain("Say:", " hi there")]);
        let program = compile_source(
            "beam(n=2)\n    \"Say:[OUT]\"\nfrom \"m\"\nwhere stops_at(OUT, \"there\")\n",
        )
        .unwrap();
        let mut masker = Masker::new(MaskEngine::Exact, bpe.clone());
        let beams = run_beam_search(
            &lm,
            &bpe,
            &mut masker,
            &program,
            &Externals::new(),
            &[],
            2,
            &DecodeOptions::default(),
        )
        .unwrap();
        assert!(!beams.is_empty());
        assert_eq!(beams[0].vm.trace(), "Say: hi there");
        // Best beam first.
        for w in beams.windows(2) {
            assert!(w[0].log_prob >= w[1].log_prob);
        }
    }

    #[test]
    fn beams_diverge_across_control_flow() {
        let bpe = Arc::new(Bpe::char_level(""));
        // Two plausible MODE values: script prefers "b" but "a" stays in
        // the beam, and each takes a different branch.
        let lm = ScriptedLm::new(Arc::clone(&bpe), [Episode::plain("M:", "b")]);
        let program = compile_source(
            r#"
beam(n=2)
    "M:[MODE]"
    if MODE == "a":
        " took-a"
    else:
        " took-b"
from "m"
where MODE in ["a", "b"]
"#,
        )
        .unwrap();
        let mut masker = Masker::new(MaskEngine::Exact, bpe.clone());
        let beams = run_beam_search(
            &lm,
            &bpe,
            &mut masker,
            &program,
            &Externals::new(),
            &[],
            2,
            &DecodeOptions::default(),
        )
        .unwrap();
        let traces: Vec<String> = beams.iter().map(|b| b.vm.trace().to_string()).collect();
        assert!(traces[0].contains("took-b"), "script-preferred beam wins");
        assert!(
            traces.iter().any(|t| t.contains("took-a")),
            "the alternative beam survives with its own control flow: {traces:?}"
        );
    }

    #[test]
    fn distribute_with_beam_is_rejected() {
        let bpe = Arc::new(Bpe::char_level(""));
        let lm = ScriptedLm::new(Arc::clone(&bpe), [Episode::plain("x", "y")]);
        let program =
            compile_source("beam(n=2)\n    \"[X]\"\nfrom \"m\"\ndistribute X in [\"a\"]\n")
                .unwrap();
        let mut masker = Masker::new(MaskEngine::Exact, bpe.clone());
        let err = run_beam_search(
            &lm,
            &bpe,
            &mut masker,
            &program,
            &Externals::new(),
            &[],
            2,
            &DecodeOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("distribute"));
    }
}
