//! The resumable query VM — the execution model of the paper's Alg. 1.
//!
//! A [`VmState`] executes the compiled instruction stream, maintaining the
//! interaction trace `u` and the scope `σ`. When a prompt template reaches
//! a `[VAR]` hole, the VM *suspends* and returns a [`HoleRequest`]; the
//! decoder produces a value (Alg. 2) and resumes with
//! [`VmState::provide_hole`]. Because the whole state is `Clone`, scripted
//! beam search can snapshot and fork executions at every decoding step.

use crate::builtins::{call_builtin, call_method, len_of};
use crate::program::{CompiledSegment, Instr, Program, PromptTemplate};
use crate::{Error, Result, Value};
use lmql_arena::Rope;
use lmql_syntax::ast::{BinOp, CmpOp};
use lmql_syntax::Span;
use std::collections::HashMap;
use std::sync::Arc;

/// Signature of a user-registered external function (pure and
/// deterministic, per the paper's §4 assumptions).
pub type ExternalFn = Arc<dyn Fn(&[Value]) -> std::result::Result<Value, String> + Send + Sync>;

/// Registry of external module functions callable as `module.func(args)`
/// from query bodies (after `import module`).
#[derive(Clone, Default)]
pub struct Externals {
    fns: HashMap<String, ExternalFn>,
}

impl std::fmt::Debug for Externals {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.fns.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("Externals").field("fns", &names).finish()
    }
}

impl Externals {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `module.func`.
    pub fn register<F>(&mut self, module: &str, func: &str, f: F)
    where
        F: Fn(&[Value]) -> std::result::Result<Value, String> + Send + Sync + 'static,
    {
        self.fns.insert(format!("{module}.{func}"), Arc::new(f));
    }

    /// Calls `module.func` if registered (shared with the strict
    /// expression evaluator).
    pub(crate) fn call_public(&self, module: &str, func: &str, args: &[Value]) -> Result<Value> {
        self.call(module, func, args)
    }

    fn call(&self, module: &str, func: &str, args: &[Value]) -> Result<Value> {
        let key = format!("{module}.{func}");
        let f = self.fns.get(&key).ok_or_else(|| Error::External {
            name: key.clone(),
            message: "not registered".to_owned(),
        })?;
        f(args).map_err(|message| Error::External { name: key, message })
    }
}

/// A suspended VM waiting for a hole value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HoleRequest {
    /// The `[VAR]` name to decode.
    pub var: String,
    /// Source location of the prompt string containing the hole.
    pub span: Span,
}

/// Where a hole's decoded value landed in the interaction trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HoleRecord {
    /// The variable name.
    pub var: String,
    /// The decoded value.
    pub value: String,
    /// Byte offset of the value's start in the trace.
    pub start: usize,
    /// Byte offset one past the value's end.
    pub end: usize,
}

/// What a call to [`VmState::run`] produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// The program needs a value for a hole before continuing.
    NeedHole(HoleRequest),
    /// The program ran to completion.
    Done,
}

/// Instruction budget per [`VmState::run`] call; exceeded only by runaway
/// loops in buggy queries.
const FUEL: u64 = 50_000_000;

/// A cloneable, resumable execution state of a compiled query.
#[derive(Debug, Clone)]
pub struct VmState {
    pc: usize,
    stack: Vec<Value>,
    iters: Vec<(Vec<Value>, usize)>,
    scope: HashMap<String, Value>,
    trace: Rope,
    /// Segment index within the current `Emit` (valid when `in_emit`).
    seg_idx: usize,
    in_emit: bool,
    pending_hole: Option<String>,
    hole_records: Vec<HoleRecord>,
    finished: bool,
}

impl VmState {
    /// A fresh state with initial variable bindings (the query arguments,
    /// e.g. `OPTIONS` in the paper's Fig. 10).
    pub fn new(bindings: impl IntoIterator<Item = (String, Value)>) -> Self {
        VmState {
            pc: 0,
            stack: Vec::new(),
            iters: Vec::new(),
            scope: bindings.into_iter().collect(),
            trace: Rope::new(),
            seg_idx: 0,
            in_emit: false,
            pending_hole: None,
            hole_records: Vec::new(),
            finished: false,
        }
    }

    /// The interaction trace `u` so far, as a structurally shared rope:
    /// cloning the VM (a beam fork) shares every chunk instead of
    /// copying the text. Materialise with [`Rope::to_string`] or
    /// [`Rope::write_into`] when contiguous bytes are needed.
    pub fn trace(&self) -> &Rope {
        &self.trace
    }

    /// The current scope `σ`.
    pub fn scope(&self) -> &HashMap<String, Value> {
        &self.scope
    }

    /// All hole fills so far, in decode order.
    pub fn hole_records(&self) -> &[HoleRecord] {
        &self.hole_records
    }

    /// `true` once the program has run to completion.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The hole currently awaiting a value, if suspended.
    pub fn pending_hole(&self) -> Option<&str> {
        self.pending_hole.as_deref()
    }

    /// Supplies the decoded value for the pending hole and leaves the VM
    /// ready to continue.
    ///
    /// # Panics
    ///
    /// Panics if no hole is pending.
    pub fn provide_hole(&mut self, value: impl Into<String>) {
        let var = self
            .pending_hole
            .take()
            .expect("provide_hole called without a pending hole");
        let value = value.into();
        let start = self.trace.len();
        self.trace.push_str(&value);
        self.hole_records.push(HoleRecord {
            var: var.clone(),
            value: value.clone(),
            start,
            end: self.trace.len(),
        });
        self.scope.insert(var, Value::Str(value));
        self.seg_idx += 1;
    }

    /// Runs until the next hole or completion.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; also errors if called while a hole is
    /// still pending or after completion.
    pub fn run(&mut self, program: &Program, externals: &Externals) -> Result<Step> {
        if self.pending_hole.is_some() {
            return Err(Error::eval(
                "cannot run: a hole is awaiting a value",
                Span::default(),
            ));
        }
        if self.finished {
            return Err(Error::eval("program already finished", Span::default()));
        }
        let mut fuel = FUEL;
        loop {
            fuel -= 1;
            if fuel == 0 {
                return Err(Error::eval(
                    "instruction budget exhausted (runaway loop?)",
                    Span::default(),
                ));
            }
            if self.in_emit {
                let template = match &program.instrs[self.pc] {
                    Instr::Emit(t) => t.clone(),
                    other => unreachable!("in_emit at non-emit instruction {other:?}"),
                };
                if let Some(req) = self.emit_segments(&template, externals)? {
                    return Ok(Step::NeedHole(req));
                }
                self.in_emit = false;
                self.seg_idx = 0;
                self.pc += 1;
                continue;
            }
            match program.instrs[self.pc].clone() {
                Instr::Halt => {
                    self.finished = true;
                    return Ok(Step::Done);
                }
                Instr::Emit(_) => {
                    self.in_emit = true;
                    self.seg_idx = 0;
                    // handled at loop top
                }
                Instr::Const(v) => {
                    self.stack.push(v);
                    self.pc += 1;
                }
                Instr::Load(name, span) => {
                    let v =
                        self.scope.get(&name).cloned().ok_or_else(|| {
                            Error::eval(format!("undefined variable `{name}`"), span)
                        })?;
                    self.stack.push(v);
                    self.pc += 1;
                }
                Instr::Store(name) => {
                    let v = self.pop();
                    self.scope.insert(name, v);
                    self.pc += 1;
                }
                Instr::Pop => {
                    self.pop();
                    self.pc += 1;
                }
                Instr::MakeList(n) => {
                    let items = self.pop_n(n);
                    self.stack.push(Value::List(items));
                    self.pc += 1;
                }
                Instr::BinOp(op, span) => {
                    let r = self.pop();
                    let l = self.pop();
                    self.stack.push(apply_binop(op, &l, &r, span)?);
                    self.pc += 1;
                }
                Instr::Compare(op, span) => {
                    let r = self.pop();
                    let l = self.pop();
                    self.stack
                        .push(Value::Bool(apply_compare(op, &l, &r, span)?));
                    self.pc += 1;
                }
                Instr::Not => {
                    let v = self.pop();
                    self.stack.push(Value::Bool(!v.truthy()));
                    self.pc += 1;
                }
                Instr::Neg(span) => {
                    let v = self.pop();
                    let out = match v {
                        Value::Int(i) => Value::Int(-i),
                        Value::Float(f) => Value::Float(-f),
                        other => {
                            return Err(Error::eval(
                                format!("cannot negate {}", other.type_name()),
                                span,
                            ))
                        }
                    };
                    self.stack.push(out);
                    self.pc += 1;
                }
                Instr::Index(span) => {
                    let idx = self.pop();
                    let obj = self.pop();
                    self.stack.push(index_value(&obj, &idx, span)?);
                    self.pc += 1;
                }
                Instr::Slice {
                    has_lo,
                    has_hi,
                    span,
                } => {
                    let hi = if has_hi { Some(self.pop()) } else { None };
                    let lo = if has_lo { Some(self.pop()) } else { None };
                    let obj = self.pop();
                    self.stack.push(slice_value(&obj, lo, hi, span)?);
                    self.pc += 1;
                }
                Instr::CallBuiltin { name, argc, span } => {
                    let args = self.pop_n(argc);
                    self.stack.push(call_builtin(&name, &args, span)?);
                    self.pc += 1;
                }
                Instr::CallMethod { name, argc, span } => {
                    let args = self.pop_n(argc);
                    let obj = self.pop();
                    self.stack.push(call_method(&obj, &name, &args, span)?);
                    self.pc += 1;
                }
                Instr::CallMutMethod {
                    var,
                    name,
                    argc,
                    span,
                } => {
                    let args = self.pop_n(argc);
                    let current =
                        self.scope.get(&var).cloned().ok_or_else(|| {
                            Error::eval(format!("undefined variable `{var}`"), span)
                        })?;
                    let Value::List(mut items) = current else {
                        return Err(Error::eval(
                            format!(".{name}() requires a list, got {}", current.type_name()),
                            span,
                        ));
                    };
                    match name.as_str() {
                        "append" => {
                            let [v] = <[Value; 1]>::try_from(args)
                                .map_err(|_| Error::eval(".append() takes one argument", span))?;
                            items.push(v);
                        }
                        "extend" => {
                            let [v] = <[Value; 1]>::try_from(args)
                                .map_err(|_| Error::eval(".extend() takes one argument", span))?;
                            match v {
                                Value::List(more) => items.extend(more),
                                other => {
                                    return Err(Error::eval(
                                        format!(
                                            ".extend() takes a list, got {}",
                                            other.type_name()
                                        ),
                                        span,
                                    ))
                                }
                            }
                        }
                        other => unreachable!("non-mutating method {other} compiled as mutating"),
                    }
                    self.scope.insert(var, Value::List(items));
                    self.stack.push(Value::None);
                    self.pc += 1;
                }
                Instr::CallExternal {
                    module, func, argc, ..
                } => {
                    let args = self.pop_n(argc);
                    self.stack.push(externals.call(&module, &func, &args)?);
                    self.pc += 1;
                }
                Instr::Jump(t) => self.pc = t,
                Instr::JumpIfFalse(t) => {
                    let v = self.pop();
                    if v.truthy() {
                        self.pc += 1;
                    } else {
                        self.pc = t;
                    }
                }
                Instr::IterNew(span) => {
                    let v = self.pop();
                    let items = match v {
                        Value::List(l) => l,
                        Value::Str(s) => s.chars().map(|c| Value::Str(c.to_string())).collect(),
                        other => {
                            return Err(Error::eval(
                                format!("cannot iterate over {}", other.type_name()),
                                span,
                            ))
                        }
                    };
                    self.iters.push((items, 0));
                    self.pc += 1;
                }
                Instr::IterNext { var, exit } => {
                    let (items, idx) = self.iters.last_mut().expect("iterator underflow");
                    if *idx < items.len() {
                        let v = items[*idx].clone();
                        *idx += 1;
                        self.scope.insert(var, v);
                        self.pc += 1;
                    } else {
                        self.iters.pop();
                        self.pc = exit;
                    }
                }
                Instr::PopIter => {
                    self.iters.pop().expect("iterator underflow");
                    self.pc += 1;
                }
                Instr::BoolFold { and, count } => {
                    let vals = self.pop_n(count);
                    let mut result = vals.first().cloned().unwrap_or(Value::Bool(and));
                    for v in vals {
                        let decided = if and { !v.truthy() } else { v.truthy() };
                        result = v;
                        if decided {
                            break;
                        }
                    }
                    self.stack.push(result);
                    self.pc += 1;
                }
            }
        }
    }

    fn emit_segments(
        &mut self,
        template: &PromptTemplate,
        externals: &Externals,
    ) -> Result<Option<HoleRequest>> {
        while self.seg_idx < template.segments.len() {
            match &template.segments[self.seg_idx] {
                CompiledSegment::Literal(text) => {
                    // Interned at compile time: the chunk points at the
                    // literal, no byte copy.
                    self.trace.push_shared(text);
                    self.seg_idx += 1;
                }
                CompiledSegment::Recall(expr) => {
                    let v = crate::constraints::eval_expr(expr, &self.scope, externals)?;
                    self.trace.push_str(&v.to_prompt_string());
                    self.seg_idx += 1;
                }
                CompiledSegment::Hole(name) => {
                    self.pending_hole = Some(name.clone());
                    return Ok(Some(HoleRequest {
                        var: name.clone(),
                        span: template.span,
                    }));
                }
            }
        }
        Ok(None)
    }

    fn pop(&mut self) -> Value {
        self.stack.pop().expect("value stack underflow")
    }

    fn pop_n(&mut self, n: usize) -> Vec<Value> {
        let at = self.stack.len() - n;
        self.stack.split_off(at)
    }
}

fn apply_binop(op: BinOp, l: &Value, r: &Value, span: Span) -> Result<Value> {
    use Value::*;
    let num_err = || {
        Error::eval(
            format!(
                "unsupported operand types for arithmetic: {} and {}",
                l.type_name(),
                r.type_name()
            ),
            span,
        )
    };
    match op {
        BinOp::Add => match (l, r) {
            (Int(a), Int(b)) => Ok(Int(a + b)),
            (Str(a), Str(b)) => Ok(Str(format!("{a}{b}"))),
            (List(a), List(b)) => {
                let mut out = a.clone();
                out.extend(b.iter().cloned());
                Ok(List(out))
            }
            _ => match (l.as_float(), r.as_float()) {
                (Some(a), Some(b)) => Ok(Float(a + b)),
                _ => Err(num_err()),
            },
        },
        BinOp::Sub => match (l, r) {
            (Int(a), Int(b)) => Ok(Int(a - b)),
            _ => match (l.as_float(), r.as_float()) {
                (Some(a), Some(b)) => Ok(Float(a - b)),
                _ => Err(num_err()),
            },
        },
        BinOp::Mul => match (l, r) {
            (Int(a), Int(b)) => Ok(Int(a * b)),
            _ => match (l.as_float(), r.as_float()) {
                (Some(a), Some(b)) => Ok(Float(a * b)),
                _ => Err(num_err()),
            },
        },
        BinOp::Div => match (l.as_float(), r.as_float()) {
            (Some(_), Some(0.0)) => Err(Error::eval("division by zero", span)),
            (Some(a), Some(b)) => Ok(Float(a / b)),
            _ => Err(num_err()),
        },
        BinOp::Mod => match (l, r) {
            (Int(_), Int(0)) => Err(Error::eval("modulo by zero", span)),
            (Int(a), Int(b)) => Ok(Int(a.rem_euclid(*b))),
            _ => Err(num_err()),
        },
    }
}

fn apply_compare(op: CmpOp, l: &Value, r: &Value, span: Span) -> Result<bool> {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => Ok(l.py_eq(r)),
        CmpOp::Ne => Ok(!l.py_eq(r)),
        CmpOp::In | CmpOp::NotIn => {
            let found = match (l, r) {
                (Value::Str(needle), Value::Str(hay)) => hay.contains(needle.as_str()),
                (x, Value::List(items)) => items.iter().any(|v| v.py_eq(x)),
                _ => {
                    return Err(Error::eval(
                        format!(
                            "`in` expects a string or list on the right, got {}",
                            r.type_name()
                        ),
                        span,
                    ))
                }
            };
            Ok(if op == CmpOp::In { found } else { !found })
        }
        _ => {
            let ord = l.compare(r).ok_or_else(|| {
                Error::eval(
                    format!("cannot compare {} with {}", l.type_name(), r.type_name()),
                    span,
                )
            })?;
            Ok(match op {
                CmpOp::Lt => ord == Less,
                CmpOp::Le => ord != Greater,
                CmpOp::Gt => ord == Greater,
                CmpOp::Ge => ord != Less,
                _ => unreachable!("handled above"),
            })
        }
    }
}

fn index_value(obj: &Value, idx: &Value, span: Span) -> Result<Value> {
    let i = idx
        .as_int()
        .ok_or_else(|| Error::eval("index must be an integer", span))?;
    match obj {
        Value::List(items) => {
            let n = items.len() as i64;
            let j = if i < 0 { i + n } else { i };
            if j < 0 || j >= n {
                return Err(Error::eval("list index out of range", span));
            }
            Ok(items[j as usize].clone())
        }
        Value::Str(s) => {
            let chars: Vec<char> = s.chars().collect();
            let n = chars.len() as i64;
            let j = if i < 0 { i + n } else { i };
            if j < 0 || j >= n {
                return Err(Error::eval("string index out of range", span));
            }
            Ok(Value::Str(chars[j as usize].to_string()))
        }
        other => Err(Error::eval(
            format!("{} is not indexable", other.type_name()),
            span,
        )),
    }
}

fn slice_value(obj: &Value, lo: Option<Value>, hi: Option<Value>, span: Span) -> Result<Value> {
    let get = |v: &Option<Value>| -> Result<Option<i64>> {
        match v {
            None => Ok(None),
            Some(x) => x
                .as_int()
                .map(Some)
                .ok_or_else(|| Error::eval("slice bound must be an integer", span)),
        }
    };
    let lo = get(&lo)?;
    let hi = get(&hi)?;
    let clamp = |i: Option<i64>, n: usize, default: usize| -> usize {
        match i {
            None => default,
            Some(i) => {
                let n = n as i64;
                let j = if i < 0 { i + n } else { i };
                j.clamp(0, n) as usize
            }
        }
    };
    match obj {
        Value::Str(s) => {
            let chars: Vec<char> = s.chars().collect();
            let a = clamp(lo, chars.len(), 0);
            let b = clamp(hi, chars.len(), chars.len());
            Ok(Value::Str(chars[a..b.max(a)].iter().collect()))
        }
        Value::List(items) => {
            let a = clamp(lo, items.len(), 0);
            let b = clamp(hi, items.len(), items.len());
            Ok(Value::List(items[a..b.max(a)].to_vec()))
        }
        other => Err(Error::eval(
            format!("{} is not sliceable", other.type_name()),
            span,
        )),
    }
}

/// Runs the value-level helpers on behalf of the constraint engine
/// (re-exported for `constraints::eval`).
pub(crate) fn compare_values(op: CmpOp, l: &Value, r: &Value, span: Span) -> Result<bool> {
    apply_compare(op, l, r, span)
}

/// Arithmetic for the constraint engine's value level.
pub(crate) fn binop_values(op: BinOp, l: &Value, r: &Value, span: Span) -> Result<Value> {
    apply_binop(op, l, r, span)
}

/// Indexing for the constraint engine's value level.
pub(crate) fn compare_free_index(obj: &Value, idx: &Value, span: Span) -> Result<Value> {
    index_value(obj, idx, span)
}

/// Slicing for the constraint engine's value level.
pub(crate) fn slice_free(
    obj: &Value,
    lo: Option<Value>,
    hi: Option<Value>,
    span: Span,
) -> Result<Value> {
    slice_value(obj, lo, hi, span)
}

/// Length helper shared with the constraint engine.
#[allow(dead_code)]
pub(crate) fn value_len(v: &Value, span: Span) -> Result<i64> {
    len_of(v, span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_source;

    fn run_to_end(src: &str, fills: &[&str]) -> VmState {
        let p = compile_source(src).unwrap();
        let ex = Externals::new();
        let mut vm = VmState::new([]);
        let mut fills = fills.iter();
        loop {
            match vm.run(&p, &ex).unwrap() {
                Step::NeedHole(req) => {
                    let v = fills
                        .next()
                        .unwrap_or_else(|| panic!("no fill left for hole {}", req.var));
                    vm.provide_hole(*v);
                }
                Step::Done => return vm,
            }
        }
    }

    #[test]
    fn literals_and_recalls_build_trace() {
        let vm = run_to_end(
            "argmax\n    x = 3\n    \"value is {x}!\"\nfrom \"m\"\n",
            &[],
        );
        assert_eq!(vm.trace(), "value is 3!");
    }

    #[test]
    fn holes_suspend_and_resume() {
        let vm = run_to_end(
            "argmax\n    \"Q: [A] and [B].\"\nfrom \"m\"\n",
            &["one", "two"],
        );
        assert_eq!(vm.trace(), "Q: one and two.");
        assert_eq!(vm.scope()["A"], Value::Str("one".into()));
        assert_eq!(vm.hole_records().len(), 2);
        assert_eq!(vm.hole_records()[1].var, "B");
        let rec = &vm.hole_records()[0];
        assert_eq!(vm.trace().slice_string(rec.start..rec.end), "one");
    }

    #[test]
    fn for_loop_reassigns_hole_var() {
        // Mirrors Fig. 1b / Fig. 9: THING is overwritten per iteration and
        // collected via append.
        let vm = run_to_end(
            r#"
argmax
    things = []
    for i in range(2):
        "- [THING]\n"
        things.append(THING)
    "done {things}"
from "m"
"#,
            &["sun screen", "beach towel"],
        );
        assert_eq!(
            vm.trace(),
            "- sun screen\n- beach towel\ndone ['sun screen', 'beach towel']"
        );
        assert_eq!(vm.scope()["THING"], Value::Str("beach towel".into()));
        assert_eq!(vm.scope()["i"], Value::Int(1));
    }

    #[test]
    fn if_elif_else_control_flow() {
        let vm = run_to_end(
            r#"
argmax
    "[MODE]"
    if MODE == "Tho":
        "thought"
    elif MODE == "Act":
        "action"
    else:
        "other"
from "m"
"#,
            &["Act"],
        );
        assert!(vm.trace().ends_with("action"));
    }

    #[test]
    fn break_and_continue() {
        let vm = run_to_end(
            r#"
argmax
    out = []
    for i in range(10):
        if i == 1:
            continue
        if i == 3:
            break
        out.append(i)
    "{out}"
from "m"
"#,
            &[],
        );
        assert_eq!(vm.trace(), "[0, 2]");
    }

    #[test]
    fn externals_are_called() {
        let p = compile_source(
            "import calc\nargmax\n    r = calc.add(2, 3)\n    \"{r}\"\nfrom \"m\"\n",
        )
        .unwrap();
        let mut ex = Externals::new();
        ex.register("calc", "add", |args| {
            let a = args[0].as_int().ok_or("expected int")?;
            let b = args[1].as_int().ok_or("expected int")?;
            Ok(Value::Int(a + b))
        });
        let mut vm = VmState::new([]);
        assert_eq!(vm.run(&p, &ex).unwrap(), Step::Done);
        assert_eq!(vm.trace(), "5");
    }

    #[test]
    fn missing_external_errors() {
        let p =
            compile_source("import calc\nargmax\n    r = calc.add(1, 2)\nfrom \"m\"\n").unwrap();
        let mut vm = VmState::new([]);
        let err = vm.run(&p, &Externals::new()).unwrap_err();
        assert!(matches!(err, Error::External { .. }));
    }

    #[test]
    fn slicing_and_indexing() {
        let vm = run_to_end(
            r#"
argmax
    s = "hello'"
    x = s[:-1]
    y = s[0]
    z = s[-2]
    "{x}|{y}|{z}"
from "m"
"#,
            &[],
        );
        assert_eq!(vm.trace(), "hello|h|o");
    }

    #[test]
    fn initial_bindings_visible() {
        let p = compile_source("argmax\n    \"opts: {OPTIONS}\"\nfrom \"m\"\n").unwrap();
        let mut vm = VmState::new([("OPTIONS".to_owned(), Value::Str("a, b".into()))]);
        vm.run(&p, &Externals::new()).unwrap();
        assert_eq!(vm.trace(), "opts: a, b");
    }

    #[test]
    fn clone_forks_execution() {
        let p = compile_source("argmax\n    \"[X] then [Y]\"\nfrom \"m\"\n").unwrap();
        let ex = Externals::new();
        let mut vm = VmState::new([]);
        let Step::NeedHole(_) = vm.run(&p, &ex).unwrap() else {
            panic!("expected hole");
        };
        let mut fork = vm.clone();
        vm.provide_hole("a");
        fork.provide_hole("b");
        vm.run(&p, &ex).unwrap();
        fork.run(&p, &ex).unwrap();
        assert!(vm.trace().starts_with("a then"));
        assert!(fork.trace().starts_with("b then"));
    }

    #[test]
    fn bool_fold_short_circuit_value() {
        let vm = run_to_end(
            "argmax\n    x = 0 or \"fallback\"\n    \"{x}\"\nfrom \"m\"\n",
            &[],
        );
        assert_eq!(vm.trace(), "fallback");
    }
}
