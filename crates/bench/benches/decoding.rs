//! End-to-end decoding benchmarks: a full constrained chain-of-thought
//! query run, query compilation, and lockstep sampling with the score
//! cache.

use criterion::{criterion_group, criterion_main, Criterion};
use lmql::{Runtime, Value};
use lmql_datasets::{odd_one_out, GPT_J_PROFILE};
use lmql_lm::{corpus, Episode, ScriptedLm};
use std::sync::Arc;

fn cot_runtime() -> (Runtime, &'static str) {
    let bpe = corpus::standard_bpe();
    let inst = odd_one_out::generate(1, 42, &GPT_J_PROFILE).remove(0);
    let question_line = format!("Pick the odd word out: {}", inst.options_line);
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode::plain(format!("{question_line}\n"), inst.script())],
    ));
    let mut rt = Runtime::new(lm, bpe);
    rt.bind("FEWSHOT", Value::Str(odd_one_out::FEW_SHOT.into()));
    rt.bind("OPTIONS", Value::Str(inst.options_line.clone()));
    (rt, lmql_bench::queries::ODD_ONE_OUT)
}

fn bench_full_query(c: &mut Criterion) {
    let (rt, query) = cot_runtime();
    let program = lmql::compile_source(query).unwrap();
    c.bench_function("cot_query_argmax_end_to_end", |b| {
        b.iter(|| rt.run_program(std::hint::black_box(&program)).unwrap())
    });
}

fn bench_compile(c: &mut Criterion) {
    c.bench_function("compile_react_query", |b| {
        b.iter(|| lmql::compile_source(std::hint::black_box(lmql_bench::queries::REACT)).unwrap())
    });
}

fn bench_sample_lockstep(c: &mut Criterion) {
    // sample(n=4) over identical scripts: the per-run score cache dedups
    // shared-prefix model calls across the lockstep executions.
    let bpe = corpus::standard_bpe();
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode::plain(
            "List:\n-",
            " keys\n- passport\n- charger\n- wallet\n",
        )],
    ));
    let rt = Runtime::new(lm, bpe);
    let program = lmql::compile_source(
        "sample(n=4)\n    \"List:\\n-[A]-[B]\"\nfrom \"m\"\nwhere stops_at(A, \"\\n\") and stops_at(B, \"\\n\")\n",
    )
    .unwrap();
    c.bench_function("sample_n4_lockstep_cached", |b| {
        b.iter(|| rt.run_program(std::hint::black_box(&program)).unwrap())
    });
}

fn bench_naive_vs_masked(c: &mut Criterion) {
    // The §5 motivation, as a wall-clock ablation: masked decoding vs the
    // Alg. 3 backtracking strawman, forcing the model off its preferred
    // continuation.
    use lmql::constraints::{MaskEngine, Masker};
    use lmql_syntax::parse_expr;
    use std::collections::HashMap;

    let bpe = Arc::new(lmql_tokenizer::Bpe::char_level(""));
    let lm = ScriptedLm::new(Arc::clone(&bpe), [Episode::plain("P:", " maybe")]);
    let expr = parse_expr("X in [\" no\"]").unwrap();
    let scope = HashMap::new();

    c.bench_function("masked_decode_forced_option", |b| {
        b.iter(|| {
            let mut masker = Masker::new(MaskEngine::Symbolic, bpe.clone());
            lmql::decode_hole(
                &lm,
                &bpe,
                &mut masker,
                Some(&expr),
                &scope,
                "P:",
                "X",
                &mut lmql::Pick::argmax(),
                &lmql::DecodeOptions::default(),
            )
            .unwrap()
        })
    });
    c.bench_function("naive_backtracking_forced_option", |b| {
        b.iter(|| {
            lmql::decode_hole_naive(
                &lm,
                &bpe,
                Some(&expr),
                &scope,
                "P:",
                "X",
                &lmql::NaiveOptions {
                    max_tokens: 4,
                    branching: 200,
                    max_queries: 500_000,
                    ..lmql::NaiveOptions::default()
                },
            )
            .unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_full_query,
    bench_compile,
    bench_sample_lockstep,
    bench_naive_vs_masked
);
criterion_main!(benches);
