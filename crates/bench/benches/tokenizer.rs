//! Tokenizer micro-benchmarks: BPE encode throughput and the trie-based
//! vocabulary prefix scan vs a naive linear scan (the "Subtokenization"
//! machinery of §5.2).

use criterion::{criterion_group, criterion_main, Criterion};
use lmql_lm::corpus;
use lmql_tokenizer::TokenTrie;

fn bench_encode(c: &mut Criterion) {
    let bpe = corpus::standard_bpe();
    let text = corpus::builtin_corpus();
    let sample = &text[..2048.min(text.len())];
    c.bench_function("bpe_encode_2k_chars", |b| {
        b.iter(|| bpe.encode(std::hint::black_box(sample)))
    });
    c.bench_function("bpe_roundtrip_2k_chars", |b| {
        b.iter(|| bpe.decode(&bpe.encode(std::hint::black_box(sample))))
    });
}

fn bench_prefix_scans(c: &mut Criterion) {
    let bpe = corpus::standard_bpe();
    let vocab = bpe.vocab();
    let trie = TokenTrie::new(vocab);
    let target = "So the odd one is pen.";

    c.bench_function("trie_prefixes_of", |b| {
        b.iter(|| trie.prefixes_of(std::hint::black_box(target)))
    });
    c.bench_function("linear_prefixes_of", |b| {
        b.iter(|| {
            vocab
                .regular_tokens()
                .filter(|(_, s)| std::hint::black_box(target).starts_with(s))
                .map(|(id, _)| id)
                .collect::<Vec<_>>()
        })
    });

    c.bench_function("trie_aligned_with", |b| {
        b.iter(|| trie.aligned_with(std::hint::black_box(target), true))
    });
}

criterion_group!(benches, bench_encode, bench_prefix_scans);
criterion_main!(benches);
