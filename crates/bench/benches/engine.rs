//! Engine benchmarks: concurrent batched decoding vs running the same
//! queries back to back, plus the dispatch and prefix-cache statistics
//! that justify the scheduler (reported once before the timings).

use criterion::{criterion_group, criterion_main, Criterion};
use lmql::Runtime;
use lmql_engine::{Engine, EngineConfig};
use lmql_lm::{LanguageModel, NGramLm};
use lmql_tokenizer::{Bpe, BpeTrainer};
use std::sync::Arc;

/// Four clients sampling from the same prompt — the shape where a shared
/// cache and single-flight dedup pay for every context exactly once.
const QUERY: &str =
    "sample(n=2, temperature=0.8, max_length=8)\n    \"the cat sat[TAIL]\"\nfrom \"m\"\n";
const CLIENTS: usize = 4;

fn model() -> (Arc<dyn LanguageModel>, Arc<Bpe>) {
    let corpus =
        "the cat sat on the mat.\n\nthe cat ran off.\n\nthe dog sat down.\n\nthe dog ran home.";
    let bpe = Arc::new(BpeTrainer::new().merges(40).train(corpus));
    let lm = Arc::new(NGramLm::train(Arc::clone(&bpe), corpus, 3));
    (lm, bpe)
}

/// Runs the workload query-by-query on fresh runtimes; returns total
/// model round trips.
fn run_sequential(lm: &Arc<dyn LanguageModel>, bpe: &Arc<Bpe>) -> u64 {
    let mut dispatches = 0;
    for _ in 0..CLIENTS {
        let rt = Runtime::new(Arc::clone(lm), Arc::clone(bpe));
        rt.run(QUERY).unwrap();
        dispatches += rt.meter().snapshot().dispatches();
    }
    dispatches
}

/// Runs the workload concurrently through a fresh engine; returns it so
/// callers can read the meters.
fn run_engine(lm: &Arc<dyn LanguageModel>, bpe: &Arc<Bpe>) -> Engine {
    let engine = Engine::new(
        Arc::clone(lm),
        Arc::clone(bpe),
        EngineConfig {
            threads: CLIENTS,
            ..EngineConfig::default()
        },
    );
    let queries = vec![QUERY; CLIENTS];
    for r in engine.run_queries(&queries) {
        r.unwrap();
    }
    engine
}

fn bench_engine_vs_sequential(c: &mut Criterion) {
    let (lm, bpe) = model();

    // One-shot report: the acceptance numbers behind the timings. On a
    // mock model a dispatch is nearly free, so the engine's wall-clock
    // includes pure scheduling overhead; the dispatch count is the metric
    // that translates to latency once each round trip costs network or
    // GPU time.
    let sequential_dispatches = run_sequential(&lm, &bpe);
    let engine = run_engine(&lm, &bpe);
    let cold = engine.stats();
    // A warm second wave on the same engine: every context is now cached.
    let queries = vec![QUERY; CLIENTS];
    for r in engine.run_queries(&queries) {
        r.unwrap();
    }
    let warm = engine.stats();
    println!("shared-prompt {CLIENTS}-way sample(n=2) workload:");
    println!("  sequential dispatches:      {sequential_dispatches}");
    println!(
        "  engine dispatches (cold):   {} (mean batch size {:.2})",
        cold.usage.dispatches(),
        cold.usage.mean_batch_size()
    );
    let warm_hits = warm.cache.hits - cold.cache.hits;
    let warm_lookups = warm_hits + warm.cache.misses - cold.cache.misses;
    println!(
        "  prefix-cache hit rate:      {:.1}% cold, {:.1}% warm",
        cold.cache.hit_rate() * 100.0,
        if warm_lookups == 0 {
            0.0
        } else {
            warm_hits as f64 / warm_lookups as f64 * 100.0
        }
    );
    assert!(
        cold.usage.dispatches() * 2 <= sequential_dispatches,
        "engine must at least halve model dispatches"
    );
    assert_eq!(
        warm.usage.dispatches(),
        cold.usage.dispatches(),
        "a warm wave is answered entirely from the cache"
    );
    drop(engine);

    let mut group = c.benchmark_group("shared_prompt_4x_sample");
    group.bench_function("sequential", |b| b.iter(|| run_sequential(&lm, &bpe)));
    group.bench_function("engine_batched", |b| b.iter(|| run_engine(&lm, &bpe)));
    group.finish();
}

criterion_group!(benches, bench_engine_vs_sequential);
criterion_main!(benches);
