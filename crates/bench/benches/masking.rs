//! Ablation: exact per-token mask generation vs the symbolic FollowMap
//! engine (§5.2), across constraint families and value lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lmql::constraints::{MaskConfig, MaskEngine, Masker, ParallelScan, VocabSource};
use lmql_lm::corpus;
use lmql_syntax::parse_expr;
use lmql_tokenizer::Vocabulary;
use std::collections::HashMap;
use std::sync::Arc;

/// A bare synthetic vocabulary as a mask source (no BPE machinery).
#[derive(Debug)]
struct RawVocab(Vocabulary);

impl VocabSource for RawVocab {
    fn vocabulary(&self) -> &Vocabulary {
        &self.0
    }
}

/// Builds a deterministic `n`-token vocabulary with realistic variety:
/// words, numerals, punctuation-bearing and whitespace-prefixed tokens.
fn synthetic_vocab(n: usize) -> Arc<RawVocab> {
    let toks: Vec<String> = (0..n)
        .map(|i| match i % 8 {
            0 => format!("tok{i}"),
            1 => format!(" word{i}"),
            2 => format!("{i}"),
            3 => format!("x{i}."),
            4 => format!(" {i}"),
            5 => format!("ab{i}"),
            6 => format!("{i}\n"),
            _ => format!("q{i}!"),
        })
        .collect();
    Arc::new(RawVocab(Vocabulary::from_tokens(
        toks.iter().map(String::as_str),
    )))
}

fn bench_engines(c: &mut Criterion) {
    let bpe = corpus::standard_bpe();
    let cases = [
        (
            "in_list",
            "X in [\"Search\", \"Finish\", \"Thought\"]",
            "Se",
        ),
        (
            "not_contains",
            "not \"\\n\" in X and not \"Pick\" in X",
            "some reasoning text so far",
        ),
        (
            "conjunction",
            "not \"\\n\" in X and stops_at(X, \".\") and len(words(X)) < 40",
            "skirt is clothing, dress is clothing",
        ),
        ("int", "int(X)", "128"),
        ("len_bound", "len(X) < 64", "a partial value"),
    ];

    let mut group = c.benchmark_group("mask_generation");
    for (name, constraint, value) in cases {
        let expr = parse_expr(constraint).unwrap();
        let scope = HashMap::new();
        for engine in [MaskEngine::Exact, MaskEngine::Symbolic] {
            group.bench_with_input(
                BenchmarkId::new(format!("{engine:?}"), name),
                &expr,
                |b, expr| {
                    let mut masker = Masker::new(engine, bpe.clone());
                    // Warm the scan caches once, as a query run would.
                    let _ = masker.compute(Some(expr), &scope, "X", value);
                    b.iter(|| masker.compute(Some(expr), &scope, "X", value));
                },
            );
        }
    }
    group.finish();
}

fn bench_value_length_scaling(c: &mut Criterion) {
    let bpe = corpus::standard_bpe();
    let expr = parse_expr("not \"\\n\" in X and len(words(X)) < 500").unwrap();
    let scope = HashMap::new();
    let mut group = c.benchmark_group("mask_vs_value_length");
    for len in [8usize, 64, 256] {
        let value: String = "word ".repeat(len / 5);
        for engine in [MaskEngine::Exact, MaskEngine::Symbolic] {
            group.bench_with_input(
                BenchmarkId::new(format!("{engine:?}"), len),
                &value,
                |b, value| {
                    let mut masker = Masker::new(engine, bpe.clone());
                    let _ = masker.compute(Some(&expr), &scope, "X", value);
                    b.iter(|| masker.compute(Some(&expr), &scope, "X", value));
                },
            );
        }
    }
    group.finish();
}

/// The tentpole ablation: reference (no memo, sequential scans) against
/// the accelerated configurations on a vocabulary large enough (12k
/// tokens) that per-step scans dominate. The `steady` workload repeats
/// one decode state per iteration — the memoized configs serve it from
/// the LRU after the first compute, which is exactly the shape beam
/// search and repeated engine queries produce.
fn bench_large_vocab_configs(c: &mut Criterion) {
    let vocab = synthetic_vocab(12_000);
    let expr =
        parse_expr("not \"\\n\" in X and stops_at(X, \".\") and len(words(X)) < 40").unwrap();
    let scope = HashMap::new();
    let value = "some reasoning text so far";

    let configs: [(&str, MaskConfig); 3] = [
        ("reference", MaskConfig::reference()),
        (
            "parallel",
            MaskConfig {
                memo: false,
                parallel: ParallelScan::Auto,
                ..MaskConfig::default()
            },
        ),
        ("memo+parallel", MaskConfig::default()),
    ];

    let mut group = c.benchmark_group("mask_vocab12k_steady");
    for engine in [MaskEngine::Exact, MaskEngine::Symbolic] {
        for (name, config) in &configs {
            group.bench_with_input(
                BenchmarkId::new(format!("{engine:?}"), name),
                &expr,
                |b, expr| {
                    let mut masker = Masker::new(engine, vocab.clone()).with_config(*config);
                    let _ = masker.compute(Some(expr), &scope, "X", value);
                    b.iter(|| masker.compute(Some(expr), &scope, "X", value));
                },
            );
        }
    }
    group.finish();

    // `advancing` makes every step's value unique (a step counter is
    // spliced in), so the memo never hits and the configs should be
    // within noise of one another on a single-core machine (any win
    // comes from parallel scans and pooled scratch).
    let mut group = c.benchmark_group("mask_vocab12k_advancing");
    for engine in [MaskEngine::Exact, MaskEngine::Symbolic] {
        for (name, config) in &configs {
            group.bench_with_input(
                BenchmarkId::new(format!("{engine:?}"), name),
                &expr,
                |b, expr| {
                    use std::fmt::Write as _;
                    let mut masker = Masker::new(engine, vocab.clone()).with_config(*config);
                    let mut step = 0usize;
                    let mut value = String::from("some reasoning step ");
                    b.iter(|| {
                        step += 1;
                        value.truncate(20);
                        let _ = write!(value, "{step}");
                        masker.compute(Some(expr), &scope, "X", &value)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engines,
    bench_value_length_scaling,
    bench_large_vocab_configs
);
criterion_main!(benches);
