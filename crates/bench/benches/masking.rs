//! Ablation: exact per-token mask generation vs the symbolic FollowMap
//! engine (§5.2), across constraint families and value lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lmql::constraints::{MaskEngine, Masker};
use lmql_lm::corpus;
use lmql_syntax::parse_expr;
use std::collections::HashMap;

fn bench_engines(c: &mut Criterion) {
    let bpe = corpus::standard_bpe();
    let cases = [
        (
            "in_list",
            "X in [\"Search\", \"Finish\", \"Thought\"]",
            "Se",
        ),
        (
            "not_contains",
            "not \"\\n\" in X and not \"Pick\" in X",
            "some reasoning text so far",
        ),
        (
            "conjunction",
            "not \"\\n\" in X and stops_at(X, \".\") and len(words(X)) < 40",
            "skirt is clothing, dress is clothing",
        ),
        ("int", "int(X)", "128"),
        ("len_bound", "len(X) < 64", "a partial value"),
    ];

    let mut group = c.benchmark_group("mask_generation");
    for (name, constraint, value) in cases {
        let expr = parse_expr(constraint).unwrap();
        let scope = HashMap::new();
        for engine in [MaskEngine::Exact, MaskEngine::Symbolic] {
            group.bench_with_input(
                BenchmarkId::new(format!("{engine:?}"), name),
                &expr,
                |b, expr| {
                    let mut masker = Masker::new(engine, bpe.clone());
                    // Warm the scan caches once, as a query run would.
                    let _ = masker.compute(Some(expr), &scope, "X", value);
                    b.iter(|| masker.compute(Some(expr), &scope, "X", value));
                },
            );
        }
    }
    group.finish();
}

fn bench_value_length_scaling(c: &mut Criterion) {
    let bpe = corpus::standard_bpe();
    let expr = parse_expr("not \"\\n\" in X and len(words(X)) < 500").unwrap();
    let scope = HashMap::new();
    let mut group = c.benchmark_group("mask_vs_value_length");
    for len in [8usize, 64, 256] {
        let value: String = "word ".repeat(len / 5);
        for engine in [MaskEngine::Exact, MaskEngine::Symbolic] {
            group.bench_with_input(
                BenchmarkId::new(format!("{engine:?}"), len),
                &value,
                |b, value| {
                    let mut masker = Masker::new(engine, bpe.clone());
                    let _ = masker.compute(Some(&expr), &scope, "X", value);
                    b.iter(|| masker.compute(Some(&expr), &scope, "X", value));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_value_length_scaling);
criterion_main!(benches);
