//! FollowMap-engine internals: cold vs warm vocabulary-scan caches, and
//! how mask generation scales with constraint composition depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lmql::constraints::{MaskEngine, Masker};
use lmql_lm::corpus;
use lmql_syntax::parse_expr;
use std::collections::HashMap;

fn bench_cache_warmth(c: &mut Criterion) {
    let bpe = corpus::standard_bpe();
    let expr = parse_expr("not \"\\n\" in X and not \"Pick\" in X and stops_at(X, \".\")").unwrap();
    let scope = HashMap::new();
    let value = "some reasoning";

    c.bench_function("followmap_cold_cache", |b| {
        b.iter(|| {
            // A fresh masker per iteration: needle scans run every time.
            let mut masker = Masker::new(MaskEngine::Symbolic, bpe.clone());
            masker.compute(Some(&expr), &scope, "X", value)
        })
    });
    c.bench_function("followmap_warm_cache", |b| {
        let mut masker = Masker::new(MaskEngine::Symbolic, bpe.clone());
        let _ = masker.compute(Some(&expr), &scope, "X", value);
        b.iter(|| masker.compute(Some(&expr), &scope, "X", value))
    });
}

fn bench_composition_depth(c: &mut Criterion) {
    let bpe = corpus::standard_bpe();
    let scope = HashMap::new();
    let mut group = c.benchmark_group("followmap_composition_depth");
    for depth in [1usize, 3, 6] {
        let clauses: Vec<String> = (0..depth)
            .map(|i| match i % 3 {
                0 => "not \"\\n\" in X".to_owned(),
                1 => format!("len(words(X)) < {}", 40 + i),
                _ => "stops_at(X, \".\")".to_owned(),
            })
            .collect();
        let expr = parse_expr(&clauses.join(" and ")).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(depth), &expr, |b, expr| {
            let mut masker = Masker::new(MaskEngine::Symbolic, bpe.clone());
            let _ = masker.compute(Some(expr), &scope, "X", "partial text");
            b.iter(|| masker.compute(Some(expr), &scope, "X", "partial text"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache_warmth, bench_composition_depth);
criterion_main!(benches);
