//! FollowMap-engine internals: cold vs warm vocabulary-scan caches, and
//! how mask generation scales with constraint composition depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lmql::constraints::{MaskConfig, MaskEngine, MaskMemo, Masker};
use lmql_lm::corpus;
use lmql_syntax::parse_expr;
use std::collections::HashMap;
use std::sync::Arc;

fn bench_cache_warmth(c: &mut Criterion) {
    let bpe = corpus::standard_bpe();
    let expr = parse_expr("not \"\\n\" in X and not \"Pick\" in X and stops_at(X, \".\")").unwrap();
    let scope = HashMap::new();
    let value = "some reasoning";

    c.bench_function("followmap_cold_cache", |b| {
        b.iter(|| {
            // A fresh masker per iteration: needle scans run every time.
            let mut masker = Masker::new(MaskEngine::Symbolic, bpe.clone());
            masker.compute(Some(&expr), &scope, "X", value)
        })
    });
    c.bench_function("followmap_warm_cache", |b| {
        let mut masker = Masker::new(MaskEngine::Symbolic, bpe.clone());
        let _ = masker.compute(Some(&expr), &scope, "X", value);
        b.iter(|| masker.compute(Some(&expr), &scope, "X", value))
    });
}

fn bench_composition_depth(c: &mut Criterion) {
    let bpe = corpus::standard_bpe();
    let scope = HashMap::new();
    let mut group = c.benchmark_group("followmap_composition_depth");
    for depth in [1usize, 3, 6] {
        let clauses: Vec<String> = (0..depth)
            .map(|i| match i % 3 {
                0 => "not \"\\n\" in X".to_owned(),
                1 => format!("len(words(X)) < {}", 40 + i),
                _ => "stops_at(X, \".\")".to_owned(),
            })
            .collect();
        let expr = parse_expr(&clauses.join(" and ")).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(depth), &expr, |b, expr| {
            let mut masker = Masker::new(MaskEngine::Symbolic, bpe.clone());
            let _ = masker.compute(Some(expr), &scope, "X", "partial text");
            b.iter(|| masker.compute(Some(expr), &scope, "X", "partial text"));
        });
    }
    group.finish();
}

/// Memoized mask lookup against full recomputation: `memo_miss` builds a
/// masker whose memo is disabled (every compute walks the FollowMap),
/// `memo_hit` serves the same decode state from a warm shared [`MaskMemo`]
/// — the cross-query path the engine scheduler uses.
fn bench_memoization(c: &mut Criterion) {
    let bpe = corpus::standard_bpe();
    let expr = parse_expr("not \"\\n\" in X and not \"Pick\" in X and stops_at(X, \".\")").unwrap();
    let scope = HashMap::new();
    let value = "some reasoning";

    c.bench_function("followmap_memo_miss", |b| {
        let mut masker =
            Masker::new(MaskEngine::Symbolic, bpe.clone()).with_config(MaskConfig::reference());
        let _ = masker.compute(Some(&expr), &scope, "X", value);
        b.iter(|| masker.compute(Some(&expr), &scope, "X", value))
    });
    c.bench_function("followmap_memo_hit", |b| {
        let memo = MaskMemo::new(256);
        let mut masker =
            Masker::new(MaskEngine::Symbolic, bpe.clone()).with_memo(Arc::clone(&memo));
        let _ = masker.compute(Some(&expr), &scope, "X", value);
        b.iter(|| masker.compute(Some(&expr), &scope, "X", value))
    });
}

criterion_group!(
    benches,
    bench_cache_warmth,
    bench_composition_depth,
    bench_memoization
);
criterion_main!(benches);
