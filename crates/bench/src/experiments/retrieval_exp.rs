//! Retrieval-augmented and long-context workloads (DESIGN.md §16,
//! ROADMAP item 4): three scenarios comparing a prompt-everything
//! chunk-wise baseline against LMQL queries that reach the context
//! through first-class tools — BM25 retrieval ([`RetrievalTool`]),
//! iterative needle-finding, and a chat session with declarative
//! retention/eviction ([`SessionTool`]).
//!
//! The simulated substrate is the same as the other case studies: each
//! instance gets a [`ScriptedLm`] whose intended trace answers the task,
//! so both sides are driven by the same model and the comparison
//! isolates *decoding and prompt accounting*, not model quality. The
//! baseline has no tools — its only option is to put the whole corpus,
//! haystack or chat history in the prompt and pay for it on every
//! chunk-wise `generate()` call. The LMQL side retrieves only what the
//! query needs and constrains answers to retrieved spans
//! (`ANSWER in spans`), so it bills a small fraction of the tokens.

use crate::experiments::Stats;
use crate::queries;
use lmql::{Runtime, Tool, Value};
use lmql_baseline::programs::longctx;
use lmql_baseline::Generator;
use lmql_lm::{corpus, Episode, ScriptedLm, UsageMeter};
use lmql_retrieval::{
    Bm25Index, ChatSession, ChunkConfig, FactCorpus, NiahCorpus, RetentionPolicy, RetrievalTool,
    SessionTool,
};
use std::sync::{Arc, RwLock};

/// One scenario's comparison row (Standard Decoding vs LMQL).
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// Scenario name (`retrieval_qa`, `needle`, `chat`).
    pub name: &'static str,
    /// Context length in tokens the baseline prompt carries per
    /// instance (what "prompt everything" costs before generating).
    pub context_tokens: usize,
    /// Prompt-everything chunk-wise baseline metrics.
    pub baseline: Stats,
    /// LMQL (tool-retrieval) metrics.
    pub lmql: Stats,
    /// Total tool invocations made by the LMQL side.
    pub tool_calls: u64,
}

/// The `retrieval.search` output for `query` — used to precompute the
/// scripted model's intended trace (BM25 is deterministic, so this is
/// exactly what the runtime will splice into the prompt).
fn search_text(tool: &RetrievalTool, query: &str) -> String {
    match tool.invoke("search", &[Value::Str(query.to_owned())]) {
        Ok(Value::Str(s)) => s,
        other => panic!("retrieval.search returned {other:?}"),
    }
}

/// Sums tool-call counters across a runtime's registry.
fn tool_call_total(rt: &Runtime) -> u64 {
    rt.tools().usage().iter().map(|(_, calls)| calls).sum()
}

/// Scenario 1 — retrieval-augmented QA: answer factoid questions over a
/// generated encyclopedia. The baseline prompts the whole corpus; LMQL
/// retrieves top-k evidence and decodes under `ANSWER in spans`.
pub fn run_qa(n: usize, seed: u64, chunk_size: usize) -> ScenarioRow {
    let bpe = corpus::standard_bpe();
    let fact_corpus = FactCorpus::generate(10, seed);
    let index = Arc::new(Bm25Index::build(
        &fact_corpus.documents,
        ChunkConfig::default(),
    ));
    let tool = RetrievalTool::new(Arc::clone(&index), 3);
    let full_context: String = fact_corpus
        .documents
        .iter()
        .map(|d| d.text.as_str())
        .collect::<Vec<_>>()
        .join("\n\n");

    let mut baseline = Stats::default();
    let mut lmql_stats = Stats::default();
    let mut tool_calls = 0;
    let mut context_tokens = 0;

    for inst in fact_corpus.questions.iter().take(n) {
        let episode = Episode::plain("Answer:", format!(" {} END", inst.answer));
        let lm = Arc::new(ScriptedLm::new(Arc::clone(&bpe), [episode]));

        // Standard Decoding: the whole corpus in the prompt, chunk-wise.
        let prompt = format!("{full_context}\n\nQuestion: {}\nAnswer:", inst.question);
        context_tokens = bpe.encode(&full_context).len();
        let meter = UsageMeter::new();
        let generator = Generator::new(lm.clone(), Arc::clone(&bpe), meter.clone());
        let out = longctx::complete(
            &generator,
            &longctx::LongContextTask {
                prompt: &prompt,
                stop: " END",
                chunk_size,
                max_chunks: 8,
            },
        );
        baseline.record(inst.is_correct(out.trim()), meter.snapshot());

        // LMQL: retrieve evidence, constrain the answer to its spans.
        let mut rt = Runtime::new(lm, Arc::clone(&bpe));
        rt.register_tool(Arc::new(tool.clone()));
        rt.bind("QUESTION", Value::Str(inst.question.clone()));
        let result = rt.run(queries::RETRIEVAL_QA).expect("query runs");
        let answer = result.best().var_str("ANSWER").unwrap_or_default();
        lmql_stats.record(inst.is_correct(answer), rt.meter().snapshot());
        tool_calls += tool_call_total(&rt);
    }

    ScenarioRow {
        name: "retrieval_qa",
        context_tokens,
        baseline,
        lmql: lmql_stats,
        tool_calls,
    }
}

/// Scenario 2 — iterative needle-in-a-haystack: find planted access
/// codes. The baseline prompts the entire haystack; LMQL searches the
/// index (odd instances need a second, refined query) and decodes the
/// code under `CODE in spans`.
pub fn run_needle(n: usize, seed: u64, chunk_size: usize) -> ScenarioRow {
    let bpe = corpus::standard_bpe();
    let niah = NiahCorpus::generate(10, 6, n.max(1), seed);
    let index = Arc::new(Bm25Index::build(&niah.documents, ChunkConfig::default()));
    let tool = RetrievalTool::new(Arc::clone(&index), 2);
    let haystack: String = niah
        .documents
        .iter()
        .map(|d| d.text.as_str())
        .collect::<Vec<_>>()
        .join("\n\n");

    let mut baseline = Stats::default();
    let mut lmql_stats = Stats::default();
    let mut tool_calls = 0;
    let context_tokens = bpe.encode(&haystack).len();

    for (i, needle) in niah.needles.iter().take(n).enumerate() {
        let question = NiahCorpus::question(needle);
        // The intended trace, with the deterministic retrieval results
        // spliced in exactly as the runtime will observe them. Odd
        // instances model iterative refinement: a broad first query,
        // then the project-specific one.
        let script = if i % 2 == 1 {
            let broad = "vault access code";
            format!(
                "Search: '{broad}'\nObs: {}\nSearch: '{}'\nObs: {}\nAnswer: {}. END",
                search_text(&tool, broad),
                needle.project,
                search_text(&tool, &needle.project),
                needle.code
            )
        } else {
            format!(
                "Search: '{}'\nObs: {}\nAnswer: {}. END",
                needle.project,
                search_text(&tool, &needle.project),
                needle.code
            )
        };
        let lm = Arc::new(ScriptedLm::new(
            Arc::clone(&bpe),
            [
                Episode::plain(format!("Task: {question}\n"), script),
                Episode::plain("The code is", format!(" {}. END", needle.code)),
            ],
        ));

        // Standard Decoding: the whole haystack in the prompt.
        let prompt = format!("{haystack}\n\nTask: {question}\nThe code is");
        let meter = UsageMeter::new();
        let generator = Generator::new(lm.clone(), Arc::clone(&bpe), meter.clone());
        let out = longctx::complete(
            &generator,
            &longctx::LongContextTask {
                prompt: &prompt,
                stop: " END",
                chunk_size,
                max_chunks: 8,
            },
        );
        let answer = out.trim().trim_end_matches('.');
        baseline.record(answer == needle.code, meter.snapshot());

        // LMQL: iterative search over the index.
        let mut rt = Runtime::new(lm, Arc::clone(&bpe));
        rt.register_tool(Arc::new(tool.clone()));
        rt.bind("QUESTION", Value::Str(question.clone()));
        let result = rt.run(queries::NEEDLE).expect("query runs");
        let code = result.best().var_str("CODE").unwrap_or_default();
        lmql_stats.record(code == needle.code, rt.meter().snapshot());
        tool_calls += tool_call_total(&rt);
    }

    ScenarioRow {
        name: "needle",
        context_tokens,
        baseline,
        lmql: lmql_stats,
        tool_calls,
    }
}

/// Names for the chat scenario's remembered facts.
const FACT_NAMES: [&str; 8] = [
    "Alpha", "Beacon", "Cobalt", "Delta", "Ember", "Falcon", "Garnet", "Harbor",
];

/// Scenario 3 — multi-turn chat with declarative retention: a fact
/// stated early in the session is evicted from the active window; the
/// final question needs it back. The baseline re-prompts the full
/// history; LMQL renders only the retained window plus a targeted
/// `context.recall`.
pub fn run_chat(n: usize, seed: u64, chunk_size: usize) -> ScenarioRow {
    let bpe = corpus::standard_bpe();
    let mut baseline = Stats::default();
    let mut lmql_stats = Stats::default();
    let mut tool_calls = 0;
    let mut context_tokens = 0;

    for i in 0..n {
        let name = FACT_NAMES[i % FACT_NAMES.len()];
        let code = 1000 + (seed.wrapping_mul(7919).wrapping_add(i as u64 * 131) % 9000);
        let mut session = ChatSession::new(RetentionPolicy {
            window: 4,
            pin_first: true,
            recall_k: 2,
        });
        session.push("system", "You are a terse assistant.");
        session.push("user", format!("Remember this: the {name} code is {code}."));
        session.push("assistant", "Noted.");
        for t in 0..8 {
            session.push("user", format!("Tell me about topic number {t}."));
            session.push("assistant", "It is going along fine.");
        }
        let question = format!("What is the {name} code?");
        let episode = Episode::plain(
            format!("user: {question}\nassistant:"),
            format!(" The {name} code is {code}. END"),
        );
        let lm = Arc::new(ScriptedLm::new(Arc::clone(&bpe), [episode]));

        // Standard Decoding: the full history in the prompt, every call.
        let history = session.render_full();
        context_tokens = bpe.encode(&history).len();
        let prompt = format!("{history}\nuser: {question}\nassistant:");
        let meter = UsageMeter::new();
        let generator = Generator::new(lm.clone(), Arc::clone(&bpe), meter.clone());
        let out = longctx::complete(
            &generator,
            &longctx::LongContextTask {
                prompt: &prompt,
                stop: "END",
                chunk_size,
                max_chunks: 8,
            },
        );
        baseline.record(out.contains(&code.to_string()), meter.snapshot());

        // LMQL: retained window + targeted recall of the evicted fact.
        let mut rt = Runtime::new(lm, Arc::clone(&bpe));
        rt.register_tool(Arc::new(SessionTool::new(Arc::new(RwLock::new(session)))));
        rt.bind("QUESTION", Value::Str(question.clone()));
        let result = rt.run(queries::CHAT).expect("query runs");
        let reply = result.best().var_str("REPLY").unwrap_or_default();
        lmql_stats.record(reply.contains(&code.to_string()), rt.meter().snapshot());
        tool_calls += tool_call_total(&rt);
    }

    ScenarioRow {
        name: "chat",
        context_tokens,
        baseline,
        lmql: lmql_stats,
        tool_calls,
    }
}

/// All three scenarios with one knob set.
pub fn run_all(n: usize, seed: u64, chunk_size: usize) -> Vec<ScenarioRow> {
    vec![
        run_qa(n, seed, chunk_size),
        run_needle(n, seed, chunk_size),
        run_chat(n, seed, chunk_size),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qa_shape_holds() {
        let row = run_qa(4, 7, 32);
        assert_eq!(row.lmql.accuracy(), 1.0, "{:?}", row.lmql);
        assert_eq!(row.baseline.accuracy(), 1.0, "{:?}", row.baseline);
        // One decoder run, evidence-only prompt: structurally cheaper.
        assert!((row.lmql.avg_decoder_calls() - 1.0).abs() < 1e-9);
        assert!(
            row.lmql.avg_billable_tokens() < row.baseline.avg_billable_tokens() / 2.0,
            "lmql {:.0} vs baseline {:.0}",
            row.lmql.avg_billable_tokens(),
            row.baseline.avg_billable_tokens()
        );
        assert!(row.tool_calls >= 8, "search + spans per instance");
    }

    #[test]
    fn needle_shape_holds() {
        let row = run_needle(4, 11, 32);
        assert_eq!(row.lmql.accuracy(), 1.0, "{:?}", row.lmql);
        assert_eq!(row.baseline.accuracy(), 1.0, "{:?}", row.baseline);
        assert!(
            row.lmql.avg_billable_tokens() < row.baseline.avg_billable_tokens(),
            "lmql {:.0} vs baseline {:.0}",
            row.lmql.avg_billable_tokens(),
            row.baseline.avg_billable_tokens()
        );
    }

    #[test]
    fn chat_shape_holds() {
        let row = run_chat(4, 3, 32);
        assert_eq!(row.lmql.accuracy(), 1.0, "{:?}", row.lmql);
        assert_eq!(row.baseline.accuracy(), 1.0, "{:?}", row.baseline);
        assert!(
            row.lmql.avg_billable_tokens() < row.baseline.avg_billable_tokens(),
            "lmql {:.0} vs baseline {:.0}",
            row.lmql.avg_billable_tokens(),
            row.baseline.avg_billable_tokens()
        );
    }
}
