//! Case study 1 (§6.1): chain-of-thought prompting on Odd One Out and
//! Date Understanding — the Table 3 experiment.

use crate::experiments::{lm_derail_branch, lm_digression, Stats};
use crate::queries;
use lmql::{Runtime, Value};
use lmql_baseline::programs::cot as baseline_cot;
use lmql_baseline::Generator;
use lmql_datasets::{date_understanding, odd_one_out, ModelProfile};
use lmql_lm::{corpus, Episode, ScriptedLm, UsageMeter};
use std::sync::Arc;

/// Which chain-of-thought task to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// BIG-bench style Odd One Out.
    OddOneOut,
    /// BIG-bench style Date Understanding.
    DateUnderstanding,
}

impl Task {
    /// Table row label.
    pub fn label(self) -> &'static str {
        match self {
            Task::OddOneOut => "Odd One Out",
            Task::DateUnderstanding => "Date Understanding",
        }
    }
}

/// One Table 3 block: a task under a model profile.
#[derive(Debug, Clone)]
pub struct CotRow {
    /// The task.
    pub task: Task,
    /// The simulated model profile.
    pub profile: ModelProfile,
    /// Standard Decoding metrics.
    pub baseline: Stats,
    /// LMQL metrics.
    pub lmql: Stats,
}

/// Runs the Table 3 experiment: `n` instances of `task` under `profile`,
/// with the baseline decoding in chunks of `chunk_size`.
pub fn run(task: Task, profile: &ModelProfile, n: usize, seed: u64, chunk_size: usize) -> CotRow {
    let bpe = corpus::standard_bpe();
    let mut baseline = Stats::default();
    let mut lmql_stats = Stats::default();

    match task {
        Task::OddOneOut => {
            for inst in odd_one_out::generate(n, seed, profile) {
                let question_line = format!("Pick the odd word out: {}", inst.options_line);
                // Few-shot models do not stop after the answer: they run
                // on into another fabricated Q/A pair (Fig. 4b). The
                // baseline truncates this by hand but still pays for the
                // generated tokens; LMQL never decodes past its template.
                let run_on = format!("{}\n\n{}", inst.script(), odd_one_out::FEW_SHOT);
                let episode = Episode {
                    trigger: format!("{question_line}\n"),
                    script: run_on,
                    digressions: inst
                        .digression
                        .iter()
                        .map(|d| lm_digression(d, "So the odd one is "))
                        .collect(),
                    branches: inst
                        .digression
                        .iter()
                        .map(|d| lm_derail_branch(d, "So the odd one is "))
                        .collect(),
                };
                let lm = Arc::new(ScriptedLm::new(Arc::clone(&bpe), [episode]));

                // Standard Decoding.
                let meter = UsageMeter::new();
                let generator = Generator::new(lm.clone(), Arc::clone(&bpe), meter.clone());
                let out = baseline_cot::run(
                    &generator,
                    &baseline_cot::CotTask {
                        few_shot: odd_one_out::FEW_SHOT,
                        question_line: &question_line,
                        options: &inst.options,
                        answer_prefix: "\nSo the odd one is ",
                        chunk_size,
                        max_chunks: 8,
                    },
                );
                baseline.record(inst.is_correct(&out.answer), meter.snapshot());

                // LMQL.
                let mut rt = Runtime::new(lm, Arc::clone(&bpe));
                rt.bind("FEWSHOT", Value::Str(odd_one_out::FEW_SHOT.into()));
                rt.bind("OPTIONS", Value::Str(inst.options_line.clone()));
                let result = rt.run(queries::ODD_ONE_OUT).expect("query runs");
                let answer = result
                    .top_distribution_value()
                    .expect("distribute clause present")
                    .to_owned();
                lmql_stats.record(inst.is_correct(&answer), rt.meter().snapshot());
            }
        }
        Task::DateUnderstanding => {
            for inst in date_understanding::generate(n, seed, profile) {
                let run_on = format!("{}\n\n{}", inst.script(), date_understanding::FEW_SHOT);
                let episode = Episode {
                    trigger: format!("{}\n", inst.question),
                    script: run_on,
                    digressions: inst
                        .digression
                        .iter()
                        .map(|d| lm_digression(d, "So the answer is "))
                        .collect(),
                    branches: inst
                        .digression
                        .iter()
                        .map(|d| lm_derail_branch(d, "So the answer is "))
                        .collect(),
                };
                let lm = Arc::new(ScriptedLm::new(Arc::clone(&bpe), [episode]));

                let meter = UsageMeter::new();
                let generator = Generator::new(lm.clone(), Arc::clone(&bpe), meter.clone());
                let out = baseline_cot::run(
                    &generator,
                    &baseline_cot::CotTask {
                        few_shot: date_understanding::FEW_SHOT,
                        question_line: &inst.question,
                        options: &inst.options,
                        answer_prefix: "\nSo the answer is ",
                        chunk_size,
                        max_chunks: 8,
                    },
                );
                baseline.record(inst.is_correct(&out.answer), meter.snapshot());

                let mut rt = Runtime::new(lm, Arc::clone(&bpe));
                rt.bind("FEWSHOT", Value::Str(date_understanding::FEW_SHOT.into()));
                rt.bind("QUESTION", Value::Str(inst.question.clone()));
                rt.bind(
                    "OPTIONS",
                    Value::List(inst.options.iter().cloned().map(Value::Str).collect()),
                );
                let result = rt.run(queries::DATE_UNDERSTANDING).expect("query runs");
                let answer = result
                    .top_distribution_value()
                    .expect("distribute clause present")
                    .to_owned();
                lmql_stats.record(inst.is_correct(&answer), rt.meter().snapshot());
            }
        }
    }

    CotRow {
        task,
        profile: *profile,
        baseline,
        lmql: lmql_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmql_datasets::GPT_J_PROFILE;

    #[test]
    fn odd_one_out_shape_holds() {
        let row = run(Task::OddOneOut, &GPT_J_PROFILE, 12, 42, 30);
        assert_eq!(row.baseline.n, 12);
        assert_eq!(row.lmql.n, 12);
        // LMQL accuracy at least matches the baseline.
        assert!(row.lmql.accuracy() >= row.baseline.accuracy());
        // LMQL reduces all three cost metrics.
        assert!(row.lmql.avg_model_queries() < row.baseline.avg_model_queries());
        assert!(row.lmql.avg_decoder_calls() < row.baseline.avg_decoder_calls());
        assert!(row.lmql.avg_billable_tokens() < row.baseline.avg_billable_tokens());
    }

    #[test]
    fn date_understanding_shape_holds() {
        let row = run(Task::DateUnderstanding, &GPT_J_PROFILE, 10, 7, 30);
        assert!(row.lmql.accuracy() >= row.baseline.accuracy());
        assert!(row.lmql.avg_billable_tokens() < row.baseline.avg_billable_tokens());
    }
}
