//! Shared experiment plumbing: per-instance model construction, metric
//! aggregation, LMQL/baseline drivers per case study.

pub mod arith_exp;
pub mod cot;
pub mod react_exp;
pub mod retrieval_exp;

use lmql_lm::Usage;

/// Aggregated metrics over a set of task instances (one side of a table
/// row: either Standard Decoding or LMQL).
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Number of instances evaluated.
    pub n: usize,
    /// Instances answered correctly (only meaningful for accuracy tasks).
    pub correct: usize,
    /// Summed usage counters across instances.
    pub usage: Usage,
}

impl Stats {
    /// Adds one instance's outcome.
    pub fn record(&mut self, correct: bool, usage: Usage) {
        self.n += 1;
        if correct {
            self.correct += 1;
        }
        self.usage.model_queries += usage.model_queries;
        self.usage.decoder_calls += usage.decoder_calls;
        self.usage.billable_tokens += usage.billable_tokens;
        self.usage.batch_dispatches += usage.batch_dispatches;
        self.usage.batched_queries += usage.batched_queries;
        self.usage.cache_hits += usage.cache_hits;
        self.usage.cache_misses += usage.cache_misses;
    }

    /// Fraction of correct answers.
    pub fn accuracy(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.correct as f64 / self.n as f64
        }
    }

    /// Average decoder calls per instance.
    pub fn avg_decoder_calls(&self) -> f64 {
        self.avg(self.usage.decoder_calls)
    }

    /// Average model queries per instance.
    pub fn avg_model_queries(&self) -> f64 {
        self.avg(self.usage.model_queries)
    }

    /// Average billable tokens per instance.
    pub fn avg_billable_tokens(&self) -> f64 {
        self.avg(self.usage.billable_tokens)
    }

    /// Average model round trips per instance (batched dispatches count
    /// once however many contexts they carry).
    pub fn avg_dispatches(&self) -> f64 {
        self.avg(self.usage.dispatches())
    }

    fn avg(&self, total: u64) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            total as f64 / self.n as f64
        }
    }
}

/// Converts a dataset digression into a `ScriptedLm` digression whose
/// derailment concludes with the given sentence pattern.
pub fn lm_digression(
    d: &lmql_datasets::odd_one_out::Digression,
    conclusion_prefix: &str,
) -> lmql_lm::Digression {
    lmql_lm::Digression {
        at: d.at,
        text: d.text.clone(),
        replace_remainder: Some(format!("\n{conclusion_prefix}{}.", d.derailed_answer)),
    }
}

/// The derailed-conclusion branch paired with [`lm_digression`]: the
/// baseline truncates its reasoning at the digression's newline, so its
/// answer-scoring context is `script[..at] + "\n<prefix>"` — this branch
/// makes the simulated model conclude the derailed answer there, i.e.
/// "different reasoning → different final answer" (§6.1). Under LMQL the
/// branch's leading newline is masked, so it never fires.
pub fn lm_derail_branch(
    d: &lmql_datasets::odd_one_out::Digression,
    conclusion_prefix: &str,
) -> lmql_lm::Branch {
    lmql_lm::Branch {
        at: d.at,
        text: format!("\n{conclusion_prefix}{}.", d.derailed_answer),
        weight: lmql_lm::SCRIPT_LOGIT,
    }
}
