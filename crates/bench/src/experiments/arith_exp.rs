//! Case study 3 (§6.3): arithmetic reasoning with a calculator tool —
//! the Table 5 lower block.

use crate::experiments::Stats;
use crate::queries;
use lmql::{Runtime, Value};
use lmql_baseline::programs::arith as baseline_arith;
use lmql_baseline::Generator;
use lmql_datasets::tools::CalculatorTool;
use lmql_datasets::{gsm8k, ModelProfile};
use lmql_lm::{corpus, Episode, ScriptedLm, UsageMeter};
use std::sync::Arc;

/// One arithmetic comparison row.
#[derive(Debug, Clone)]
pub struct ArithRow {
    /// Standard Decoding metrics.
    pub baseline: Stats,
    /// LMQL metrics.
    pub lmql: Stats,
}

/// Runs the arithmetic experiment over `n` instances.
pub fn run(profile: &ModelProfile, n: usize, seed: u64, chunk_size: usize) -> ArithRow {
    let bpe = corpus::standard_bpe();
    let mut baseline = Stats::default();
    let mut lmql_stats = Stats::default();

    for inst in gsm8k::generate(n, seed, profile) {
        // The model runs on past the answer into another fabricated
        // Q/A pair, as few-shot models do; the baseline pays for those
        // tokens, LMQL stops at its template.
        let run_on = format!("{}\n\n{}", inst.script, gsm8k::FEW_SHOT);
        let episode = Episode::plain(
            format!("Q: {}\nA: Let's think step by step.\n", inst.question),
            run_on,
        );
        let lm = Arc::new(ScriptedLm::new(Arc::clone(&bpe), [episode]));

        // Standard Decoding: chunk-wise hook scanner.
        let meter = UsageMeter::new();
        let generator = Generator::new(lm.clone(), Arc::clone(&bpe), meter.clone());
        let out = baseline_arith::run(
            &generator,
            &baseline_arith::ArithTask {
                few_shot: gsm8k::FEW_SHOT,
                question: &inst.question,
                chunk_size,
                max_rounds: 60,
            },
        );
        let correct = out.answer.as_deref().is_some_and(|a| inst.is_correct(a));
        baseline.record(correct, meter.snapshot());

        // LMQL: on-the-fly evaluation in one decoder run.
        let mut rt = Runtime::new(lm, Arc::clone(&bpe));
        rt.register_tool(Arc::new(CalculatorTool));
        rt.bind("FEWSHOT", Value::Str(gsm8k::FEW_SHOT.into()));
        rt.bind("QUESTION", Value::Str(inst.question.clone()));
        let result = rt.run(queries::ARITHMETIC).expect("query runs");
        let answer = result.best().var_str("RESULT").map(str::to_owned);
        let correct = answer.as_deref().is_some_and(|a| inst.is_correct(a));
        lmql_stats.record(correct, rt.meter().snapshot());
    }

    ArithRow {
        baseline,
        lmql: lmql_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmql_datasets::GPT_J_PROFILE;

    #[test]
    fn arithmetic_shape_holds() {
        let row = run(&GPT_J_PROFILE, 5, 9, 30);
        assert_eq!(row.baseline.accuracy(), 1.0, "{:?}", row.baseline);
        assert_eq!(row.lmql.accuracy(), 1.0, "{:?}", row.lmql);
        // LMQL: one decoder call; the baseline needs one per hook plus
        // extra chunks.
        assert!((row.lmql.avg_decoder_calls() - 1.0).abs() < 1e-9);
        assert!(row.baseline.avg_decoder_calls() >= 3.0);
        assert!(row.lmql.avg_billable_tokens() < row.baseline.avg_billable_tokens() / 2.0);
    }
}
