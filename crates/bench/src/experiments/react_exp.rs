//! Case study 2 (§6.2): interactive ReAct prompting — the Table 5 upper
//! block and the Fig. 12 chunk-size sweep.

use crate::experiments::Stats;
use crate::queries;
use lmql::{Runtime, Value};
use lmql_baseline::programs::react as baseline_react;
use lmql_baseline::Generator;
use lmql_datasets::tools::WikiTool;
use lmql_datasets::wiki::MiniWiki;
use lmql_datasets::{hotpot, ModelProfile};
use lmql_lm::{corpus, Episode, ScriptedLm, UsageMeter};
use std::sync::Arc;

/// One ReAct comparison row.
#[derive(Debug, Clone)]
pub struct ReactRow {
    /// Baseline chunk size used.
    pub chunk_size: usize,
    /// Standard Decoding metrics.
    pub baseline: Stats,
    /// LMQL metrics.
    pub lmql: Stats,
}

/// Runs the ReAct experiment over `n` instances.
pub fn run(profile: &ModelProfile, n: usize, seed: u64, chunk_size: usize) -> ReactRow {
    let bpe = corpus::standard_bpe();
    let wiki = MiniWiki::standard();
    let mut baseline = Stats::default();
    let mut lmql_stats = Stats::default();

    for inst in hotpot::generate(n, seed, profile) {
        let episode = Episode::plain(format!("{}\n", inst.question), inst.script.clone());
        let lm = Arc::new(ScriptedLm::new(Arc::clone(&bpe), [episode]));

        // Standard Decoding: chunk-wise line interpreter.
        let meter = UsageMeter::new();
        let generator = Generator::new(lm.clone(), Arc::clone(&bpe), meter.clone());
        let out = baseline_react::run(
            &generator,
            &wiki,
            &baseline_react::ReactTask {
                few_shot: hotpot::FEW_SHOT,
                question: &inst.question,
                chunk_size,
                max_lines: 16,
            },
        );
        let correct = out.answer.as_deref().is_some_and(|a| inst.is_correct(a));
        baseline.record(correct, meter.snapshot());

        // LMQL: one decoder run with real lookups from the query body.
        let mut rt = Runtime::new(lm, Arc::clone(&bpe));
        rt.register_tool(Arc::new(WikiTool::new(wiki.clone())));
        rt.bind("FEWSHOT", Value::Str(hotpot::FEW_SHOT.into()));
        rt.bind("QUESTION", Value::Str(inst.question.clone()));
        let result = rt.run(queries::REACT).expect("query runs");
        let answer = result
            .best()
            .var_str("SUBJECT")
            .map(|s| s.trim_end_matches('\'').to_owned());
        let correct = answer.as_deref().is_some_and(|a| inst.is_correct(a));
        lmql_stats.record(correct, rt.meter().snapshot());
    }

    ReactRow {
        chunk_size,
        baseline,
        lmql: lmql_stats,
    }
}

/// The Fig. 12 sweep: the baseline at several chunk sizes, LMQL once.
pub fn sweep(profile: &ModelProfile, n: usize, seed: u64, chunk_sizes: &[usize]) -> Vec<ReactRow> {
    chunk_sizes
        .iter()
        .map(|&c| run(profile, n, seed, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmql_datasets::GPT_J_PROFILE;

    #[test]
    fn react_shape_holds() {
        let row = run(&GPT_J_PROFILE, 5, 3, 30);
        // Both sides answer the two-hop questions correctly.
        assert_eq!(row.baseline.accuracy(), 1.0, "{:?}", row.baseline);
        assert_eq!(row.lmql.accuracy(), 1.0, "{:?}", row.lmql);
        // LMQL: a single decoder call (no distribute clause).
        assert!((row.lmql.avg_decoder_calls() - 1.0).abs() < 1e-9);
        // Structural savings.
        assert!(row.lmql.avg_decoder_calls() < row.baseline.avg_decoder_calls() / 3.0);
        assert!(row.lmql.avg_billable_tokens() < row.baseline.avg_billable_tokens() / 2.0);
        assert!(row.lmql.avg_model_queries() < row.baseline.avg_model_queries());
    }
}
