//! Functional lines-of-code counting for the Table 4 comparison.
//!
//! Matching the paper's metric: "we count the number of functional lines
//! of code (LOC), i.e. excluding comments, empty lines, and fixed prompt
//! parts (e.g. few-shot samples)".

/// Comment syntax of the counted language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Language {
    /// `#` comments (LMQL / Python).
    Lmql,
    /// `//`-family comments plus attributes (Rust).
    Rust,
}

/// Counts functional lines: non-empty, non-comment, and (for Rust)
/// non-attribute lines. `#[cfg(test)]`-gated test modules in Rust sources
/// are excluded entirely, since the paper counts implementation code.
pub fn functional_loc(source: &str, lang: Language) -> usize {
    let mut count = 0;
    let mut in_tests = false;
    for line in source.lines() {
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        match lang {
            Language::Lmql => {
                if t.starts_with('#') {
                    continue;
                }
            }
            Language::Rust => {
                if t == "#[cfg(test)]" {
                    in_tests = true;
                    continue;
                }
                if in_tests {
                    continue;
                }
                if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!") {
                    continue;
                }
            }
        }
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lmql_counting() {
        let src = "# comment\nargmax\n\n    \"[X]\"\nfrom \"m\"\n";
        assert_eq!(functional_loc(src, Language::Lmql), 3);
    }

    #[test]
    fn rust_counting_skips_comments_attrs_tests() {
        let src = r#"
//! docs
/// item docs
#[derive(Debug)]
pub struct S;
fn f() {} // trailing comments still count the line
#[cfg(test)]
mod tests {
    fn t() {}
}
"#;
        assert_eq!(functional_loc(src, Language::Rust), 2);
    }

    #[test]
    fn query_sources_are_concise() {
        use crate::queries;
        for (src, max) in [
            (queries::ODD_ONE_OUT, 15),
            (queries::DATE_UNDERSTANDING, 15),
            (queries::REACT, 25),
            (queries::ARITHMETIC, 25),
        ] {
            let loc = functional_loc(src, Language::Lmql);
            assert!(loc <= max, "query unexpectedly long: {loc} > {max}");
        }
    }
}

#[cfg(test)]
mod format_tests {
    use crate::queries;
    use lmql_syntax::{format_query, parse_query};

    /// The shipped experiment queries are fixed points of the formatter:
    /// parse → format → parse yields the same canonical text.
    #[test]
    fn bench_queries_are_format_fixed_points() {
        for (name, src) in [
            ("odd_one_out", queries::ODD_ONE_OUT),
            ("date_understanding", queries::DATE_UNDERSTANDING),
            ("react", queries::REACT),
            ("arithmetic", queries::ARITHMETIC),
        ] {
            let q1 = parse_query(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let f1 = format_query(&q1);
            let q2 = parse_query(&f1).unwrap_or_else(|e| panic!("{name} (formatted): {e}\n{f1}"));
            assert_eq!(f1, format_query(&q2), "{name} not idempotent");
        }
    }
}
