//! Row formatting shared by the experiment binaries.

use crate::experiments::Stats;

/// GPT-3 davinci pricing the paper uses for cost estimates: $0.02 per 1k
/// billable tokens, i.e. 2¢/1k.
pub const CENTS_PER_1K_TOKENS: f64 = 2.0;

/// Percentage change from `baseline` to `lmql` (negative = reduction).
pub fn delta_pct(baseline: f64, lmql: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (lmql - baseline) / baseline * 100.0
    }
}

/// Prints the paper's per-task metric block (Table 3 / Table 5 layout):
/// accuracy (if measured), decoder calls, model queries, billable tokens,
/// estimated cost savings per query.
pub fn print_metric_block(label: &str, baseline: &Stats, lmql: &Stats, with_accuracy: bool) {
    println!("{label}");
    println!(
        "  {:<18} {:>12} {:>12} {:>9}",
        "", "Standard", "LMQL", "delta"
    );
    if with_accuracy {
        println!(
            "  {:<18} {:>11.2}% {:>11.2}% {:>8.2}%",
            "Accuracy",
            baseline.accuracy() * 100.0,
            lmql.accuracy() * 100.0,
            (lmql.accuracy() - baseline.accuracy()) * 100.0
        );
    }
    let rows: [(&str, f64, f64); 3] = [
        (
            "Decoder Calls",
            baseline.avg_decoder_calls(),
            lmql.avg_decoder_calls(),
        ),
        (
            "Model Queries",
            baseline.avg_model_queries(),
            lmql.avg_model_queries(),
        ),
        (
            "Billable Tokens",
            baseline.avg_billable_tokens(),
            lmql.avg_billable_tokens(),
        ),
    ];
    for (name, b, l) in rows {
        println!(
            "  {:<18} {:>12.2} {:>12.2} {:>8.2}%",
            name,
            b,
            l,
            delta_pct(b, l)
        );
    }
    // Engine statistics appear once runs are routed through the batching
    // scheduler; sequential runs leave them at zero and skip the rows.
    if baseline.usage.batch_dispatches + lmql.usage.batch_dispatches > 0 {
        println!(
            "  {:<18} {:>12.2} {:>12.2} {:>8.2}%",
            "Dispatches",
            baseline.avg_dispatches(),
            lmql.avg_dispatches(),
            delta_pct(baseline.avg_dispatches(), lmql.avg_dispatches())
        );
        println!(
            "  {:<18} {:>12.2} {:>12.2}",
            "Mean Batch Size",
            baseline.usage.mean_batch_size(),
            lmql.usage.mean_batch_size()
        );
    }
    if baseline.usage.cache_hits
        + baseline.usage.cache_misses
        + lmql.usage.cache_hits
        + lmql.usage.cache_misses
        > 0
    {
        println!(
            "  {:<18} {:>11.2}% {:>11.2}%",
            "Cache Hit Rate",
            baseline.usage.cache_hit_rate() * 100.0,
            lmql.usage.cache_hit_rate() * 100.0
        );
    }
    let saved_cents = (baseline.avg_billable_tokens() - lmql.avg_billable_tokens()) / 1000.0
        * CENTS_PER_1K_TOKENS;
    println!(
        "  {:<18} {saved_cents:>32.2} cents/query",
        "Est. Cost Savings"
    );
}

/// Lowercases a human row label into a metric-name segment
/// (`Odd One Out` → `odd_one_out`).
pub fn metric_slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('_') && !out.is_empty() {
            out.push('_');
        }
    }
    out.trim_end_matches('_').to_owned()
}

/// Dumps each experiment arm's aggregated usage through the metrics
/// registry's text exposition — the `--metrics` flag of the experiment
/// binaries. This is a separate block after the tables, so the table
/// columns themselves stay byte-identical with or without the flag.
pub fn print_metrics_registry(arms: &[(String, Stats)]) {
    let registry = lmql_obs::Registry::new();
    for (label, stats) in arms {
        let slug = metric_slug(label);
        let u = stats.usage;
        let counters: [(&str, u64); 9] = [
            ("instances", stats.n as u64),
            ("correct", stats.correct as u64),
            ("model_queries", u.model_queries),
            ("decoder_calls", u.decoder_calls),
            ("billable_tokens", u.billable_tokens),
            ("batch_dispatches", u.batch_dispatches),
            ("batched_queries", u.batched_queries),
            ("cache_hits", u.cache_hits),
            ("cache_misses", u.cache_misses),
        ];
        for (name, value) in counters {
            registry.counter(&format!("bench.{slug}.{name}")).add(value);
        }
    }
    println!("--- metrics ---");
    print!("{}", registry.snapshot().render_text());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_slug_flattens_labels() {
        assert_eq!(metric_slug("Odd One Out"), "odd_one_out");
        assert_eq!(metric_slug("ReAct (Case Study 2)"), "react_case_study_2");
        assert_eq!(metric_slug("gpt-j-6b.lmql"), "gpt_j_6b_lmql");
    }

    #[test]
    fn delta_pct_signs() {
        assert!((delta_pct(100.0, 75.0) + 25.0).abs() < 1e-9);
        assert!((delta_pct(100.0, 120.0) - 20.0).abs() < 1e-9);
        assert_eq!(delta_pct(0.0, 5.0), 0.0);
    }
}
