//! Row formatting shared by the experiment binaries.

use crate::experiments::Stats;

/// GPT-3 davinci pricing the paper uses for cost estimates: $0.02 per 1k
/// billable tokens, i.e. 2¢/1k.
pub const CENTS_PER_1K_TOKENS: f64 = 2.0;

/// Percentage change from `baseline` to `lmql` (negative = reduction).
pub fn delta_pct(baseline: f64, lmql: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (lmql - baseline) / baseline * 100.0
    }
}

/// Prints the paper's per-task metric block (Table 3 / Table 5 layout):
/// accuracy (if measured), decoder calls, model queries, billable tokens,
/// estimated cost savings per query.
pub fn print_metric_block(label: &str, baseline: &Stats, lmql: &Stats, with_accuracy: bool) {
    println!("{label}");
    println!(
        "  {:<18} {:>12} {:>12} {:>9}",
        "", "Standard", "LMQL", "delta"
    );
    if with_accuracy {
        println!(
            "  {:<18} {:>11.2}% {:>11.2}% {:>8.2}%",
            "Accuracy",
            baseline.accuracy() * 100.0,
            lmql.accuracy() * 100.0,
            (lmql.accuracy() - baseline.accuracy()) * 100.0
        );
    }
    let rows: [(&str, f64, f64); 3] = [
        (
            "Decoder Calls",
            baseline.avg_decoder_calls(),
            lmql.avg_decoder_calls(),
        ),
        (
            "Model Queries",
            baseline.avg_model_queries(),
            lmql.avg_model_queries(),
        ),
        (
            "Billable Tokens",
            baseline.avg_billable_tokens(),
            lmql.avg_billable_tokens(),
        ),
    ];
    for (name, b, l) in rows {
        println!(
            "  {:<18} {:>12.2} {:>12.2} {:>8.2}%",
            name,
            b,
            l,
            delta_pct(b, l)
        );
    }
    // Engine statistics appear once runs are routed through the batching
    // scheduler; sequential runs leave them at zero and skip the rows.
    if baseline.usage.batch_dispatches + lmql.usage.batch_dispatches > 0 {
        println!(
            "  {:<18} {:>12.2} {:>12.2} {:>8.2}%",
            "Dispatches",
            baseline.avg_dispatches(),
            lmql.avg_dispatches(),
            delta_pct(baseline.avg_dispatches(), lmql.avg_dispatches())
        );
        println!(
            "  {:<18} {:>12.2} {:>12.2}",
            "Mean Batch Size",
            baseline.usage.mean_batch_size(),
            lmql.usage.mean_batch_size()
        );
    }
    if baseline.usage.cache_hits
        + baseline.usage.cache_misses
        + lmql.usage.cache_hits
        + lmql.usage.cache_misses
        > 0
    {
        println!(
            "  {:<18} {:>11.2}% {:>11.2}%",
            "Cache Hit Rate",
            baseline.usage.cache_hit_rate() * 100.0,
            lmql.usage.cache_hit_rate() * 100.0
        );
    }
    let saved_cents = (baseline.avg_billable_tokens() - lmql.avg_billable_tokens()) / 1000.0
        * CENTS_PER_1K_TOKENS;
    println!(
        "  {:<18} {saved_cents:>32.2} cents/query",
        "Est. Cost Savings"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_pct_signs() {
        assert!((delta_pct(100.0, 75.0) + 25.0).abs() < 1e-9);
        assert!((delta_pct(100.0, 120.0) - 20.0).abs() < 1e-9);
        assert_eq!(delta_pct(0.0, 5.0), 0.0);
    }
}
