//! Decode-loop benchmark: steps/sec and allocations/step for the full
//! constrained decode loop (Alg. 2) under the reference mask
//! configuration against the zero-copy data plane (pooled mask scratch,
//! in-place softmax, rope trace), plus the cost of forking a hypothesis
//! (beam-width-8 `VmState::clone`) for a tiny and a 10k-char trace.
//! Emits `BENCH_decode.json`.
//!
//! Usage: `bench_decode [--out PATH]` (default `BENCH_decode.json`).
//! `LMQL_BENCH_BUDGET_MS` shrinks the per-scenario budget for CI smoke
//! runs. `LMQL_BENCH_ALLOC_BUDGET` (allocs/step) makes the dataplane
//! decode scenarios a hard assertion — exceeding the budget, or any
//! trace-copy allocation on fork, exits 1.
//!
//! The decode workload is inherently *advancing*: every picked token
//! grows the hole value, so every step is a mask-memo miss and the
//! automaton-state map is what keeps masking O(1). The two configs
//! bracket the data plane:
//! - `reference`: no memo, no pooling — every step reallocates its mask
//!   sets and distributions.
//! - `dataplane`: the default config — pooled mask outcomes, in-place
//!   softmax into reused scratch, rope trace. At steady state the loop
//!   allocates only the model's logits buffer.
//!
//! Fork cost is reported separately: a beam fork is a `VmState::clone`,
//! and with the rope trace its allocation count (and bytes) must be
//! independent of trace length — cloning a 10k-char trace is the same
//! refcount bump as cloning a 3-char one.

use lmql::constraints::{MaskConfig, MaskEngine, Masker};
use lmql::{compile_source, decode_hole, DecodeOptions, Externals, Pick, Step, VmState};
use lmql_lm::{corpus, LanguageModel, Logits};
use lmql_syntax::parse_expr;
use lmql_tokenizer::{TokenId, Vocabulary};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counts every allocation (and reallocation) made by the process, and
/// the bytes they requested.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn counters() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

struct Scenario {
    decoder: &'static str,
    config_name: &'static str,
    config: MaskConfig,
}

struct Measurement {
    steps: u64,
    elapsed: Duration,
    allocs: u64,
}

fn run_decode(s: &Scenario, budget: Duration) -> Measurement {
    let bpe = corpus::standard_bpe();
    let lm = corpus::standard_ngram();
    // `len(X) > 2000` keeps EOS inadmissible, so every hole decodes to
    // its 48-token cap — a pure advancing workload with the per-hole
    // setup amortised over the full cap.
    let expr = parse_expr("not \"\\n\" in X and len(X) > 2000").unwrap();
    let scope = HashMap::new();
    let mut masker = Masker::new(MaskEngine::default(), bpe.clone()).with_config(s.config);
    let options = DecodeOptions {
        max_tokens_per_hole: 48,
        mask: s.config,
        ..DecodeOptions::default()
    };
    let mut pick = match s.decoder {
        "argmax" => Pick::argmax(),
        _ => Pick::sample(7),
    };
    let trace = "The little prince said: ";

    let mut decode = |pick: &mut Pick| {
        let out = decode_hole(
            lm.as_ref(),
            &bpe,
            &mut masker,
            Some(&expr),
            &scope,
            trace,
            "X",
            pick,
            &options,
        )
        .expect("benchmark decode must succeed");
        out.tokens as u64
    };

    // Warm-up: scan caches, automaton compilation, state discovery along
    // the length-tracking constraint, memo population for the
    // empty-value first step of each hole. Sampled values vary, so give
    // discovery enough holes to reach steady state before measuring.
    for _ in 0..8 {
        std::hint::black_box(decode(&mut pick));
    }

    let (alloc_start, _) = counters();
    let start = Instant::now();
    let mut steps = 0u64;
    while start.elapsed() < budget {
        steps += std::hint::black_box(decode(&mut pick)).max(1);
    }
    Measurement {
        steps,
        elapsed: start.elapsed(),
        allocs: counters().0 - alloc_start,
    }
}

/// Builds a finished `VmState` whose trace is a single emitted literal of
/// `chars` characters — no holes, no locals, so two states of different
/// trace length are structurally identical apart from the trace.
fn vm_with_trace(chars: usize) -> VmState {
    let literal = "x".repeat(chars);
    let source = format!("argmax\n    \"{literal}\"\nfrom \"m\"\n");
    let program = compile_source(&source).expect("literal-only query compiles");
    let externals = Externals::new();
    let mut vm = VmState::new([]);
    assert_eq!(vm.run(&program, &externals).unwrap(), Step::Done);
    assert_eq!(vm.trace().len(), chars);
    vm
}

struct ForkCost {
    allocs_per_fork: f64,
    bytes_per_fork: f64,
}

const FORK_WIDTH: usize = 8;
const FORK_ITERS: usize = 2_000;

/// Allocation cost of forking `vm` into a width-8 beam, averaged over
/// many rounds. The holding vector is reused so only the clones
/// themselves are measured.
fn fork_cost(vm: &VmState) -> ForkCost {
    let mut clones: Vec<VmState> = Vec::with_capacity(FORK_WIDTH);
    // Warm-up round: first-touch effects.
    for _ in 0..FORK_WIDTH {
        clones.push(vm.clone());
    }
    clones.clear();
    let (a0, b0) = counters();
    for _ in 0..FORK_ITERS {
        for _ in 0..FORK_WIDTH {
            clones.push(vm.clone());
        }
        std::hint::black_box(&clones);
        clones.clear();
    }
    let (a1, b1) = counters();
    let forks = (FORK_ITERS * FORK_WIDTH) as f64;
    ForkCost {
        allocs_per_fork: (a1 - a0) as f64 / forks,
        bytes_per_fork: (b1 - b0) as f64 / forks,
    }
}

/// A model wrapper adding a fixed per-call latency, standing in for real
/// inference where model latency dominates the decode loop — which is
/// exactly the regime program-level hole parallelism targets.
struct LatencyLm {
    inner: Arc<dyn LanguageModel>,
    delay: Duration,
}

impl LanguageModel for LatencyLm {
    fn vocab(&self) -> &Vocabulary {
        self.inner.vocab()
    }

    fn score(&self, context: &[TokenId]) -> Logits {
        std::thread::sleep(self.delay);
        self.inner.score(context)
    }
}

struct HolesMeasurement {
    parallel_ms: f64,
    sequential_ms: f64,
}

/// Wall clock for a four-independent-hole program with and without the
/// hole-DAG group decode (DESIGN.md §14), over a 2ms-per-call model.
fn run_holes() -> HolesMeasurement {
    const HOLES_SRC: &str = "argmax\n    \"L0:[H0]L1:[H1]L2:[H2]L3:[H3]\"\nfrom \"m\"\nwhere stops_at(H0, \"\\n\") and stops_at(H1, \"\\n\") and stops_at(H2, \"\\n\") and stops_at(H3, \"\\n\")\n";
    let bpe = corpus::standard_bpe();
    let lm: Arc<dyn LanguageModel> = Arc::new(LatencyLm {
        inner: corpus::standard_ngram(),
        delay: Duration::from_millis(2),
    });
    let run = |parallel: bool| {
        let mut rt = lmql::Runtime::new(Arc::clone(&lm), Arc::clone(&bpe));
        rt.options_mut().max_tokens_per_hole = 12;
        rt.options_mut().parallel_holes = parallel;
        let start = Instant::now();
        let result = rt.run(HOLES_SRC).expect("holes benchmark decode succeeds");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        (result.best().trace.clone(), elapsed)
    };
    // Warm-up: automata compilation and mask discovery for both paths.
    let _ = run(true);
    let _ = run(false);
    let (par_trace, parallel_ms) = run(true);
    let (seq_trace, sequential_ms) = run(false);
    assert_eq!(
        par_trace, seq_trace,
        "parallel decode must be byte-identical"
    );
    HolesMeasurement {
        parallel_ms,
        sequential_ms,
    }
}

fn main() {
    let mut out_path = String::from("BENCH_decode.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out requires a path"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let budget = Duration::from_millis(
        std::env::var("LMQL_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(400),
    );

    let alloc_budget: Option<f64> = std::env::var("LMQL_BENCH_ALLOC_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut budget_breached = false;

    let scenarios = [
        Scenario {
            decoder: "argmax",
            config_name: "reference",
            config: MaskConfig::reference(),
        },
        Scenario {
            decoder: "argmax",
            config_name: "dataplane",
            config: MaskConfig::default(),
        },
        Scenario {
            decoder: "sample",
            config_name: "reference",
            config: MaskConfig::reference(),
        },
        Scenario {
            decoder: "sample",
            config_name: "dataplane",
            config: MaskConfig::default(),
        },
    ];

    let mut rows = Vec::new();
    for s in &scenarios {
        let m = run_decode(s, budget);
        let secs = m.elapsed.as_secs_f64();
        let steps_per_sec = m.steps as f64 / secs;
        let ns_per_step = secs * 1e9 / m.steps as f64;
        let allocs_per_step = m.allocs as f64 / m.steps as f64;
        println!(
            "bench: decode/{}/{:<9} {:>10.1} steps/s  {:>10.0} ns/step  {:>8.1} allocs/step",
            s.decoder, s.config_name, steps_per_sec, ns_per_step, allocs_per_step
        );
        if s.config_name == "dataplane" {
            if let Some(max) = alloc_budget {
                if allocs_per_step > max {
                    eprintln!(
                        "bench: ALLOC BUDGET EXCEEDED for decode/{}/dataplane: \
                         {allocs_per_step:.1} allocs/step > budget {max:.1}",
                        s.decoder
                    );
                    budget_breached = true;
                }
            }
        }
        rows.push(format!(
            "    {{\n      \"decoder\": \"{}\",\n      \"config\": \"{}\",\n      \
             \"steps_per_sec\": {:.1},\n      \"ns_per_step\": {:.0},\n      \
             \"allocs_per_step\": {:.1}\n    }}",
            s.decoder, s.config_name, steps_per_sec, ns_per_step, allocs_per_step
        ));
    }

    // Fork cost: with the rope trace a fork must not copy trace bytes, so
    // allocation count and bytes are identical for a 3-char and a
    // 10k-char trace.
    let small = vm_with_trace(3);
    let large = vm_with_trace(10_000);
    let small_cost = fork_cost(&small);
    let large_cost = fork_cost(&large);
    let trace_copy_allocs = large_cost.allocs_per_fork - small_cost.allocs_per_fork;
    let trace_copy_bytes = large_cost.bytes_per_fork - small_cost.bytes_per_fork;
    println!(
        "bench: decode/fork/width{FORK_WIDTH}      small {:.2} allocs ({:.0} B)  \
         large {:.2} allocs ({:.0} B)  trace-copy {:+.2} allocs {:+.0} B",
        small_cost.allocs_per_fork,
        small_cost.bytes_per_fork,
        large_cost.allocs_per_fork,
        large_cost.bytes_per_fork,
        trace_copy_allocs,
        trace_copy_bytes,
    );
    if alloc_budget.is_some() && (trace_copy_allocs != 0.0 || trace_copy_bytes != 0.0) {
        eprintln!(
            "bench: FORK TRACE-COPY DETECTED: large-trace fork costs \
             {trace_copy_allocs:+.2} allocs / {trace_copy_bytes:+.0} bytes over a small-trace fork"
        );
        budget_breached = true;
    }

    // Program-level parallelism: the same four-independent-hole program
    // with the hole-DAG group decode on and off, over a fixed-latency
    // model — the wall-clock win is overlap of model calls, byte-
    // identical by construction (asserted inside run_holes).
    let holes = run_holes();
    let holes_parallel = holes.parallel_ms;
    let holes_sequential = holes.sequential_ms;
    let holes_speedup = holes_sequential / holes_parallel;
    println!(
        "bench: decode/holes/parallel4  {:>8.1} ms parallel  {:>8.1} ms sequential  {:>5.2}x speedup",
        holes.parallel_ms, holes.sequential_ms, holes_speedup
    );

    let json = format!(
        "{{\n  \"bench\": \"decode\",\n  \"budget_ms\": {},\n  \"scenarios\": [\n{}\n  ],\n  \
         \"holes\": {{\n    \"independent_holes\": 4,\n    \"model_latency_ms\": 2,\n    \
         \"parallel_ms\": {holes_parallel:.1},\n    \"sequential_ms\": {holes_sequential:.1},\n    \
         \"speedup\": {holes_speedup:.2}\n  }},\n  \
         \"fork\": {{\n    \"width\": {FORK_WIDTH},\n    \"small_trace_chars\": 3,\n    \
         \"large_trace_chars\": 10000,\n    \"allocs_per_fork_small\": {:.2},\n    \
         \"allocs_per_fork_large\": {:.2},\n    \"bytes_per_fork_small\": {:.0},\n    \
         \"bytes_per_fork_large\": {:.0},\n    \"trace_copy_allocs_per_fork\": {:.2},\n    \
         \"trace_copy_bytes_per_fork\": {:.0}\n  }}\n}}\n",
        budget.as_millis(),
        rows.join(",\n"),
        small_cost.allocs_per_fork,
        large_cost.allocs_per_fork,
        small_cost.bytes_per_fork,
        large_cost.bytes_per_fork,
        trace_copy_allocs,
        trace_copy_bytes,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_decode.json");
    println!("wrote {out_path}");
    if budget_breached {
        std::process::exit(1);
    }
}
