//! Mask-generation benchmark: steps/sec and allocations/step for the
//! reference configuration (no memo, sequential scans) against the
//! accelerated ones (memoized + parallel scans; compiled constraint
//! automata), on a 12k-token vocabulary. Emits `BENCH_mask.json`.
//!
//! Usage: `bench_mask [--out PATH]` (default `BENCH_mask.json`).
//! `LMQL_BENCH_BUDGET_MS` shrinks the per-scenario budget for CI smoke
//! runs. `LMQL_BENCH_ALLOC_BUDGET` (allocs/step) makes the automata
//! advancing scenario a hard assertion: exceeding the budget exits 1.
//!
//! Two workloads bracket what decoding produces:
//! - `steady`: the same decode state every step — beam siblings and
//!   repeated engine queries; this is where the memo pays off.
//! - `advancing`: the value grows every step, so every state is a memo
//!   miss; the `fast` config can only throw parallel scans + pooled
//!   scratch sets at it, while `automata` maps each new value onto a
//!   previously-discovered automaton state and serves the cached mask.
//!
//! Automaton compilation is a one-time cost per (query, vocabulary), so
//! it is measured and reported as its own line instead of being folded
//! into ns/step.

use lmql::constraints::{MaskConfig, MaskEngine, Masker, VocabSource};
use lmql_syntax::parse_expr;
use lmql_tokenizer::Vocabulary;
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counts every allocation (and reallocation) made by the process.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[derive(Debug)]
struct RawVocab(Vocabulary);

impl VocabSource for RawVocab {
    fn vocabulary(&self) -> &Vocabulary {
        &self.0
    }
}

const VOCAB_SIZE: usize = 12_000;

fn synthetic_vocab() -> Arc<RawVocab> {
    let toks: Vec<String> = (0..VOCAB_SIZE)
        .map(|i| match i % 8 {
            0 => format!("tok{i}"),
            1 => format!(" word{i}"),
            2 => format!("{i}"),
            3 => format!("x{i}."),
            4 => format!(" {i}"),
            5 => format!("ab{i}"),
            6 => format!("{i}\n"),
            _ => format!("q{i}!"),
        })
        .collect();
    Arc::new(RawVocab(Vocabulary::from_tokens(
        toks.iter().map(String::as_str),
    )))
}

struct Scenario {
    engine: MaskEngine,
    config_name: &'static str,
    config: MaskConfig,
    workload: &'static str,
}

struct Measurement {
    steps: u64,
    elapsed: Duration,
    allocs: u64,
}

fn run_scenario(s: &Scenario, vocab: &Arc<RawVocab>, budget: Duration) -> Measurement {
    let expr =
        parse_expr("not \"\\n\" in X and stops_at(X, \".\") and len(words(X)) < 40").unwrap();
    let scope = HashMap::new();
    let mut masker = Masker::new(s.engine, vocab.clone()).with_config(s.config);

    let mut step = 0u64;
    let mut value = String::from("some reasoning text so far");
    // `advancing` splices the step counter in, so every decode state is
    // unique and the memo never hits; `steady` replays one state.
    let advance = |step: u64, value: &mut String| {
        if s.workload == "advancing" {
            use std::fmt::Write as _;
            value.truncate(26);
            let _ = write!(value, " {step}");
        }
    };

    // Warm-up: scan caches, thread-pool first-touch, memo population for
    // the steady workload.
    for _ in 0..3 {
        step += 1;
        advance(step, &mut value);
        std::hint::black_box(masker.compute(Some(&expr), &scope, "X", &value));
    }

    let alloc_start = ALLOCS.load(Ordering::Relaxed);
    let start = Instant::now();
    let mut steps = 0u64;
    while start.elapsed() < budget {
        step += 1;
        advance(step, &mut value);
        std::hint::black_box(masker.compute(Some(&expr), &scope, "X", &value));
        steps += 1;
    }
    Measurement {
        steps,
        elapsed: start.elapsed(),
        allocs: ALLOCS.load(Ordering::Relaxed) - alloc_start,
    }
}

fn main() {
    let mut out_path = String::from("BENCH_mask.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out requires a path"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let budget = Duration::from_millis(
        std::env::var("LMQL_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(400),
    );

    let vocab = synthetic_vocab();
    let mut scenarios = Vec::new();
    for engine in [MaskEngine::Exact, MaskEngine::Symbolic] {
        for (config_name, config) in [
            ("reference", MaskConfig::reference()),
            // `fast` isolates memo + parallel scans from the automaton.
            (
                "fast",
                MaskConfig {
                    automata: false,
                    ..MaskConfig::default()
                },
            ),
            ("automata", MaskConfig::default()),
        ] {
            for workload in ["steady", "advancing"] {
                scenarios.push(Scenario {
                    engine,
                    config_name,
                    config,
                    workload,
                });
            }
        }
    }

    let alloc_budget: Option<f64> = std::env::var("LMQL_BENCH_ALLOC_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut budget_breached = false;

    let mut rows = Vec::new();
    for s in &scenarios {
        let m = run_scenario(s, &vocab, budget);
        let secs = m.elapsed.as_secs_f64();
        let steps_per_sec = m.steps as f64 / secs;
        let ns_per_step = secs * 1e9 / m.steps as f64;
        let allocs_per_step = m.allocs as f64 / m.steps as f64;
        println!(
            "bench: mask/{:?}/{}/{:<9} {:>10.1} steps/s  {:>10.0} ns/step  {:>8.1} allocs/step",
            s.engine, s.config_name, s.workload, steps_per_sec, ns_per_step, allocs_per_step
        );
        if s.config_name == "automata" && s.workload == "advancing" {
            if let Some(max) = alloc_budget {
                if allocs_per_step > max {
                    eprintln!(
                        "bench: ALLOC BUDGET EXCEEDED for mask/{:?}/automata/advancing: \
                         {allocs_per_step:.1} allocs/step > budget {max:.1}",
                        s.engine
                    );
                    budget_breached = true;
                }
            }
        }
        rows.push(format!(
            "    {{\n      \"engine\": \"{:?}\",\n      \"config\": \"{}\",\n      \
             \"workload\": \"{}\",\n      \"steps_per_sec\": {:.1},\n      \
             \"ns_per_step\": {:.0},\n      \"allocs_per_step\": {:.1}\n    }}",
            s.engine, s.config_name, s.workload, steps_per_sec, ns_per_step, allocs_per_step
        ));
    }

    // One-time automaton compilation cost, reported separately: median
    // of repeated compilations of the benchmark constraint.
    let compile_expr =
        parse_expr("not \"\\n\" in X and stops_at(X, \".\") and len(words(X)) < 40").unwrap();
    struct NoScope;
    impl lmql_automata::ScopeResolver for NoScope {
        fn str_list(&self, _name: &str) -> Option<Vec<String>> {
            None
        }
    }
    let mut samples: Vec<f64> = Vec::new();
    let mut leaves = 0usize;
    for _ in 0..101 {
        let t = Instant::now();
        let automaton = lmql_automata::compile(&compile_expr, "X", &NoScope, &|_| false)
            .expect("benchmark constraint must compile");
        samples.push(t.elapsed().as_secs_f64() * 1e6);
        leaves = automaton.leaf_count();
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("compile times are never NaN"));
    let compile_us = samples[samples.len() / 2];
    println!("bench: mask/automata/compile            {compile_us:>10.2} us  ({leaves} leaves)");

    let json = format!(
        "{{\n  \"bench\": \"mask\",\n  \"vocab_tokens\": {VOCAB_SIZE},\n  \
         \"budget_ms\": {},\n  \"automata_compile_us\": {compile_us:.2},\n  \
         \"automata_leaves\": {leaves},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        budget.as_millis(),
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_mask.json");
    println!("wrote {out_path}");
    if budget_breached {
        std::process::exit(1);
    }
}
