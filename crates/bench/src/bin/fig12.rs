//! Reproduces **Fig. 12**: the effect of the baseline's chunk size on
//! decoder calls, model queries and billable tokens, against LMQL's
//! chunk-free decoding (flat reference line).
//!
//! Usage: `cargo run -p lmql-bench --bin fig12 [--n <instances>] [--metrics]`

use lmql_bench::experiments::react_exp;
use lmql_bench::table::print_metrics_registry;
use lmql_datasets::GPT_J_PROFILE;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = args
        .iter()
        .position(|a| a == "--n")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--n takes a number"))
        .unwrap_or(10);
    let dump_metrics = args.iter().any(|a| a == "--metrics");

    let chunk_sizes = [10, 20, 30, 40, 50, 60, 70];
    println!("Fig. 12: baseline chunk-size sweep on the ReAct workload ({n} instances)\n");
    println!(
        "{:>10} {:>15} {:>15} {:>17}",
        "chunk", "decoder calls", "model queries", "billable tokens"
    );

    let rows = react_exp::sweep(&GPT_J_PROFILE, n, 3, &chunk_sizes);
    for row in &rows {
        println!(
            "{:>10} {:>15.2} {:>15.2} {:>17.2}",
            row.chunk_size,
            row.baseline.avg_decoder_calls(),
            row.baseline.avg_model_queries(),
            row.baseline.avg_billable_tokens()
        );
    }
    // LMQL does not decode chunk-wise: one flat line.
    let lmql = &rows[0].lmql;
    println!(
        "{:>10} {:>15.2} {:>15.2} {:>17.2}",
        "LMQL",
        lmql.avg_decoder_calls(),
        lmql.avg_model_queries(),
        lmql.avg_billable_tokens()
    );

    // The figure's three panels, rendered as bar charts.
    type Metric = (&'static str, fn(&lmql_bench::experiments::Stats) -> f64);
    let metrics: [Metric; 3] = [
        ("decoder calls", |s| s.avg_decoder_calls()),
        ("model queries", |s| s.avg_model_queries()),
        ("billable tokens", |s| s.avg_billable_tokens()),
    ];
    for (title, get) in metrics {
        println!("\n{title} vs. chunk size (█ standard decoding, · LMQL level)");
        let max = rows
            .iter()
            .map(|r| get(&r.baseline))
            .fold(get(lmql), f64::max);
        let width = 46.0;
        let lmql_col = ((get(lmql) / max) * width).round() as usize;
        for row in &rows {
            let v = get(&row.baseline);
            let cols = ((v / max) * width).round() as usize;
            let mut bar: Vec<char> = vec![' '; width as usize + 1];
            for c in bar.iter_mut().take(cols) {
                *c = '█';
            }
            if lmql_col < bar.len() && bar[lmql_col] == ' ' {
                bar[lmql_col] = '·';
            }
            println!(
                "  chunk {:>2} |{} {:.1}",
                row.chunk_size,
                bar.into_iter().collect::<String>(),
                v
            );
        }
        println!(
            "  {:>8} |{}· {:.1}",
            "LMQL",
            " ".repeat(lmql_col),
            get(lmql)
        );
    }

    if dump_metrics {
        println!();
        let mut arms: Vec<_> = rows
            .iter()
            .map(|r| (format!("chunk_{}.standard", r.chunk_size), r.baseline))
            .collect();
        arms.push(("lmql".to_owned(), *lmql));
        print_metrics_registry(&arms);
    }
}
