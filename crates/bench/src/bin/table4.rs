//! Reproduces **Table 4**: lines of code required for the baseline
//! implementations vs the corresponding LMQL queries.

use lmql_baseline::programs::{ARITH_SOURCE, COT_SOURCE, REACT_SOURCE};
use lmql_bench::loc::{functional_loc, Language};
use lmql_bench::queries;

fn main() {
    println!("Table 4: lines of code (functional; comments/blank lines excluded)\n");
    println!("{:<22} {:>16} {:>6}", "Task", "Python-style", "LMQL");
    println!("{:<22} {:>16} {:>6}", "", "baseline (Rust)", "");

    let rows = [
        ("Odd One Out", COT_SOURCE, queries::ODD_ONE_OUT),
        (
            "Date Understanding",
            COT_SOURCE,
            queries::DATE_UNDERSTANDING,
        ),
        ("Arithmetic Reasoning", ARITH_SOURCE, queries::ARITHMETIC),
        ("ReAct", REACT_SOURCE, queries::REACT),
    ];
    for (task, baseline_src, query_src) in rows {
        println!(
            "{:<22} {:>16} {:>6}",
            task,
            functional_loc(baseline_src, Language::Rust),
            functional_loc(query_src, Language::Lmql)
        );
    }
    println!(
        "\n(The baseline column counts the task program only; the shared chunk-wise\n\
         generate() plumbing and parsing helpers are excluded on both sides.)"
    );
}
