//! Reproduces **Table 4**: lines of code required for the baseline
//! implementations vs the corresponding LMQL queries.

use lmql_baseline::programs::{ARITH_SOURCE, COT_SOURCE, REACT_SOURCE};
use lmql_bench::loc::{functional_loc, Language};
use lmql_bench::queries;
use lmql_bench::table::metric_slug;
use lmql_obs::Registry;

fn main() {
    let metrics = std::env::args().any(|a| a == "--metrics");
    println!("Table 4: lines of code (functional; comments/blank lines excluded)\n");
    println!("{:<22} {:>16} {:>6}", "Task", "Python-style", "LMQL");
    println!("{:<22} {:>16} {:>6}", "", "baseline (Rust)", "");

    let rows = [
        ("Odd One Out", COT_SOURCE, queries::ODD_ONE_OUT),
        (
            "Date Understanding",
            COT_SOURCE,
            queries::DATE_UNDERSTANDING,
        ),
        ("Arithmetic Reasoning", ARITH_SOURCE, queries::ARITHMETIC),
        ("ReAct", REACT_SOURCE, queries::REACT),
    ];
    let registry = Registry::new();
    for (task, baseline_src, query_src) in rows {
        let baseline_loc = functional_loc(baseline_src, Language::Rust);
        let lmql_loc = functional_loc(query_src, Language::Lmql);
        println!("{task:<22} {baseline_loc:>16} {lmql_loc:>6}");
        let slug = metric_slug(task);
        registry
            .gauge(&format!("bench.{slug}.loc_baseline"))
            .set(baseline_loc as u64);
        registry
            .gauge(&format!("bench.{slug}.loc_lmql"))
            .set(lmql_loc as u64);
    }
    println!(
        "\n(The baseline column counts the task program only; the shared chunk-wise\n\
         generate() plumbing and parsing helpers are excluded on both sides.)"
    );
    if metrics {
        println!("--- metrics ---");
        print!("{}", registry.snapshot().render_text());
    }
}
