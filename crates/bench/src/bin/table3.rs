//! Reproduces **Table 3**: chain-of-thought decoding statistics for Odd
//! One Out and Date Understanding, Standard Decoding vs LMQL, under two
//! simulated model profiles.
//!
//! Usage: `cargo run -p lmql-bench --bin table3 [--n <instances>] [--profile large] [--metrics]`

use lmql_bench::experiments::cot::{run, Task};
use lmql_bench::table::{print_metric_block, print_metrics_registry};
use lmql_datasets::{GPT_35_PROFILE, GPT_J_PROFILE, OPT_30B_PROFILE};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_value(&args, "--n")
        .map(|v| v.parse().expect("--n takes a number"))
        .unwrap_or(84);
    let large_control = args.iter().any(|a| a == "--profile")
        && arg_value(&args, "--profile").as_deref() == Some("large");
    let metrics = args.iter().any(|a| a == "--metrics");

    println!("Table 3: constrained LMQL chain-of-thought decoding vs standard chunk-wise decoding");
    println!("({n} synthetic instances per task; chunk size 30; see EXPERIMENTS.md)\n");

    let profiles = if large_control {
        vec![GPT_35_PROFILE]
    } else {
        vec![GPT_J_PROFILE, OPT_30B_PROFILE]
    };

    let mut arms = Vec::new();
    for profile in &profiles {
        println!("=== model profile: {} ===", profile.name);
        for (task, seed) in [(Task::OddOneOut, 42), (Task::DateUnderstanding, 43)] {
            let row = run(task, profile, n, seed, 30);
            print_metric_block(task.label(), &row.baseline, &row.lmql, true);
            println!();
            let tag = format!("{}.{}", profile.name, task.label());
            arms.push((format!("{tag}.standard"), row.baseline));
            arms.push((format!("{tag}.lmql"), row.lmql));
        }
    }
    if metrics {
        print_metrics_registry(&arms);
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}
