//! Reproduces **Table 5**: LMQL vs Standard Decoding on the interactive
//! prompting case studies — ReAct question answering and arithmetic
//! reasoning with a calculator.
//!
//! Usage: `cargo run -p lmql-bench --bin table5 [--n <instances>] [--metrics]`

use lmql_bench::experiments::{arith_exp, react_exp};
use lmql_bench::table::{print_metric_block, print_metrics_registry};
use lmql_datasets::GPT_J_PROFILE;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = args
        .iter()
        .position(|a| a == "--n")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--n takes a number"))
        .unwrap_or(25);
    let metrics = args.iter().any(|a| a == "--metrics");

    println!("Table 5: LMQL constrained decoding vs Standard Decoding, interactive prompting");
    println!("({n} synthetic instances per case study; baseline chunk size 30)\n");

    let react = react_exp::run(&GPT_J_PROFILE, n, 3, 30);
    print_metric_block("ReAct (Case Study 2)", &react.baseline, &react.lmql, false);
    println!();

    let arith = arith_exp::run(&GPT_J_PROFILE, n, 9, 30);
    print_metric_block(
        "Arithmetic Evaluation (Case Study 3)",
        &arith.baseline,
        &arith.lmql,
        false,
    );

    if metrics {
        println!();
        print_metrics_registry(&[
            ("react.standard".to_owned(), react.baseline),
            ("react.lmql".to_owned(), react.lmql),
            ("arithmetic.standard".to_owned(), arith.baseline),
            ("arithmetic.lmql".to_owned(), arith.lmql),
        ]);
    }
}
