//! Runs every table and figure reproduction in sequence (the source of
//! the numbers recorded in EXPERIMENTS.md). Accepts `--quick` for a
//! smaller instance count and `--metrics` for a combined registry dump
//! after all experiments.

use lmql_baseline::programs::{ARITH_SOURCE, COT_SOURCE, REACT_SOURCE};
use lmql_bench::experiments::cot::{self, Task};
use lmql_bench::experiments::{arith_exp, react_exp};
use lmql_bench::loc::{functional_loc, Language};
use lmql_bench::queries;
use lmql_bench::table::{print_metric_block, print_metrics_registry};
use lmql_datasets::{GPT_35_PROFILE, GPT_J_PROFILE, OPT_30B_PROFILE};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let metrics = std::env::args().any(|a| a == "--metrics");
    let (n_cot, n_tool, n_fig) = if quick { (20, 8, 5) } else { (84, 25, 10) };
    let mut arms = Vec::new();

    println!("================ Table 3 ================\n");
    for profile in [GPT_J_PROFILE, OPT_30B_PROFILE] {
        println!("=== model profile: {} ===", profile.name);
        for (task, seed) in [(Task::OddOneOut, 42), (Task::DateUnderstanding, 43)] {
            let row = cot::run(task, &profile, n_cot, seed, 30);
            print_metric_block(task.label(), &row.baseline, &row.lmql, true);
            println!();
            let tag = format!("{}.{}", profile.name, task.label());
            arms.push((format!("{tag}.standard"), row.baseline));
            arms.push((format!("{tag}.lmql"), row.lmql));
        }
    }
    println!("=== GPT-3.5-style control (§6.1) ===");
    for (task, seed) in [(Task::OddOneOut, 42), (Task::DateUnderstanding, 43)] {
        let row = cot::run(task, &GPT_35_PROFILE, n_cot, seed, 30);
        println!(
            "{}: accuracy standard {:.2}% vs LMQL {:.2}%",
            task.label(),
            row.baseline.accuracy() * 100.0,
            row.lmql.accuracy() * 100.0
        );
    }

    println!("\n================ Table 4 ================\n");
    for (task, baseline_src, query_src) in [
        ("Odd One Out", COT_SOURCE, queries::ODD_ONE_OUT),
        (
            "Date Understanding",
            COT_SOURCE,
            queries::DATE_UNDERSTANDING,
        ),
        ("Arithmetic Reasoning", ARITH_SOURCE, queries::ARITHMETIC),
        ("ReAct", REACT_SOURCE, queries::REACT),
    ] {
        println!(
            "{:<22} baseline {:>3} LOC   LMQL {:>3} LOC",
            task,
            functional_loc(baseline_src, Language::Rust),
            functional_loc(query_src, Language::Lmql)
        );
    }

    println!("\n================ Table 5 ================\n");
    let react = react_exp::run(&GPT_J_PROFILE, n_tool, 3, 30);
    print_metric_block("ReAct (Case Study 2)", &react.baseline, &react.lmql, false);
    println!();
    let arith = arith_exp::run(&GPT_J_PROFILE, n_tool, 9, 30);
    print_metric_block(
        "Arithmetic Evaluation (Case Study 3)",
        &arith.baseline,
        &arith.lmql,
        false,
    );

    println!("\n================ Fig. 12 ================\n");
    println!(
        "{:>10} {:>15} {:>15} {:>17}",
        "chunk", "decoder calls", "model queries", "billable tokens"
    );
    let rows = react_exp::sweep(&GPT_J_PROFILE, n_fig, 3, &[10, 20, 30, 40, 50, 60, 70]);
    for row in &rows {
        println!(
            "{:>10} {:>15.2} {:>15.2} {:>17.2}",
            row.chunk_size,
            row.baseline.avg_decoder_calls(),
            row.baseline.avg_model_queries(),
            row.baseline.avg_billable_tokens()
        );
    }
    let lmql = &rows[0].lmql;
    println!(
        "{:>10} {:>15.2} {:>15.2} {:>17.2}",
        "LMQL",
        lmql.avg_decoder_calls(),
        lmql.avg_model_queries(),
        lmql.avg_billable_tokens()
    );

    if metrics {
        arms.push(("react.standard".to_owned(), react.baseline));
        arms.push(("react.lmql".to_owned(), react.lmql));
        arms.push(("arithmetic.standard".to_owned(), arith.baseline));
        arms.push(("arithmetic.lmql".to_owned(), arith.lmql));
        for row in &rows {
            arms.push((format!("chunk_{}.standard", row.chunk_size), row.baseline));
        }
        arms.push(("fig12.lmql".to_owned(), *lmql));
        println!();
        print_metrics_registry(&arms);
    }
}
