//! Router benchmark: radix-cache hit rates and throughput for a sharded
//! shared-prefix workload under prefix-affinity routing vs. the
//! cache-oblivious round-robin baseline (DESIGN.md §15). Emits
//! `BENCH_router.json`.
//!
//! Usage: `bench_router [--out PATH]` (default `BENCH_router.json`).
//! `LMQL_BENCH_ROUTER_REPEATS` overrides the queries-per-prefix-group
//! count. `LMQL_BENCH_ROUTER_MIN_ADVANTAGE` (a ratio, e.g. `2.0`) makes
//! the affinity hit-rate advantage a hard assertion — falling below it
//! exits 1, so CI can gate on the number that justifies the router's
//! existence.
//!
//! The workload is the one sharding is hardest on: G distinct prompt
//! prefixes, each queried N times, over R replica engines with private
//! radix caches. Affinity routing sends every repeat of a prefix to the
//! same replica, so each group pays one cold decode and then hits;
//! round-robin deals consecutive repeats to consecutive replicas, so a
//! group's repeats warm R separate caches and mostly miss. Both modes
//! must return byte-identical results — routing never changes what a
//! query computes.

use lmql_engine::{Engine, EngineConfig, Router, RouterConfig};
use lmql_lm::{Episode, LanguageModel, ScriptedLm};
use lmql_tokenizer::Bpe;
use std::sync::Arc;
use std::time::Instant;

const REPLICAS: usize = 8;
const GROUPS: usize = 8;

fn model(bpe: &Arc<Bpe>) -> Arc<dyn LanguageModel> {
    let episodes: Vec<Episode> = (0..GROUPS)
        .map(|g| {
            Episode::plain(
                format!("P{g}: tell me"),
                format!(" about topic number {g} at length."),
            )
        })
        .collect();
    Arc::new(ScriptedLm::new(Arc::clone(bpe), episodes))
}

fn workload(repeats: usize) -> Vec<String> {
    // Group-major order: a group's repeats are consecutive, which is
    // round-robin's worst case (each repeat lands on the next replica)
    // and affinity's no-op case (the key ignores submission order).
    (0..GROUPS)
        .flat_map(|g| {
            let src =
                format!("argmax\n    \"P{g}: tell me[X]\"\nfrom \"m\"\nwhere stops_at(X, \".\")\n");
            std::iter::repeat_n(src, repeats)
        })
        .collect()
}

struct ModeResult {
    hit_rate: f64,
    queries_per_sec: f64,
    replicas_used: usize,
    outcomes: Vec<(String, u64)>,
}

fn run_mode(affinity: bool, sources: &[String]) -> ModeResult {
    let bpe = Arc::new(Bpe::char_level(""));
    let router = Router::new(
        model(&bpe),
        Arc::clone(&bpe),
        RouterConfig {
            replicas: REPLICAS,
            affinity,
            engine: EngineConfig {
                threads: 2,
                ..EngineConfig::default()
            },
            ..RouterConfig::default()
        },
    );
    let start = Instant::now();
    let mut outcomes = Vec::with_capacity(sources.len());
    for src in sources {
        let result = router.run_query(src).expect("bench query must succeed");
        let best = result.best();
        outcomes.push((best.trace.clone(), best.log_prob.to_bits()));
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = router.stats();
    ModeResult {
        hit_rate: stats.cache_hit_rate(),
        queries_per_sec: sources.len() as f64 / elapsed,
        replicas_used: stats.replicas.iter().filter(|r| r.queries > 0).count(),
        outcomes,
    }
}

fn single_node(sources: &[String]) -> Vec<(String, u64)> {
    let bpe = Arc::new(Bpe::char_level(""));
    let engine = Engine::new(model(&bpe), Arc::clone(&bpe), EngineConfig::default());
    sources
        .iter()
        .map(|src| {
            let result = engine
                .run_queries(&[src.as_str()])
                .pop()
                .unwrap()
                .expect("bench query must succeed");
            let best = result.best();
            (best.trace.clone(), best.log_prob.to_bits())
        })
        .collect()
}

fn main() {
    let mut out_path = String::from("BENCH_router.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out requires a path"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let repeats: usize = std::env::var("LMQL_BENCH_ROUTER_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let min_advantage: Option<f64> = std::env::var("LMQL_BENCH_ROUTER_MIN_ADVANTAGE")
        .ok()
        .and_then(|v| v.parse().ok());

    let sources = workload(repeats);
    let affinity = run_mode(true, &sources);
    let random = run_mode(false, &sources);
    // Round-robin on this workload can plausibly score a flat 0.0; floor
    // the denominator so the ratio stays a finite (JSON-valid) number.
    let advantage = affinity.hit_rate / random.hit_rate.max(1e-3);

    // Routing must never change results: both modes byte-identical to a
    // single-node engine.
    let reference = single_node(&sources);
    assert_eq!(
        affinity.outcomes, reference,
        "affinity routing changed query results"
    );
    assert_eq!(
        random.outcomes, reference,
        "round-robin routing changed query results"
    );

    println!(
        "bench: router/affinity   {:>7.1} q/s  hit-rate {:.3}  replicas used {}/{}",
        affinity.queries_per_sec, affinity.hit_rate, affinity.replicas_used, REPLICAS
    );
    println!(
        "bench: router/random     {:>7.1} q/s  hit-rate {:.3}  replicas used {}/{}",
        random.queries_per_sec, random.hit_rate, random.replicas_used, REPLICAS
    );
    println!("bench: router/advantage  {advantage:>7.2}x radix hit-rate (affinity vs random)");

    let json = format!(
        "{{\n  \"bench\": \"router\",\n  \"replicas\": {REPLICAS},\n  \
         \"prefix_groups\": {GROUPS},\n  \"repeats_per_group\": {repeats},\n  \
         \"affinity\": {{\n    \"hit_rate\": {:.3},\n    \"queries_per_sec\": {:.1},\n    \
         \"replicas_used\": {}\n  }},\n  \
         \"random\": {{\n    \"hit_rate\": {:.3},\n    \"queries_per_sec\": {:.1},\n    \
         \"replicas_used\": {}\n  }},\n  \"hit_rate_advantage\": {:.2}\n}}\n",
        affinity.hit_rate,
        affinity.queries_per_sec,
        affinity.replicas_used,
        random.hit_rate,
        random.queries_per_sec,
        random.replicas_used,
        advantage,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_router.json");
    println!("wrote {out_path}");

    if let Some(min) = min_advantage {
        if advantage < min {
            eprintln!(
                "bench: AFFINITY ADVANTAGE BELOW BUDGET: {advantage:.2}x < required {min:.2}x"
            );
            std::process::exit(1);
        }
    }
}
