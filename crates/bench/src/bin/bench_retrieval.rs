//! Retrieval-workload benchmark: the three DESIGN.md §16 scenarios
//! (retrieval-augmented QA, iterative needle-finding, chat with
//! declarative retention) as a paper-style metric table — accuracy,
//! decoder calls, model queries, billable tokens — for the
//! prompt-everything chunk-wise baseline vs. LMQL with first-class
//! tools. Emits `BENCH_retrieval.json`.
//!
//! Usage: `bench_retrieval [--out PATH]` (default `BENCH_retrieval.json`).
//! `LMQL_BENCH_RETRIEVAL_N` overrides the instances-per-scenario count.
//!
//! The retrieval-augmented QA scenario is the smoke gate: LMQL must beat
//! the chunk-wise baseline on billable tokens (by at least
//! `LMQL_BENCH_RETRIEVAL_MIN_SAVINGS`, a ratio defaulting to 2.0) or the
//! binary exits 1 — the number that justifies the tool API's existence.

use lmql_bench::experiments::retrieval_exp::{self, ScenarioRow};
use lmql_bench::experiments::Stats;
use lmql_retrieval::{Bm25Index, ChunkConfig, FactCorpus};
use std::time::Instant;

fn stats_json(s: &Stats) -> String {
    format!(
        "{{\"accuracy\": {:.3}, \"decoder_calls\": {:.2}, \"model_queries\": {:.2}, \
         \"billable_tokens\": {:.1}}}",
        s.accuracy(),
        s.avg_decoder_calls(),
        s.avg_model_queries(),
        s.avg_billable_tokens()
    )
}

fn print_row(row: &ScenarioRow) {
    for (side, s) in [("baseline", &row.baseline), ("lmql", &row.lmql)] {
        println!(
            "bench: {:<13}/{side:<8} acc {:.2}  decoder calls {:>6.2}  model queries {:>8.2}  \
             billable tokens {:>9.1}",
            row.name,
            s.accuracy(),
            s.avg_decoder_calls(),
            s.avg_model_queries(),
            s.avg_billable_tokens()
        );
    }
    println!(
        "bench: {:<13}/savings  {:.2}x billable tokens ({} tool calls, {} context tokens)",
        row.name,
        row.baseline.avg_billable_tokens() / row.lmql.avg_billable_tokens().max(1.0),
        row.tool_calls,
        row.context_tokens
    );
}

fn main() {
    let mut out_path = String::from("BENCH_retrieval.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out requires a path"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let n: usize = std::env::var("LMQL_BENCH_RETRIEVAL_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let min_savings: f64 = std::env::var("LMQL_BENCH_RETRIEVAL_MIN_SAVINGS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);

    // Index-build microbenchmark: the fixed cost the tool API adds.
    let corpus = FactCorpus::generate(24, 17);
    let build_start = Instant::now();
    let index = Bm25Index::build(&corpus.documents, ChunkConfig::default());
    let build_secs = build_start.elapsed().as_secs_f64();
    let query_start = Instant::now();
    for q in &corpus.questions {
        let _ = index.search(&q.question, 3);
    }
    let query_secs = query_start.elapsed().as_secs_f64() / corpus.questions.len().max(1) as f64;
    println!(
        "bench: index build {:.1} chunks/ms, search {:.3} ms/query ({} chunks, {} terms)",
        index.len() as f64 / (build_secs * 1e3).max(1e-9),
        query_secs * 1e3,
        index.len(),
        index.term_count()
    );

    let rows = retrieval_exp::run_all(n, 17, 32);
    for row in &rows {
        print_row(row);
    }

    let rows_json: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                "    {{\"scenario\": \"{}\", \"context_tokens\": {}, \"tool_calls\": {}, \
                 \"baseline\": {}, \"lmql\": {}}}",
                row.name,
                row.context_tokens,
                row.tool_calls,
                stats_json(&row.baseline),
                stats_json(&row.lmql)
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"retrieval\",\n  \"instances_per_scenario\": {n},\n  \
         \"index\": {{\"chunks\": {}, \"terms\": {}, \"build_secs\": {:.6}, \
         \"search_secs_per_query\": {:.6}}},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        index.len(),
        index.term_count(),
        build_secs,
        query_secs,
        rows_json.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_retrieval.json");
    println!("wrote {out_path}");

    // Smoke gates: every scenario must be solved, and retrieval-augmented
    // QA must beat prompt-everything on billable tokens.
    for row in &rows {
        if row.lmql.accuracy() < 1.0 {
            eprintln!("bench: SCENARIO {} NOT SOLVED BY LMQL SIDE", row.name);
            std::process::exit(1);
        }
    }
    let qa = &rows[0];
    let savings = qa.baseline.avg_billable_tokens() / qa.lmql.avg_billable_tokens().max(1.0);
    if savings < min_savings {
        eprintln!(
            "bench: RETRIEVAL QA SAVINGS BELOW BUDGET: {savings:.2}x < required {min_savings:.2}x"
        );
        std::process::exit(1);
    }
}
