//! Experiment harness reproducing every table and figure of the LMQL
//! paper's evaluation (§6) on the simulated substrate.
//!
//! Binaries (run with `cargo run -p lmql-bench --bin <name>`):
//!
//! - `table3` — chain-of-thought on Odd One Out and Date Understanding:
//!   accuracy, decoder calls, model queries, billable tokens, cost
//!   savings; Standard Decoding vs LMQL, two model profiles (plus a
//!   `--profile large` GPT-3.5-style control run),
//! - `table4` — lines-of-code comparison per task,
//! - `table5` — ReAct and arithmetic evaluation cost metrics,
//! - `fig12` — the baseline chunk-size sweep against LMQL's flat line,
//! - `run_all` — everything above in sequence (used by EXPERIMENTS.md).
//!
//! Criterion micro-benchmarks (`cargo bench -p lmql-bench`) cover the
//! ablations DESIGN.md calls out: exact vs symbolic mask generation,
//! score-cache effect, trie vs linear prefix scans, tokenizer throughput.

pub mod experiments;
pub mod loc;
pub mod table;

/// The LMQL query sources evaluated by the experiments (also the inputs
/// to the Table 4 LOC counts).
pub mod queries {
    /// Fig. 10: chain-of-thought Odd One Out.
    pub const ODD_ONE_OUT: &str = include_str!("../queries/odd_one_out.lmql");
    /// Chain-of-thought Date Understanding.
    pub const DATE_UNDERSTANDING: &str = include_str!("../queries/date_understanding.lmql");
    /// Fig. 11: interactive ReAct question answering.
    pub const REACT: &str = include_str!("../queries/react.lmql");
    /// Fig. 13: arithmetic reasoning with a calculator tool.
    pub const ARITHMETIC: &str = include_str!("../queries/arithmetic.lmql");
    /// Retrieval-augmented QA over a BM25-indexed corpus (DESIGN.md §16).
    pub const RETRIEVAL_QA: &str = include_str!("../queries/retrieval_qa.lmql");
    /// Iterative needle-in-a-haystack search via the retrieval tool.
    pub const NEEDLE: &str = include_str!("../queries/needle.lmql");
    /// Multi-turn chat with declarative context retention/recall.
    pub const CHAT: &str = include_str!("../queries/chat.lmql");
}
