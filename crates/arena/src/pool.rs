//! A bounded free-list pool for per-hypothesis scratch values.
//!
//! Generalises the masker's old `SetPool` (PR 4): any scratch value
//! whose *capacity* is worth keeping but whose *contents* are per-step
//! garbage — token bitsets, probability vectors, key buffers — can be
//! recycled through a [`Pool`] instead of being reallocated each step.
//! The free list is bounded so a transient burst (a momentarily wide
//! beam) cannot pin memory forever; values returned past the cap are
//! simply dropped.
//!
//! The pool is value-agnostic: callers reset contents on take (or on
//! put), so a recycled value is indistinguishable from a fresh one.

/// A bounded LIFO free list (see module docs).
#[derive(Debug)]
pub struct Pool<T> {
    free: Vec<T>,
    cap: usize,
}

impl<T> Pool<T> {
    /// Default bound on retained values: ample for a wide beam's
    /// per-hypothesis scratch without pinning unbounded memory.
    pub const DEFAULT_CAP: usize = 32;

    /// A pool retaining at most [`Pool::DEFAULT_CAP`] values.
    pub fn new() -> Self {
        Pool::with_cap(Self::DEFAULT_CAP)
    }

    /// A pool retaining at most `cap` values.
    pub fn with_cap(cap: usize) -> Self {
        Pool {
            free: Vec::new(),
            cap,
        }
    }

    /// Takes a recycled value, or `None` if the pool is empty.
    pub fn take(&mut self) -> Option<T> {
        self.free.pop()
    }

    /// Takes a recycled value, building a fresh one with `make` if the
    /// pool is empty. The hot-path entry point: at steady state this is
    /// a `Vec::pop`, no allocation.
    pub fn take_or(&mut self, make: impl FnOnce() -> T) -> T {
        self.free.pop().unwrap_or_else(make)
    }

    /// Returns `value` to the pool. Returns `false` (dropping the value)
    /// if the pool is already at capacity.
    pub fn put(&mut self, value: T) -> bool {
        if self.free.len() < self.cap {
            self.free.push(value);
            true
        } else {
            false
        }
    }

    /// Number of values currently retained.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// Whether no values are retained.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Maximum number of retained values.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

impl<T> Default for Pool<T> {
    fn default() -> Self {
        Pool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_lifo() {
        let mut pool: Pool<Vec<u8>> = Pool::new();
        assert!(pool.take().is_none());
        pool.put(vec![1]);
        pool.put(vec![2]);
        assert_eq!(pool.take(), Some(vec![2]));
        assert_eq!(pool.take(), Some(vec![1]));
        assert!(pool.take().is_none());
    }

    #[test]
    fn take_or_builds_when_empty() {
        let mut pool: Pool<String> = Pool::new();
        let s = pool.take_or(|| String::from("fresh"));
        assert_eq!(s, "fresh");
        pool.put(s);
        let s = pool.take_or(|| String::from("unused"));
        assert_eq!(s, "fresh");
    }

    #[test]
    fn cap_bounds_retention() {
        let mut pool: Pool<u32> = Pool::with_cap(2);
        assert!(pool.put(1));
        assert!(pool.put(2));
        assert!(!pool.put(3));
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.cap(), 2);
    }

    #[test]
    fn zero_cap_drops_everything() {
        let mut pool: Pool<u32> = Pool::with_cap(0);
        assert!(!pool.put(1));
        assert!(pool.is_empty());
    }
}
