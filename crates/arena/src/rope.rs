//! The interaction trace as an immutable, structurally shared rope.
//!
//! A [`Rope`] is a backward-linked list of [`Arc`]'d chunks: appending
//! pushes a new head chunk whose `prev` points at the old head, so every
//! earlier version of the trace remains alive and shared. The two
//! operations that dominate the decode hot path are therefore free:
//!
//! - **Fork** (`Clone`): one refcount bump per rope, `O(1)` in trace
//!   length, zero allocations — a beam of width 8 forking a 10 kB trace
//!   copies no trace bytes at all.
//! - **Emit** ([`Rope::push_shared`]): appending an interned program
//!   literal allocates one chunk node that *points at* the literal's
//!   shared `Arc<str>`; the literal bytes are never copied.
//!
//! Reads that need contiguous bytes ([`Rope::to_string`],
//! [`Rope::write_suffix`]) materialise on demand; they run once per
//! hole/segment, outside the per-token step loop, so their allocations do
//! not count against the steady-state decode budget. Cheap queries used
//! by constraint evaluation ([`Rope::starts_with`], [`Rope::ends_with`],
//! `PartialEq<str>`) walk the chunks directly without materialising.

use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// One immutable segment of the trace. `start` is the byte offset of
/// `text` within the full rope, fixed at append time — chunks never move.
#[derive(Debug)]
struct Chunk {
    prev: Option<Arc<Chunk>>,
    text: Arc<str>,
    start: usize,
}

/// An immutable, structurally shared text rope (see module docs).
///
/// `Clone` is `O(1)` and allocation-free: forks share every chunk with
/// the parent. All byte offsets (as used by [`Rope::write_suffix`] and
/// [`Rope::slice_string`]) must lie on `char` boundaries, as with `str`
/// slicing.
#[derive(Clone, Default)]
pub struct Rope {
    head: Option<Arc<Chunk>>,
    len: usize,
    chunks: usize,
}

impl Rope {
    /// An empty rope.
    pub fn new() -> Self {
        Rope::default()
    }

    /// Total length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the rope contains no text.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of chunks (appends that carried text).
    pub fn chunk_count(&self) -> usize {
        self.chunks
    }

    /// Appends `text`, copying it into a fresh chunk. Empty strings are
    /// ignored (no chunk is added).
    pub fn push_str(&mut self, text: &str) {
        if text.is_empty() {
            return;
        }
        self.push_arc(Arc::from(text));
    }

    /// Appends an already-shared string without copying its bytes: the
    /// new chunk holds a clone of `text`'s `Arc`. This is how interned
    /// program literals enter the trace. Empty strings are ignored.
    pub fn push_shared(&mut self, text: &Arc<str>) {
        if text.is_empty() {
            return;
        }
        self.push_arc(Arc::clone(text));
    }

    fn push_arc(&mut self, text: Arc<str>) {
        let start = self.len;
        self.len += text.len();
        self.chunks += 1;
        self.head = Some(Arc::new(Chunk {
            prev: self.head.take(),
            text,
            start,
        }));
    }

    /// Materialises the full text into `out` (cleared first), reserving
    /// exactly once.
    pub fn write_into(&self, out: &mut String) {
        out.clear();
        out.reserve(self.len);
        self.for_each_forward(|c| out.push_str(&c.text));
    }

    /// Materialises the full text as a fresh `String`.
    #[allow(clippy::inherent_to_string_shadow_display)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Materialises the suffix starting at byte `from` into `out`
    /// (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if `from > len()` or `from` is not a `char` boundary.
    pub fn write_suffix(&self, from: usize, out: &mut String) {
        out.clear();
        assert!(
            from <= self.len,
            "suffix start {from} beyond rope length {}",
            self.len
        );
        out.reserve(self.len - from);
        self.for_each_forward(|c| {
            let end = c.start + c.text.len();
            if end > from {
                let lo = from.saturating_sub(c.start);
                out.push_str(&c.text[lo..]);
            }
        });
    }

    /// Materialises the suffix starting at byte `from` as a `String`.
    pub fn suffix_string(&self, from: usize) -> String {
        let mut out = String::new();
        self.write_suffix(from, &mut out);
        out
    }

    /// Materialises the byte range as a `String`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds, inverted, or not on `char`
    /// boundaries.
    pub fn slice_string(&self, range: Range<usize>) -> String {
        assert!(range.start <= range.end, "inverted range {range:?}");
        assert!(
            range.end <= self.len,
            "range {range:?} beyond rope length {}",
            self.len
        );
        let mut out = String::with_capacity(range.end - range.start);
        self.for_each_forward(|c| {
            let end = c.start + c.text.len();
            if end > range.start && c.start < range.end {
                let lo = range.start.saturating_sub(c.start);
                let hi = (range.end - c.start).min(c.text.len());
                out.push_str(&c.text[lo..hi]);
            }
        });
        out
    }

    /// Whether the rope's text starts with `prefix`. Walks chunks without
    /// materialising.
    pub fn starts_with(&self, prefix: &str) -> bool {
        if prefix.len() > self.len {
            return false;
        }
        let p = prefix.as_bytes();
        let mut cur = self.head.as_deref();
        while let Some(c) = cur {
            if c.start < p.len() {
                let t = c.text.as_bytes();
                let end = (c.start + t.len()).min(p.len());
                if t[..end - c.start] != p[c.start..end] {
                    return false;
                }
            }
            cur = c.prev.as_deref();
        }
        true
    }

    /// Whether the rope's text ends with `suffix`. Walks chunks backward
    /// without materialising.
    pub fn ends_with(&self, suffix: &str) -> bool {
        if suffix.len() > self.len {
            return false;
        }
        let mut remaining = suffix.as_bytes();
        let mut cur = self.head.as_deref();
        while let Some(c) = cur {
            if remaining.is_empty() {
                return true;
            }
            let t = c.text.as_bytes();
            let take = remaining.len().min(t.len());
            let (rest, tail) = remaining.split_at(remaining.len() - take);
            if t[t.len() - take..] != *tail {
                return false;
            }
            remaining = rest;
            cur = c.prev.as_deref();
        }
        remaining.is_empty()
    }

    /// Calls `f` on each chunk in forward (text) order. Collects the
    /// backward-linked chunks into a scratch vector first; callers on the
    /// per-token hot path use the non-materialising queries instead.
    fn for_each_forward(&self, mut f: impl FnMut(&Chunk)) {
        let mut stack: Vec<&Chunk> = Vec::with_capacity(self.chunks);
        let mut cur = self.head.as_deref();
        while let Some(c) = cur {
            stack.push(c);
            cur = c.prev.as_deref();
        }
        for c in stack.into_iter().rev() {
            f(c);
        }
    }
}

impl PartialEq<str> for Rope {
    fn eq(&self, other: &str) -> bool {
        self.len == other.len() && self.starts_with(other)
    }
}

impl PartialEq<&str> for Rope {
    fn eq(&self, other: &&str) -> bool {
        self == *other
    }
}

impl PartialEq<String> for Rope {
    fn eq(&self, other: &String) -> bool {
        self == other.as_str()
    }
}

impl fmt::Debug for Rope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.to_string(), f)
    }
}

impl fmt::Display for Rope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = Ok(());
        self.for_each_forward(|c| {
            if out.is_ok() {
                out = f.write_str(&c.text);
            }
        });
        out
    }
}

impl From<&str> for Rope {
    fn from(text: &str) -> Self {
        let mut rope = Rope::new();
        rope.push_str(text);
        rope
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Rope {
        let mut r = Rope::new();
        r.push_str("hello ");
        r.push_str("world");
        r.push_str(", again");
        r
    }

    #[test]
    fn builds_and_materialises() {
        let r = sample();
        assert_eq!(r.len(), "hello world, again".len());
        assert_eq!(r.to_string(), "hello world, again");
        assert_eq!(r.chunk_count(), 3);
        assert!(!r.is_empty());
        assert!(Rope::new().is_empty());
    }

    #[test]
    fn empty_pushes_are_ignored() {
        let mut r = Rope::new();
        r.push_str("");
        r.push_shared(&Arc::from(""));
        assert_eq!(r.chunk_count(), 0);
        assert_eq!(r.to_string(), "");
    }

    #[test]
    fn push_shared_does_not_copy() {
        let lit: Arc<str> = Arc::from("literal");
        let mut r = Rope::new();
        r.push_shared(&lit);
        assert_eq!(Arc::strong_count(&lit), 2);
        assert_eq!(r.to_string(), "literal");
    }

    #[test]
    fn clone_shares_structure() {
        let base = sample();
        let mut fork = base.clone();
        fork.push_str("!");
        assert_eq!(base.to_string(), "hello world, again");
        assert_eq!(fork.to_string(), "hello world, again!");
        assert_eq!(base.chunk_count(), 3);
        assert_eq!(fork.chunk_count(), 4);
    }

    #[test]
    fn suffix_and_slice() {
        let r = sample();
        assert_eq!(r.suffix_string(6), "world, again");
        assert_eq!(r.suffix_string(0), "hello world, again");
        assert_eq!(r.suffix_string(r.len()), "");
        assert_eq!(r.slice_string(6..11), "world");
        assert_eq!(r.slice_string(0..5), "hello");
        // Range crossing a chunk boundary.
        assert_eq!(r.slice_string(4..8), "o wo");
        assert_eq!(r.slice_string(3..3), "");
    }

    #[test]
    fn write_suffix_reuses_buffer() {
        let r = sample();
        let mut buf = String::from("junk");
        r.write_suffix(11, &mut buf);
        assert_eq!(buf, ", again");
    }

    #[test]
    #[should_panic(expected = "beyond rope length")]
    fn suffix_out_of_bounds_panics() {
        sample().suffix_string(1000);
    }

    #[test]
    fn prefix_suffix_queries() {
        let r = sample();
        assert!(r.starts_with(""));
        assert!(r.starts_with("hello"));
        assert!(r.starts_with("hello world"));
        assert!(r.starts_with("hello world, again"));
        assert!(!r.starts_with("hello world, again!"));
        assert!(!r.starts_with("yello"));
        assert!(!r.starts_with("hello_"));
        assert!(r.ends_with(""));
        assert!(r.ends_with("again"));
        assert!(r.ends_with("world, again"));
        assert!(r.ends_with("hello world, again"));
        assert!(!r.ends_with("xhello world, again"));
        assert!(!r.ends_with("main"));
    }

    #[test]
    fn equality_with_str() {
        let r = sample();
        assert_eq!(r, "hello world, again");
        assert_ne!(r, "hello world, agai");
        assert_ne!(r, "hello world, agaiN");
        assert_eq!(r, String::from("hello world, again"));
        assert_eq!(Rope::from("abc"), "abc");
    }

    #[test]
    fn unicode_round_trip() {
        let mut r = Rope::new();
        r.push_str("héllo ");
        r.push_str("wörld");
        assert_eq!(r.to_string(), "héllo wörld");
        assert_eq!(r.suffix_string("héllo ".len()), "wörld");
        assert!(r.ends_with("örld"));
    }
}
