//! Zero-copy data-plane primitives for the LMQL runtime (DESIGN.md §13).
//!
//! The decode loop is the hot path of eager constrained decoding (the
//! paper's §4 "Performance Considerations"): every step extends the
//! interaction trace, every beam fork copies hypothesis state, and every
//! scheduler submission used to clone its token context twice. This crate
//! collects the three memory-architecture primitives that make those
//! operations cheap and allocation-bounded:
//!
//! - [`Rope`]: the interaction trace as an immutable, structurally shared
//!   chunk list. Cloning a rope (a beam fork) is one `Arc` refcount bump —
//!   `O(1)` and allocation-free regardless of trace length.
//! - [`intern`] / [`Interner`]: compiled program literals are interned to
//!   shared `Arc<str>` once at compile time, so emitting a prompt segment
//!   appends a chunk that *points at* the literal instead of copying it.
//! - [`Pool`]: a bounded free-list generalising the masker's old
//!   `SetPool` so any per-hypothesis scratch value (token bitsets,
//!   distributions, key buffers) can be recycled instead of reallocated.
//!
//! Everything here is dependency-free and deterministic; the counting-
//! allocator regression tests in `crates/core/tests/alloc_budget.rs` and
//! the `bench_decode` binary pin the resulting budgets in CI.

mod intern;
mod pool;
mod rope;

pub use intern::{intern, Interner};
pub use pool::Pool;
pub use rope::Rope;
