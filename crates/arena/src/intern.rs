//! String interning for compiled program literals.
//!
//! A query program's prompt literals are fixed at compile time but
//! emitted into the trace on every run — and under `sample(n)` or a
//! beam, once per hypothesis. Interning them to shared `Arc<str>` means
//! [`Rope::push_shared`](crate::Rope::push_shared) can append a literal
//! by pointing at it: one chunk-node allocation, zero byte copies, for
//! every emission after the first.
//!
//! The interner is deliberately append-only (entries live for the
//! process lifetime): the key set is the program literals of compiled
//! queries, which is small and does not grow with traffic.

use std::collections::HashSet;
use std::sync::{Arc, Mutex, OnceLock};

/// A thread-safe append-only string interner.
#[derive(Debug, Default)]
pub struct Interner {
    strings: Mutex<HashSet<Arc<str>>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Returns the shared copy of `text`, inserting it on first sight.
    /// Repeated calls with equal text return clones of one allocation.
    pub fn intern(&self, text: &str) -> Arc<str> {
        let mut set = self.strings.lock().expect("interner poisoned");
        if let Some(hit) = set.get(text) {
            return Arc::clone(hit);
        }
        let shared: Arc<str> = Arc::from(text);
        set.insert(Arc::clone(&shared));
        shared
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.lock().expect("interner poisoned").len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Interns `text` in the process-wide interner shared by every compiled
/// program (the workspace-wide interner of DESIGN.md §13).
pub fn intern(text: &str) -> Arc<str> {
    static GLOBAL: OnceLock<Interner> = OnceLock::new();
    GLOBAL.get_or_init(Interner::new).intern(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_strings_share_one_allocation() {
        let interner = Interner::new();
        let a = interner.intern("prompt segment");
        let b = interner.intern("prompt segment");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn distinct_strings_stay_distinct() {
        let interner = Interner::new();
        let a = interner.intern("a");
        let b = interner.intern("b");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(&*a, "a");
        assert_eq!(&*b, "b");
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn global_interner_is_shared() {
        let a = intern("global literal");
        let b = intern("global literal");
        assert!(Arc::ptr_eq(&a, &b));
    }
}
