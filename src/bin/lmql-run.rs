//! Command-line LMQL runner (the "command-line tooling" of Appendix A.3):
//! execute a `.lmql` file against one of the built-in models and print the
//! interaction trace, hole variables, distribution and usage metrics.
//!
//! ```sh
//! cargo run --bin lmql-run -- query.lmql \
//!     [--model ngram|script:<trigger>=<completion>] \
//!     [--bind NAME=VALUE]… [--engine exact|symbolic] \
//!     [--seed N] [--max-tokens N] [--stream] [--trace] \
//!     [--trace-json <path>] [--metrics] \
//!     [--retries N] [--timeout-ms N] [--chaos <seed>] [--no-automata]
//!     [--no-parallel-holes] [--replicas N] [--no-affinity]
//!     [--corpus <path>] [--corpus-k N]
//! ```
//!
//! `--stream` prints the model output live, token by token, as the
//! decoder produces it (DESIGN.md §11), then the normal result summary.
//! Internally it runs the exact same decoding loop with a
//! [`StreamSink`](lmql::StreamSink) attached, so the final output is
//! byte-identical to a non-streamed run.
//!
//! `--trace` prints the decoder graph plus the runtime's span trace
//! (parse/compile, per-hole decoding, mask computation). `--trace-json`
//! writes the same spans as Chrome-trace JSON — load it in
//! `chrome://tracing` or Perfetto. `--metrics` prints the full metrics
//! registry (counter/gauge/histogram lines) after the run.
//!
//! `--chaos <seed>` wraps the model in a seeded [`ChaosLm`] injecting
//! transient faults into ~20% of score calls; a retry layer absorbs
//! them, so the output is byte-identical to the fault-free run.
//! `--retries` and `--timeout-ms` tune that layer's budget and
//! per-request deadline (both also work without `--chaos`, e.g. against
//! a flaky scripted backend).
//!
//! `--no-automata` disables compiled constraint automata and
//! fast-forward decoding (DESIGN.md §12), forcing every mask through the
//! uncompiled FollowMap/Exact path — a bisection switch for checking a
//! surprising result against the reference mask implementation.
//!
//! `--no-parallel-holes` disables program-level hole parallelism
//! (DESIGN.md §14), forcing strictly sequential hole decoding — the
//! analogous bisection switch for the dependency-scheduled decode path
//! (results are byte-identical either way by construction).
//!
//! `--corpus <path>` loads a plain-text corpus (blank-line-separated
//! paragraphs; the first sentence of each is its title), builds a BM25
//! index over it and registers the [`RetrievalTool`] so the query can
//! `import retrieval` and call `retrieval.search(q)` /
//! `retrieval.spans(q)` (DESIGN.md §16). `--corpus-k` sets how many top
//! hits those calls consult (default 3). Works on both the single and
//! `--replicas` paths.
//!
//! [`RetrievalTool`]: lmql_retrieval::RetrievalTool
//!
//! `--replicas N` (N > 1) runs the query through the scale-out
//! [`Router`](lmql_engine::Router) (DESIGN.md §15) over N in-process
//! replica engines instead of a single runtime — results are
//! byte-identical by construction, making this the bisection switch for
//! the pooled path. `--no-affinity` swaps prefix-affinity routing for
//! round-robin, isolating routing-policy effects from the pool itself.
//!
//! Example:
//!
//! ```sh
//! echo 'argmax
//!     "A list of things not to forget when travelling:\n-[THING]"
//! from "ngram"
//! where stops_at(THING, "\n")' > /tmp/q.lmql
//! cargo run --bin lmql-run -- /tmp/q.lmql --model ngram
//! ```

use lmql::constraints::MaskEngine;
use lmql::{QueryEvent, Runtime, StreamSink, Value};
use lmql_lm::{corpus, ChaosLm, ChaosStats, Episode, FaultPlan, RetryLm, RetryPolicy, ScriptedLm};
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    query_path: String,
    model: String,
    binds: Vec<(String, String)>,
    engine: MaskEngine,
    seed: u64,
    max_tokens: usize,
    stream: bool,
    trace: bool,
    trace_json: Option<String>,
    metrics: bool,
    format: bool,
    retries: Option<u32>,
    timeout_ms: Option<u64>,
    chaos: Option<u64>,
    no_automata: bool,
    no_parallel_holes: bool,
    replicas: usize,
    no_affinity: bool,
    corpus: Option<String>,
    corpus_k: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut out = Args {
        query_path: String::new(),
        model: "ngram".to_owned(),
        binds: Vec::new(),
        engine: MaskEngine::Symbolic,
        seed: 0,
        max_tokens: 64,
        stream: false,
        trace: false,
        trace_json: None,
        metrics: false,
        format: false,
        retries: None,
        timeout_ms: None,
        chaos: None,
        no_automata: false,
        no_parallel_holes: false,
        replicas: 1,
        no_affinity: false,
        corpus: None,
        corpus_k: 3,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--model" => out.model = args.next().ok_or("--model takes a value")?,
            "--bind" => {
                let kv = args.next().ok_or("--bind takes NAME=VALUE")?;
                let (k, v) = kv.split_once('=').ok_or("--bind takes NAME=VALUE")?;
                out.binds.push((k.to_owned(), v.to_owned()));
            }
            "--engine" => {
                out.engine = match args.next().as_deref() {
                    Some("exact") => MaskEngine::Exact,
                    Some("symbolic") => MaskEngine::Symbolic,
                    other => return Err(format!("unknown engine {other:?}")),
                }
            }
            "--seed" => {
                out.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed takes a number")?
            }
            "--max-tokens" => {
                out.max_tokens = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--max-tokens takes a number")?
            }
            "--stream" => out.stream = true,
            "--trace" => out.trace = true,
            "--trace-json" => {
                out.trace_json = Some(args.next().ok_or("--trace-json takes a path")?);
            }
            "--metrics" => out.metrics = true,
            "--format" => out.format = true,
            "--retries" => {
                out.retries = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--retries takes a number")?,
                )
            }
            "--timeout-ms" => {
                out.timeout_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--timeout-ms takes a number")?,
                )
            }
            "--chaos" => {
                out.chaos = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--chaos takes a seed")?,
                )
            }
            "--no-automata" => out.no_automata = true,
            "--no-parallel-holes" => out.no_parallel_holes = true,
            "--replicas" => {
                out.replicas = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--replicas takes a count >= 1")?
            }
            "--no-affinity" => out.no_affinity = true,
            "--corpus" => {
                out.corpus = Some(args.next().ok_or("--corpus takes a path")?);
            }
            "--corpus-k" => {
                out.corpus_k = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--corpus-k takes a count >= 1")?
            }
            "--help" | "-h" => {
                return Err(
                    "usage: lmql-run <query.lmql> [--model ngram|script:<trigger>=<completion>] \
                            [--bind NAME=VALUE]… [--engine exact|symbolic] [--seed N] \
                            [--max-tokens N] [--stream] [--trace] [--trace-json <path>] \
                            [--metrics] [--format] [--retries N] [--timeout-ms N] \
                            [--chaos <seed>] [--no-automata] [--no-parallel-holes] \
                            [--replicas N] [--no-affinity] [--corpus <path>] [--corpus-k N]"
                        .to_owned(),
                )
            }
            other if out.query_path.is_empty() && !other.starts_with('-') => {
                out.query_path = other.to_owned();
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if out.query_path.is_empty() {
        return Err("missing query file (try --help)".to_owned());
    }
    Ok(out)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("lmql-run: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let source = std::fs::read_to_string(&args.query_path)
        .map_err(|e| format!("{}: {e}", args.query_path))?;

    if args.format {
        let query = lmql_syntax::parse_query(&source).map_err(|e| e.to_string())?;
        print!("{}", lmql_syntax::format_query(&query));
        return Ok(());
    }

    let bpe = corpus::standard_bpe();
    let lm: Arc<dyn lmql_lm::LanguageModel> = if args.model == "ngram" {
        corpus::standard_ngram()
    } else if let Some(spec) = args.model.strip_prefix("script:") {
        let (trigger, completion) = spec
            .split_once('=')
            .ok_or("--model script:<trigger>=<completion>")?;
        Arc::new(ScriptedLm::new(
            Arc::clone(&bpe),
            [Episode::plain(trigger, completion)],
        ))
    } else {
        return Err(format!(
            "unknown model {:?} (expected `ngram` or `script:<trigger>=<completion>`)",
            args.model
        ));
    };

    // Fault-tolerance layers: `--chaos` injects seeded faults under the
    // retry layer; `--retries`/`--timeout-ms` tune that layer. Any of the
    // three flags switches the retrying wrapper on.
    let mut policy = RetryPolicy::default();
    if let Some(n) = args.retries {
        policy.max_retries = n;
    }
    if let Some(ms) = args.timeout_ms {
        policy.deadline = Some(Duration::from_millis(ms));
    }
    let fault_layer = args.chaos.is_some() || args.retries.is_some() || args.timeout_ms.is_some();
    let mut chaos_stats: Option<ChaosStats> = None;
    let lm: Arc<dyn lmql_lm::LanguageModel> = if let Some(seed) = args.chaos {
        let chaos = ChaosLm::new(lm, FaultPlan::transient(seed, 0.2));
        chaos_stats = Some(chaos.stats().clone());
        Arc::new(RetryLm::new(chaos, policy))
    } else if fault_layer {
        Arc::new(RetryLm::new(lm, policy))
    } else {
        lm
    };

    // `--corpus`: index the file once, expose it as the `retrieval`
    // tool on whichever execution path runs the query.
    let retrieval = match &args.corpus {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let docs = lmql_retrieval::load_plain_text(&text);
            let index =
                lmql_retrieval::Bm25Index::build(&docs, lmql_retrieval::ChunkConfig::default());
            eprintln!(
                "corpus: {} documents, {} chunks indexed from {path}",
                docs.len(),
                index.len()
            );
            Some(Arc::new(lmql_retrieval::RetrievalTool::new(
                Arc::new(index),
                args.corpus_k,
            )))
        }
        None => None,
    };

    if args.replicas > 1 {
        return run_pooled(&args, &source, lm, bpe, chaos_stats.as_ref(), retrieval);
    }

    let mut runtime = Runtime::new(lm, bpe);
    if let Some(tool) = &retrieval {
        runtime.register_tool(tool.clone());
    }
    runtime.options_mut().engine = args.engine;
    runtime.options_mut().seed = args.seed;
    runtime.options_mut().max_tokens_per_hole = args.max_tokens;
    if args.no_automata {
        // Bisection switch: rerun with constraint automata disabled to
        // check a surprising result against the uncompiled mask path.
        runtime.options_mut().mask.automata = false;
    }
    if args.no_parallel_holes {
        // Bisection switch: rerun with program-level hole parallelism
        // off (DESIGN.md §14) — output must be byte-identical, so any
        // difference localises a parallel-decode bug.
        runtime.options_mut().parallel_holes = false;
    }
    for (k, v) in &args.binds {
        runtime.bind(k, Value::Str(v.clone()));
    }

    let tracer = if args.trace || args.trace_json.is_some() {
        lmql_obs::Tracer::recording()
    } else {
        lmql_obs::Tracer::disabled()
    };
    runtime.set_tracer(tracer.clone());

    let registry = lmql_obs::Registry::new();
    if args.metrics {
        runtime.meter().register_into(&registry, "lm");
        // Mask-generation counters (mask.cache.hit/miss,
        // mask.scan.parallel_chunks) register lazily per query run.
        runtime.set_metrics_registry(registry.clone());
    }

    if args.stream {
        // Print path 0 (argmax / first beam / first sample) live as the
        // decoder emits it; other paths would interleave incoherently on
        // a terminal, so they stay silent here.
        let sink = StreamSink::callback(|event| {
            let text = match event {
                QueryEvent::PromptChunk { path: 0, text } => text.as_str(),
                QueryEvent::TokenDelta { path: 0, text, .. } => text.as_str(),
                _ => return,
            };
            print!("{text}");
            let _ = std::io::stdout().flush();
        });
        let result = runtime
            .run_streamed(&source, sink)
            .map_err(|e| e.to_string())?;
        println!();
        println!("--- result ---");
        print_result(&result);
    } else if args.trace {
        let (result, debug) = runtime.run_traced(&source).map_err(|e| e.to_string())?;
        print_result(&result);
        println!("--- decoder trace ---");
        print!("{}", debug.render());
        println!("--- spans ---");
        print!("{}", tracer.render_text());
    } else {
        let result = runtime.run(&source).map_err(|e| e.to_string())?;
        print_result(&result);
    }

    if let Some(path) = &args.trace_json {
        let json = lmql_obs::chrome::to_chrome_json(&tracer.events());
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("trace written to {path} (load in chrome://tracing)");
    }

    if args.metrics {
        println!("--- metrics ---");
        print!("{}", registry.snapshot().render_text());
    }

    if let Some(stats) = &chaos_stats {
        println!(
            "--- chaos: {} faults injected ({} errors, {} truncations, {} latency spikes) — all absorbed ---",
            stats.total_faults(),
            stats.errors.get(),
            stats.truncations.get(),
            stats.latency_spikes.get()
        );
    }

    let usage = runtime.meter().snapshot();
    println!(
        "--- usage: {} model queries, {} decoder calls, {} billable tokens ---",
        usage.model_queries, usage.decoder_calls, usage.billable_tokens
    );
    Ok(())
}

/// The `--replicas N` path: run the query through the scale-out
/// [`Router`](lmql_engine::Router) instead of a single [`Runtime`]. The
/// configure hook re-applies every option the direct path sets on its
/// runtime — once per attempt, so a fail-over retry decodes under
/// identical settings and the result stays byte-identical.
fn run_pooled(
    args: &Args,
    source: &str,
    lm: Arc<dyn lmql_lm::LanguageModel>,
    bpe: Arc<lmql_tokenizer::Bpe>,
    chaos_stats: Option<&ChaosStats>,
    retrieval: Option<Arc<lmql_retrieval::RetrievalTool>>,
) -> Result<(), String> {
    if args.trace {
        return Err(
            "--trace needs the single-runtime decoder graph; with --replicas use --trace-json \
             for spans instead"
                .to_owned(),
        );
    }
    let tracer = if args.trace_json.is_some() {
        lmql_obs::Tracer::recording()
    } else {
        lmql_obs::Tracer::disabled()
    };
    let registry = lmql_obs::Registry::new();
    let router = lmql_engine::Router::new_with_obs(
        lm,
        bpe,
        lmql_engine::RouterConfig {
            replicas: args.replicas,
            affinity: !args.no_affinity,
            ..lmql_engine::RouterConfig::default()
        },
        lmql_engine::RouterObs {
            tracer: tracer.clone(),
            registry: args.metrics.then(|| registry.clone()),
        },
    );

    let configure = {
        let engine = args.engine;
        let seed = args.seed;
        let max_tokens = args.max_tokens;
        let no_automata = args.no_automata;
        let no_parallel_holes = args.no_parallel_holes;
        let binds = args.binds.clone();
        move |rt: &mut Runtime| {
            if let Some(tool) = &retrieval {
                rt.register_tool(tool.clone());
            }
            rt.options_mut().engine = engine;
            rt.options_mut().seed = seed;
            rt.options_mut().max_tokens_per_hole = max_tokens;
            if no_automata {
                rt.options_mut().mask.automata = false;
            }
            if no_parallel_holes {
                rt.options_mut().parallel_holes = false;
            }
            for (k, v) in &binds {
                rt.bind(k, Value::Str(v.clone()));
            }
        }
    };

    if args.stream {
        let stream = router.stream_query_with(source, configure);
        for event in stream.events() {
            let text = match &event {
                QueryEvent::PromptChunk { path: 0, text } => text.as_str(),
                QueryEvent::TokenDelta { path: 0, text, .. } => text.as_str(),
                _ => continue,
            };
            print!("{text}");
            let _ = std::io::stdout().flush();
        }
        let result = stream.wait().map_err(|e| e.to_string())?;
        println!();
        println!("--- result ---");
        print_result(&result);
    } else {
        let result = router
            .run_query_with(source, configure)
            .map_err(|e| e.to_string())?;
        print_result(&result);
    }

    if let Some(path) = &args.trace_json {
        let json = lmql_obs::chrome::to_chrome_json(&tracer.events());
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("trace written to {path} (load in chrome://tracing)");
    }

    if args.metrics {
        println!("--- metrics ---");
        print!("{}", registry.snapshot().render_text());
    }

    if let Some(stats) = chaos_stats {
        println!(
            "--- chaos: {} faults injected ({} errors, {} truncations, {} latency spikes) — all absorbed ---",
            stats.total_faults(),
            stats.errors.get(),
            stats.truncations.get(),
            stats.latency_spikes.get()
        );
    }

    // Pooled runs have no single runtime meter; the replica engines
    // meter model dispatches (after caching / single-flighting), so sum
    // those plus the prefix-cache totals across the pool.
    let stats = router.stats();
    let model_queries: u64 = stats.replicas.iter().map(|r| r.usage.model_queries).sum();
    let cache = stats.cache_totals();
    println!(
        "--- usage: {} model queries, {} prefix-cache hits ({} misses) \
         (pooled: {} replicas, {} routed, {} failovers) ---",
        model_queries, cache.hits, cache.misses, args.replicas, stats.routed, stats.failovers
    );
    router.shutdown();
    Ok(())
}

fn print_result(result: &lmql::QueryResult) {
    for (i, run) in result.runs.iter().enumerate() {
        if result.runs.len() > 1 {
            println!("--- run {} (log-prob {:.3}) ---", i + 1, run.log_prob);
        }
        println!("{}", run.trace);
        let mut vars: Vec<_> = run
            .hole_records
            .iter()
            .map(|r| (r.var.as_str(), r.value.as_str()))
            .collect();
        vars.dedup();
        for (name, value) in vars {
            println!("  {name} = {value:?}");
        }
    }
    if let Some(dist) = &result.distribution {
        println!("--- distribution ---");
        for (v, p) in dist {
            println!("  {:>6.2}%  {v}", p * 100.0);
        }
    }
}
