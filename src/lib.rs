//! Umbrella crate for the LMQL reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency. Library users should depend on the individual crates
//! ([`lmql`], [`lmql_lm`], [`lmql_tokenizer`], …) directly.

pub use lmql;
pub use lmql_baseline;
pub use lmql_datasets;
pub use lmql_lm;
pub use lmql_syntax;
pub use lmql_tokenizer;
