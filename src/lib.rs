//! Umbrella crate for the LMQL reproduction.
//!
//! Re-exports every workspace crate so examples, integration tests and
//! quick experiments can use a single dependency, and provides a
//! [`prelude`] with the names almost every program needs. Library users
//! should depend on the individual crates ([`lmql`], [`lmql_lm`],
//! [`lmql_tokenizer`], …) directly.

pub use lmql;
pub use lmql_arena;
pub use lmql_baseline;
pub use lmql_bench;
pub use lmql_datasets;
pub use lmql_engine;
pub use lmql_lm;
pub use lmql_obs;
pub use lmql_retrieval;
pub use lmql_server;
pub use lmql_syntax;
pub use lmql_tokenizer;

/// The names almost every LMQL program uses, one `use` away:
///
/// ```
/// use lmql_repro::prelude::*;
///
/// let runtime = Runtime::new(corpus::standard_ngram(), corpus::standard_bpe());
/// let request = QueryRequest::new(
///     "argmax\n    \"A list of things not to forget when travelling:\\n-[THING]\"\nfrom \"m\"\nwhere stops_at(THING, \"\\n\")\n",
/// )
/// .max_tokens(16);
/// let result = runtime.execute(&request).unwrap();
/// assert!(!result.best().trace.is_empty());
/// ```
pub mod prelude {
    pub use lmql::{
        plan_holes, DecodeOptions, Error, EventSink, FnTool, HolePlan, QueryEvent, QueryRequest,
        QueryResult, QueryRun, ReassembledQuery, Reassembler, Runtime, StreamSink, SubqueryLimits,
        Tool, ToolRegistry, ToolSchema, Value,
    };
    // The paper's §5 mask-generation engine selector.
    pub use lmql::constraints::MaskEngine;
    pub use lmql_engine::{Engine, EngineConfig, QueryStream};
    pub use lmql_lm::{
        corpus, CancelToken, Episode, LanguageModel, NGramLm, RetryPolicy, ScriptedLm,
    };
    pub use lmql_obs::{Registry, Tracer};
    // Retrieval-augmented and long-context workloads (DESIGN.md §16).
    pub use lmql_retrieval::{
        load_plain_text, Bm25Index, ChatSession, ChunkConfig, FactCorpus, NiahCorpus,
        RetentionPolicy, RetrievalTool, SessionTool,
    };
    pub use lmql_server::{InferenceServer, RemoteLm, ServerError};
    pub use lmql_tokenizer::Bpe;
    pub use std::sync::Arc;
}
